"""Seeded deterministic load generator for ``segbus serve``.

The *schedule* is fully deterministic: :func:`build_plan` draws request
order, repeat choices and (open-loop) arrival offsets from
``numpy.random.default_rng(seed)`` over a corpus built by
:func:`serving_corpus` — generated lint-clean models serialized to their
schemes plus curated workload scenarios.  ``repeat_ratio`` controls how
often a previously issued payload is re-submitted, which is the knob
that exercises the result cache; with the service's request coalescing,
the *number of computed (unique) and reused responses per run is itself
deterministic*, concurrency notwithstanding — the ``serve_throughput``
bench pins both as tick counters.

Two drivers share the plan: HTTP (persistent stdlib connections against
a running server) and in-process (straight into
:meth:`SegbusService.submit` — no sockets, used by unit tests).
``--verify`` re-executes every distinct payload locally and requires the
served bytes to match — the equivalence smoke CI runs.

Runnable as ``python -m repro.serve.loadgen`` or ``segbus loadgen``.
"""

from __future__ import annotations

import argparse
import http.client
import json
import queue
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import urlsplit

import numpy as np

from repro.errors import SegBusError

DEFAULT_SEED = 1
DEFAULT_REQUESTS = 50
DEFAULT_REPEAT_RATIO = 0.8
DEFAULT_CONCURRENCY = 4


# ---------------------------------------------------------------------------
# corpus and plan
# ---------------------------------------------------------------------------


def serving_corpus(
    generated: int = 4,
    base_seed: int = 4242,
    workloads: Sequence[str] = (),
    kind: str = "emulate",
) -> List[Dict[str, object]]:
    """Job payloads over generated models and curated workload scenarios.

    Generated models are serialized to their XML schemes (inline jobs —
    the server parses them back through the loaders); workload entries
    ride by name.  ``kind`` applies to every payload (estimate/lint reuse
    the same corpus).
    """
    payloads: List[Dict[str, object]] = []
    if generated > 0:
        from repro.testing.generators import generate_models
        from repro.xmlio.psdf_writer import psdf_to_xml
        from repro.xmlio.psm_writer import psm_to_xml

        for model in generate_models(generated, base_seed=base_seed):
            payloads.append(
                {
                    "kind": kind,
                    "psdf_xml": psdf_to_xml(
                        model.application, model.platform.package_size
                    ),
                    "psm_xml": psm_to_xml(model.platform),
                }
            )
    for name in workloads:
        payloads.append({"kind": kind, "workload": name})
    if not payloads:
        raise SegBusError(
            "empty loadgen corpus: need generated > 0 or workload names"
        )
    return payloads


@dataclass(frozen=True)
class LoadPlan:
    """A fully materialized schedule: payloads in order plus arrivals.

    ``payload_ids`` maps each request to its distinct-payload index —
    the verify pass and the reuse accounting key on it.  ``arrival_s``
    is all zeros for closed-loop plans.
    """

    payloads: Tuple[Mapping[str, object], ...]
    payload_ids: Tuple[int, ...]
    arrival_s: Tuple[float, ...]
    seed: int
    repeat_ratio: float

    @property
    def requests(self) -> int:
        return len(self.payloads)

    @property
    def unique_payloads(self) -> int:
        return len(set(self.payload_ids))


def build_plan(
    corpus: Sequence[Mapping[str, object]],
    requests: int = DEFAULT_REQUESTS,
    repeat_ratio: float = DEFAULT_REPEAT_RATIO,
    seed: int = DEFAULT_SEED,
    rate_rps: Optional[float] = None,
    engine: Optional[str] = None,
) -> LoadPlan:
    """Draw a deterministic request schedule over ``corpus``.

    Each step either repeats a uniformly chosen earlier request (with
    probability ``repeat_ratio``, once anything was issued) or issues the
    next corpus entry, cycling when the corpus is exhausted.  With
    ``rate_rps`` set, arrivals are open-loop Poisson offsets at that
    rate; otherwise the plan is closed-loop (drivers fire as fast as
    their concurrency allows).  ``engine`` stamps every payload so one
    plan can be re-targeted per engine (the bench builds three).
    """
    if requests < 1:
        raise SegBusError("loadgen requests must be >= 1")
    if not 0.0 <= repeat_ratio <= 1.0:
        raise SegBusError("repeat_ratio must be in [0, 1]")
    if not corpus:
        raise SegBusError("loadgen corpus must not be empty")
    base: List[Dict[str, object]] = []
    for payload in corpus:
        item = dict(payload)
        if engine is not None:
            item["engine"] = engine
        base.append(item)
    rng = np.random.default_rng(seed)
    payloads: List[Mapping[str, object]] = []
    payload_ids: List[int] = []
    issued: List[int] = []
    next_new = 0
    for _ in range(requests):
        if issued and float(rng.random()) < repeat_ratio:
            payload_id = issued[int(rng.integers(0, len(issued)))]
        else:
            payload_id = next_new % len(base)
            next_new += 1
        issued.append(payload_id)
        payloads.append(base[payload_id])
        payload_ids.append(payload_id)
    if rate_rps is not None and rate_rps > 0:
        gaps = rng.exponential(1.0 / rate_rps, size=requests)
        arrivals = tuple(float(v) for v in np.cumsum(gaps))
    else:
        arrivals = tuple(0.0 for _ in range(requests))
    return LoadPlan(
        payloads=tuple(payloads),
        payload_ids=tuple(payload_ids),
        arrival_s=arrivals,
        seed=seed,
        repeat_ratio=repeat_ratio,
    )


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


@dataclass
class _Record:
    status: int = 0
    cache: str = ""
    elapsed_s: float = 0.0
    digest: str = ""
    exec_ps: int = 0


@dataclass
class LoadgenReport:
    """Everything one load run measured (see :meth:`format`)."""

    requests: int
    ok: int
    errors: int
    by_status: Dict[str, int]
    by_cache: Dict[str, int]
    unique_payloads: int
    elapsed_s: float
    throughput_rps: float
    latency_ms: Dict[str, float]
    hit_rate: float
    computed: int
    reused: int
    exec_ps_sum: int
    digest_checksum: int
    divergences: List[str] = field(default_factory=list)
    verified: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "by_status": dict(sorted(self.by_status.items())),
            "by_cache": dict(sorted(self.by_cache.items())),
            "unique_payloads": self.unique_payloads,
            "elapsed_s": round(self.elapsed_s, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_ms": {
                k: round(v, 3) for k, v in sorted(self.latency_ms.items())
            },
            "hit_rate": round(self.hit_rate, 6),
            "computed": self.computed,
            "reused": self.reused,
            "exec_ps_sum": self.exec_ps_sum,
            "digest_checksum": self.digest_checksum,
            "verified": self.verified,
            "divergences": list(self.divergences),
        }

    def format(self) -> str:
        lines = [
            f"loadgen: {self.requests} request(s), {self.ok} ok, "
            f"{self.errors} error(s), {self.unique_payloads} unique "
            f"payload(s), {self.elapsed_s:.2f}s "
            f"({self.throughput_rps:.1f} req/s)",
            f"  cache: {self.reused} reused / {self.computed} computed "
            f"(hit rate {self.hit_rate:.1%})",
            "  latency ms: "
            + " ".join(
                f"{k}={v:.1f}" for k, v in sorted(self.latency_ms.items())
            ),
        ]
        if self.verified:
            lines.append(
                f"  verify: {self.verified} distinct payload(s), "
                f"{len(self.divergences)} divergence(s)"
            )
        lines.extend(f"  DIVERGENT {item}" for item in self.divergences)
        return "\n".join(lines)


def _percentile_ms(latencies: Sequence[float], q: int) -> float:
    """Nearest-rank percentile in milliseconds (same rule as the bench)."""
    ordered = sorted(latencies)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, -(-q * len(ordered) // 100) - 1))
    return ordered[rank] * 1e3


class _HTTPWorkerClient:
    """One persistent keep-alive connection, rebuilt on transport errors."""

    def __init__(self, url: str, timeout_s: float) -> None:
        parts = urlsplit(url)
        if parts.scheme != "http" or parts.hostname is None:
            raise SegBusError(f"loadgen needs an http:// URL, got {url!r}")
        self._host = parts.hostname
        self._port = parts.port or 80
        self._timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    def post(self, payload: Mapping[str, object]) -> Tuple[int, str, bytes]:
        body = json.dumps(payload).encode("utf-8")
        for attempt in (1, 2):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self._host, self._port, timeout=self._timeout_s
                )
            try:
                self._conn.request(
                    "POST",
                    "/v1/jobs",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = self._conn.getresponse()
                data = response.read()
                cache = response.getheader("X-Segbus-Cache") or ""
                return response.status, cache, data
            except (OSError, http.client.HTTPException):
                self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None


def run_loadgen(
    plan: LoadPlan,
    *,
    url: Optional[str] = None,
    service=None,
    concurrency: int = DEFAULT_CONCURRENCY,
    request_timeout_s: float = 300.0,
    verify: bool = False,
) -> LoadgenReport:
    """Drive ``plan`` against a server (``url``) or a service in-process.

    Exactly one of ``url``/``service`` must be given.  ``concurrency``
    worker threads consume the schedule; open-loop plans are paced by a
    producer thread at their arrival offsets.
    """
    if (url is None) == (service is None):
        raise SegBusError("loadgen needs exactly one of url= or service=")
    if concurrency < 1:
        raise SegBusError("concurrency must be >= 1")

    records: List[_Record] = [_Record() for _ in range(plan.requests)]
    first_body: Dict[int, bytes] = {}
    body_lock = threading.Lock()
    work: "queue.Queue[Optional[int]]" = queue.Queue()

    def handle(index: int, client: Optional[_HTTPWorkerClient]) -> None:
        payload = plan.payloads[index]
        record = records[index]
        started = time.perf_counter()
        if client is not None:
            try:
                status, cache, data = client.post(payload)
            except (OSError, http.client.HTTPException) as exc:
                record.status = 599
                record.cache = "transport-error"
                record.elapsed_s = time.perf_counter() - started
                record.digest = f"transport: {exc}"
                return
        else:
            response = service.submit(payload, timeout_s=request_timeout_s)
            status, cache, data = (
                response.status,
                response.cache,
                response.body,
            )
        record.status = status
        record.cache = cache
        record.elapsed_s = time.perf_counter() - started
        if 200 <= status < 300:
            with body_lock:
                first_body.setdefault(plan.payload_ids[index], data)
            try:
                body = json.loads(data.decode("utf-8"))
                record.digest = str(body.get("digest", ""))
                result = body.get("result", {})
                if isinstance(result, dict):
                    record.exec_ps = int(
                        result.get("execution_time_ps", 0) or 0
                    )
            except (ValueError, UnicodeDecodeError):
                record.digest = "unparseable"

    def worker() -> None:
        client = (
            _HTTPWorkerClient(url, request_timeout_s)
            if url is not None
            else None
        )
        try:
            while True:
                index = work.get()
                if index is None:
                    return
                handle(index, client)
        finally:
            if client is not None:
                client.close()

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    open_loop = any(offset > 0 for offset in plan.arrival_s)
    if open_loop:
        for index in range(plan.requests):
            delay = plan.arrival_s[index] - (time.perf_counter() - started)
            if delay > 0:
                time.sleep(delay)
            work.put(index)
    else:
        for index in range(plan.requests):
            work.put(index)
    for _ in threads:
        work.put(None)
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    by_status: Dict[str, int] = {}
    by_cache: Dict[str, int] = {}
    latencies: List[float] = []
    ok = 0
    exec_ps_sum = 0
    digest_checksum = 0
    for record in records:
        by_status[str(record.status)] = by_status.get(str(record.status), 0) + 1
        if record.cache:
            by_cache[record.cache] = by_cache.get(record.cache, 0) + 1
        latencies.append(record.elapsed_s)
        if 200 <= record.status < 300:
            ok += 1
            exec_ps_sum += record.exec_ps
            if record.digest:
                digest_checksum += int(record.digest[:12] or "0", 16)
    reused = by_cache.get("hit", 0) + by_cache.get("coalesced", 0)
    computed = by_cache.get("miss", 0)

    divergences: List[str] = []
    verified = 0
    if verify:
        from repro.serve.jobs import execute_job, parse_job, response_bytes

        for payload_id, served in sorted(first_body.items()):
            verified += 1
            payload = None
            for index, pid in enumerate(plan.payload_ids):
                if pid == payload_id:
                    payload = plan.payloads[index]
                    break
            assert payload is not None
            expected = response_bytes(execute_job(parse_job(payload)))
            if expected != served:
                divergences.append(
                    f"payload {payload_id}: served bytes differ from "
                    "direct execution"
                )

    return LoadgenReport(
        requests=plan.requests,
        ok=ok,
        errors=plan.requests - ok,
        by_status=by_status,
        by_cache=by_cache,
        unique_payloads=plan.unique_payloads,
        elapsed_s=elapsed,
        throughput_rps=plan.requests / elapsed if elapsed > 0 else 0.0,
        latency_ms={
            "p50": _percentile_ms(latencies, 50),
            "p90": _percentile_ms(latencies, 90),
            "p99": _percentile_ms(latencies, 99),
        },
        hit_rate=reused / ok if ok else 0.0,
        computed=computed,
        reused=reused,
        exec_ps_sum=exec_ps_sum,
        digest_checksum=digest_checksum,
        divergences=divergences,
        verified=verified,
    )


# ---------------------------------------------------------------------------
# CLI (python -m repro.serve.loadgen / segbus loadgen)
# ---------------------------------------------------------------------------


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """The loadgen flags (shared with ``segbus loadgen``)."""
    parser.add_argument(
        "--url", required=True, help="server base URL, e.g. http://127.0.0.1:8787"
    )
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS,
        help="total requests to send (default %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="schedule seed (default %(default)s)",
    )
    parser.add_argument(
        "--repeat-ratio", type=float, default=DEFAULT_REPEAT_RATIO,
        help="probability a request repeats an earlier one "
        "(cache exercise; default %(default)s)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=DEFAULT_CONCURRENCY,
        help="worker threads (default %(default)s)",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="open-loop arrival rate in req/s (default: closed loop)",
    )
    parser.add_argument(
        "--models", type=int, default=4,
        help="generated corpus models (default %(default)s)",
    )
    parser.add_argument(
        "--model-seed", type=int, default=4242,
        help="base seed of the generated corpus (default %(default)s)",
    )
    parser.add_argument(
        "--workload", action="append", default=[], metavar="NAME",
        help="add a curated workload scenario to the corpus (repeatable)",
    )
    parser.add_argument(
        "--kind", choices=("emulate", "estimate", "lint"), default="emulate",
        help="job kind for every request (default %(default)s)",
    )
    parser.add_argument(
        "--engine", default=None,
        help="engine stamped on every payload (default: server default)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="per-request timeout in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="re-execute each distinct payload locally and require the "
        "served bytes to match (equivalence smoke)",
    )
    parser.add_argument(
        "--expect-hit-rate", type=float, default=None, metavar="RATIO",
        help="exit non-zero when the measured cache hit rate is below this",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )


def run_from_args(args: argparse.Namespace) -> int:
    corpus = serving_corpus(
        generated=args.models,
        base_seed=args.model_seed,
        workloads=args.workload,
        kind=args.kind,
    )
    plan = build_plan(
        corpus,
        requests=args.requests,
        repeat_ratio=args.repeat_ratio,
        seed=args.seed,
        rate_rps=args.rate,
        engine=args.engine,
    )
    report = run_loadgen(
        plan,
        url=args.url,
        concurrency=args.concurrency,
        request_timeout_s=args.timeout,
        verify=args.verify,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format())
    if report.errors:
        return 1
    if report.divergences:
        return 1
    if (
        args.expect_hit_rate is not None
        and report.hit_rate < args.expect_hit_rate
    ):
        print(
            f"hit rate {report.hit_rate:.3f} below expected "
            f"{args.expect_hit_rate:.3f}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="seeded deterministic load generator for segbus serve",
    )
    add_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_from_args(args)
    except SegBusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
