"""The stdlib HTTP front end of ``segbus serve`` (no new dependencies).

A :class:`ThreadingHTTPServer` whose handler threads block on
:meth:`SegbusService.submit` — the service's own admission queue, not
the socket backlog, is the concurrency limiter.  Endpoints:

``POST /v1/jobs``
    One job object, or ``{"jobs": [...]}`` for a client-side batch.
    Single jobs answer with the job's own status (200/400/429/500/504)
    and the deterministic body bytes; the cache disposition and latency
    travel in ``X-Segbus-Cache`` / ``X-Segbus-Elapsed-Ms`` headers so a
    hit's body stays byte-identical to the miss that populated it.
    Batches always answer 200 with ``{"responses": [...]}``, each entry
    carrying its own ``status``/``cache``/``body``.

``GET /v1/health``
    Liveness: ``{"ok": true, "engine_default": ...}``.

``GET /v1/stats``
    The service counters: cache hits/misses/evictions, per-disposition
    request counts, queue depth, executor supervision counters, latency
    percentiles.

Shed requests carry ``Retry-After`` (seconds, integer-rounded up) as the
backpressure contract promises.
"""

from __future__ import annotations

import json
import logging
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.serve.service import SegbusService, ServeResponse

logger = logging.getLogger(__name__)

#: request bodies above this are refused with 413 before reading more
MAX_BODY_BYTES = 32 << 20


class SegbusHTTPServer(ThreadingHTTPServer):
    """The bound server; holds the service the handlers dispatch into."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: SegbusService):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server_version = "segbus-serve/1"
    protocol_version = "HTTP/1.1"  # keep-alive: loadgen reuses connections
    # one TCP segment per response: buffered writes plus TCP_NODELAY.
    # Unbuffered head-then-body writes on a keep-alive connection trip
    # the Nagle/delayed-ACK interaction — a flat ~40 ms stall per
    # request that would swamp every latency percentile the bench pins
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    @property
    def service(self) -> SegbusService:
        assert isinstance(self.server, SegbusHTTPServer)
        return self.server.service

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        logger.debug("%s - %s", self.address_string(), format % args)

    def _send(
        self,
        status: int,
        body: bytes,
        cache: Optional[str] = None,
        elapsed_s: Optional[float] = None,
        retry_after_s: Optional[float] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if cache is not None:
            self.send_header("X-Segbus-Cache", cache)
        if elapsed_s is not None:
            self.send_header("X-Segbus-Elapsed-Ms", f"{elapsed_s * 1e3:.3f}")
        if retry_after_s is not None:
            self.send_header("Retry-After", str(math.ceil(retry_after_s)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: object) -> None:
        self._send(
            status,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    def _send_serve_response(self, response: ServeResponse) -> None:
        self._send(
            response.status,
            response.body,
            cache=response.cache,
            elapsed_s=response.elapsed_s,
            retry_after_s=response.retry_after_s,
        )

    # -- endpoints ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/v1/health":
            self._send_json(
                200,
                {
                    "ok": True,
                    "service": "segbus-serve",
                    "engine_default": self.service.config.engine,
                },
            )
        elif self.path == "/v1/stats":
            self._send_json(200, self.service.stats())
        else:
            self._send_json(
                404, {"error": {"kind": "not-found", "message": self.path}}
            )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path != "/v1/jobs":
            self._send_json(
                404, {"error": {"kind": "not-found", "message": self.path}}
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(
                413,
                {
                    "error": {
                        "kind": "too-large",
                        "message": f"body must be 0..{MAX_BODY_BYTES} bytes",
                    }
                },
            )
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json(
                400,
                {"error": {"kind": "invalid", "message": f"bad JSON: {exc}"}},
            )
            return
        if isinstance(payload, dict) and "jobs" in payload:
            jobs = payload.get("jobs")
            if not isinstance(jobs, list):
                self._send_json(
                    400,
                    {
                        "error": {
                            "kind": "invalid",
                            "message": "jobs must be a JSON array",
                        }
                    },
                )
                return
            # admit everything first so compatible jobs can coalesce into
            # one dispatcher micro-batch, then wait for all of them
            tickets = [self.service.submit_async(job) for job in jobs]
            responses = []
            for ticket in tickets:
                ticket.event.wait(self.service.config.request_timeout_s)
                if ticket.body is not None:
                    responses.append(
                        {
                            "status": 200,
                            "cache": ticket.role,
                            "body": json.loads(ticket.body.decode("utf-8")),
                        }
                    )
                else:
                    body = ticket.failure_body or b'{"error":{}}'
                    responses.append(
                        {
                            "status": ticket.failure_status or 504,
                            "cache": ticket.role,
                            "body": json.loads(body.decode("utf-8")),
                        }
                    )
            self._send_json(200, {"responses": responses})
            return
        response = self.service.submit(payload)
        self._send_serve_response(response)


def create_server(
    service: SegbusService, host: str = "127.0.0.1", port: int = 0
) -> SegbusHTTPServer:
    """Bind (port 0 = ephemeral) without starting the accept loop.

    Callers run ``serve_forever()`` on a thread of their choosing; tests
    and the bench use a daemon thread, the CLI blocks on it.
    """
    return SegbusHTTPServer((host, port), service)
