"""The simulation service: admission, caching, batching, dispatch.

:class:`SegbusService` is the transport-free core of ``segbus serve``:
the HTTP layer (:mod:`repro.serve.server`), the in-process load
generator and the test suites all drive the same :meth:`submit` path.

One request's life:

1. ``parse_job`` schema-validates the payload (400 on failure).
2. The cache is consulted under :func:`~repro.serve.jobs.cache_key`; a
   hit replays the stored bytes verbatim.
3. A concurrent request for the *same* key joins the in-flight
   computation ("coalesced") instead of queueing a duplicate — so one
   key computes at most once per cache epoch, which is also what makes
   the bench's computed/reused tick counters deterministic under
   concurrency.
4. Otherwise the job deep-validates against the XML loaders (400), and
   enters the bounded admission queue; when the queue is full the
   request is shed with a deterministic 429 + Retry-After.
5. The dispatcher thread drains a micro-batch (``batch_window_s`` /
   ``batch_max``): batch-engine emulations coalesce into one vectorized
   ``run_batch`` group (:mod:`repro.serve.batcher`), everything else
   runs through the persistent :class:`CampaignExecutor` pool with
   per-job timeouts and retries.
6. Fulfilment caches the canonical response bytes and wakes every
   waiter.  Exhausted jobs produce a structured 500 carrying the
   :class:`JobFailure` ledger; failures are never cached.

Nondeterministic facts (latency, cache disposition) live in the
:class:`ServeResponse` envelope and become HTTP headers — never body
bytes.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.analysis.executor import (
    CampaignExecutor,
    ExecutorPolicy,
    JobFailure,
)
from repro.errors import AdmissionError, JobValidationError
from repro.serve.batcher import batchable, run_emulate_batch
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    ServeJob,
    cache_key,
    execute_job,
    parse_job,
    response_bytes,
    validate_job,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Every serving knob in one picklable place (CLI flags mirror these)."""

    #: default engine for jobs that do not name one (None = SEGBUS_ENGINE)
    engine: Optional[str] = None
    #: executor pool width; 1 = serial in-process (no spawn cost)
    workers: int = 1
    #: per-job timeout (needs workers >= 2 to be enforceable)
    timeout_s: Optional[float] = None
    #: executor attempts per job (retries = attempts - 1)
    retries: int = 3
    #: bounded admission queue depth; beyond it requests shed with 429
    queue_depth: int = 64
    #: result-cache caps
    cache_entries: int = 1024
    cache_bytes: int = 64 << 20
    #: micro-batch window: how long the dispatcher lingers for companions
    batch_window_s: float = 0.005
    #: micro-batch size cap
    batch_max: int = 32
    #: how long a request thread waits for its result before 504
    request_timeout_s: float = 300.0
    #: the Retry-After a shed request advertises
    retry_after_s: float = 1.0


@dataclass
class ServeResponse:
    """One finished request: HTTP-ish status, body bytes, side channel."""

    status: int
    body: bytes
    #: cache disposition: hit | coalesced | miss | rejected | shed |
    #: failed | timeout
    cache: str
    elapsed_s: float = 0.0
    retry_after_s: Optional[float] = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class _Ticket:
    """One admitted (or instantly resolved) request the caller waits on."""

    def __init__(self, key: str, job: Optional[ServeJob]) -> None:
        self.key = key
        self.job = job
        self.event = threading.Event()
        self.body: Optional[bytes] = None
        self.failure_status: Optional[int] = None
        self.failure_body: Optional[bytes] = None
        self.role = "miss"
        self.retry_after_s: Optional[float] = None
        #: coalesced requests for the same key, resolved with the owner
        self.followers: List["_Ticket"] = []

    def resolve_ok(self, body: bytes) -> None:
        self.body = body
        self.event.set()

    def resolve_error(self, status: int, body: bytes) -> None:
        self.failure_status = status
        self.failure_body = body
        self.event.set()


def _error_bytes(
    kind: str,
    message: str,
    failures: Optional[List[Dict[str, object]]] = None,
    **extra: object,
) -> bytes:
    error: Dict[str, object] = {"kind": kind, "message": message, **extra}
    if failures is not None:
        error["failures"] = failures
    return json.dumps(
        {"error": error}, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _failure_dicts(failures) -> List[Dict[str, object]]:
    return [
        {
            "label": f.label,
            "attempts": f.attempts,
            "kind": f.kind,
            "error": f.error,
            "message": f.message,
        }
        for f in failures
    ]


@dataclass
class _Counters:
    """Per-disposition request counters (stats endpoint and the bench)."""

    by_role: Dict[str, int] = field(default_factory=dict)

    def bump(self, role: str) -> None:
        self.by_role[role] = self.by_role.get(role, 0) + 1

    def total(self) -> int:
        return sum(self.by_role.values())


class SegbusService:
    """The dispatcher, pool, cache and counters behind ``segbus serve``."""

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        *,
        chaos=None,
        auto_start: bool = True,
    ) -> None:
        self.config = config
        self.cache = ResultCache(
            max_entries=config.cache_entries, max_bytes=config.cache_bytes
        )
        policy = ExecutorPolicy(
            max_attempts=max(1, config.retries),
            timeout_s=config.timeout_s,
        )
        # serial_threshold=1: even a lone queued job must take the
        # parallel path when workers >= 2, or per-job timeouts (and the
        # chaos hooks the backpressure suite relies on) would silently
        # not apply to small micro-batches
        self.executor = CampaignExecutor(
            execute_job,
            policy=policy,
            workers=config.workers,
            serial_threshold=1 if (config.workers or 1) > 1 else 3,
            chaos=chaos,
        )
        self._lock = threading.Lock()
        self._queue: Deque[_Ticket] = deque()
        self._inflight: Dict[str, _Ticket] = {}
        self._wake = threading.Event()
        self._counters = _Counters()
        self._latencies: Deque[float] = deque(maxlen=4096)
        self._executor_stats: Dict[str, int] = {}
        self._batches = 0
        self._coalesced_groups = 0
        self._running = False
        self._dispatcher: Optional[threading.Thread] = None
        if auto_start:
            self.start()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._running:
                return
            self._running = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="segbus-serve-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    def stop(self) -> None:
        """Stop dispatching; fail queued tickets with 503 and join."""
        with self._lock:
            self._running = False
            pending = list(self._queue)
            self._queue.clear()
            for ticket in pending:
                self._inflight.pop(ticket.key, None)
        self._wake.set()
        for ticket in pending:
            ticket.resolve_error(
                503, _error_bytes("shutdown", "service stopping")
            )
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10.0)
            self._dispatcher = None

    def reset(self) -> None:
        """Clear cache, counters and latency samples (bench rounds)."""
        self.cache.clear()
        with self._lock:
            self._counters = _Counters()
            self._latencies.clear()
            self._executor_stats = {}
            self._batches = 0
            self._coalesced_groups = 0

    # -- submission ---------------------------------------------------------

    def submit_async(self, payload: object) -> _Ticket:
        """Admit a payload; the returned ticket resolves to its response.

        Never raises: schema/validation failures, cache hits and shed
        requests come back as already-resolved tickets.
        """
        try:
            job = parse_job(payload, default_engine=self.config.engine)
        except JobValidationError as exc:
            ticket = _Ticket("", None)
            ticket.role = "rejected"
            ticket.resolve_error(
                400, _error_bytes("invalid", exc.detail)
            )
            return ticket
        key = cache_key(job)
        ticket = _Ticket(key, job)
        with self._lock:
            cached = self.cache.get(key)
            if cached is not None:
                ticket.role = "hit"
                ticket.resolve_ok(cached)
                return ticket
            inflight = self._inflight.get(key)
            if inflight is not None:
                ticket.role = "coalesced"
                inflight.followers.append(ticket)
                return ticket
            if len(self._queue) >= self.config.queue_depth:
                return self._shed(ticket)
        # deep validation only on the path that will actually compute —
        # a key that ever produced a cached body has validated before
        try:
            validate_job(job)
        except JobValidationError as exc:
            ticket.role = "rejected"
            ticket.resolve_error(400, _error_bytes("invalid", exc.detail))
            return ticket
        with self._lock:
            # re-check under the lock: another thread may have admitted
            # or even fulfilled this key while we were validating
            cached = self.cache.peek(key)
            if cached is not None:
                ticket.role = "hit"
                ticket.resolve_ok(cached)
                return ticket
            inflight = self._inflight.get(key)
            if inflight is not None:
                ticket.role = "coalesced"
                inflight.followers.append(ticket)
                return ticket
            if len(self._queue) >= self.config.queue_depth:
                return self._shed(ticket)
            self._inflight[key] = ticket
            self._queue.append(ticket)
        self._wake.set()
        return ticket

    def _shed(self, ticket: _Ticket) -> _Ticket:
        """Resolve a ticket as shed: deterministic 429 + Retry-After."""
        ticket.role = "shed"
        ticket.retry_after_s = self.config.retry_after_s
        ticket.resolve_error(
            429,
            _error_bytes(
                "busy",
                str(
                    AdmissionError(
                        self.config.queue_depth, self.config.retry_after_s
                    )
                ),
                retry_after_s=self.config.retry_after_s,
            ),
        )
        return ticket

    def submit(
        self, payload: object, timeout_s: Optional[float] = None
    ) -> ServeResponse:
        """Admit and wait: the blocking request path the HTTP layer uses."""
        started = time.perf_counter()
        ticket = self.submit_async(payload)
        budget = (
            timeout_s
            if timeout_s is not None
            else self.config.request_timeout_s
        )
        finished = ticket.event.wait(budget)
        elapsed = time.perf_counter() - started
        if not finished:
            response = ServeResponse(
                status=504,
                body=_error_bytes(
                    "deadline",
                    f"no result within {budget:g}s (job still running)",
                ),
                cache="timeout",
                elapsed_s=elapsed,
            )
        elif ticket.body is not None:
            response = ServeResponse(
                status=200,
                body=ticket.body,
                cache=ticket.role,
                elapsed_s=elapsed,
            )
        else:
            disposition = (
                ticket.role if ticket.role in ("shed", "rejected") else "failed"
            )
            response = ServeResponse(
                status=ticket.failure_status or 500,
                body=ticket.failure_body
                or _error_bytes("internal", "no failure body"),
                cache=disposition,
                elapsed_s=elapsed,
                retry_after_s=ticket.retry_after_s,
            )
        with self._lock:
            self._counters.bump(response.cache)
            self._latencies.append(elapsed)
        return response

    # -- dispatching --------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            self._wake.wait(timeout=0.1)
            with self._lock:
                if not self._running:
                    return
                if not self._queue:
                    self._wake.clear()
                    continue
            # linger for companions: the window is what lets unrelated
            # batch-engine requests land in one vectorized group
            if self.config.batch_window_s > 0:
                time.sleep(self.config.batch_window_s)
            with self._lock:
                batch: List[_Ticket] = []
                while self._queue and len(batch) < self.config.batch_max:
                    batch.append(self._queue.popleft())
                if not self._queue:
                    self._wake.clear()
            if batch:
                self._execute_batch(batch)

    @staticmethod
    def _job_of(ticket: _Ticket) -> ServeJob:
        job = ticket.job
        assert job is not None  # queued tickets always carry their job
        return job

    def _execute_batch(self, batch: List[_Ticket]) -> None:
        with self._lock:
            self._batches += 1
        vector = [t for t in batch if batchable(self._job_of(t))]
        rest = [t for t in batch if not batchable(self._job_of(t))]
        if vector:
            if len(vector) > 1:
                with self._lock:
                    self._coalesced_groups += 1
            try:
                outcomes = run_emulate_batch(
                    [self._job_of(t) for t in vector]
                )
            except Exception as exc:  # defensive: never hang the waiters
                for ticket in vector:
                    self._fulfil_failure(
                        ticket,
                        [
                            JobFailure(
                                label=self._job_of(ticket).label,
                                attempts=1,
                                kind="error",
                                error=type(exc).__name__,
                                message=str(exc),
                            )
                        ],
                    )
            else:
                for ticket, (body, failure) in zip(vector, outcomes):
                    if body is not None:
                        self._fulfil_ok(ticket, response_bytes(body))
                    else:
                        self._fulfil_failure(ticket, [failure])
        if rest:
            result = self.executor.run([self._job_of(t) for t in rest])
            with self._lock:
                for key, value in (
                    ("attempts", result.stats.attempts),
                    ("retries", result.stats.retries),
                    ("crashes", result.stats.crashes),
                    ("timeouts", result.stats.timeouts),
                    ("respawned_workers", result.stats.respawned_workers),
                ):
                    self._executor_stats[key] = (
                        self._executor_stats.get(key, 0) + value
                    )
            failures_by_label = {f.label: f for f in result.failures}
            for ticket, body in zip(rest, result.results):
                if body is not None:
                    self._fulfil_ok(ticket, response_bytes(body))
                else:
                    failure = failures_by_label.get(
                        self._job_of(ticket).label
                    )
                    self._fulfil_failure(
                        ticket, [failure] if failure else []
                    )

    def _fulfil_ok(self, ticket: _Ticket, body: bytes) -> None:
        with self._lock:
            self.cache.put(ticket.key, body)
            self._inflight.pop(ticket.key, None)
            followers = list(getattr(ticket, "followers", ()))
        ticket.resolve_ok(body)
        for follower in followers:
            follower.resolve_ok(body)

    def _fulfil_failure(
        self, ticket: _Ticket, failures: List[Optional[JobFailure]]
    ) -> None:
        ledger = _failure_dicts([f for f in failures if f is not None])
        message = (
            ledger[0]["message"] if ledger else "job failed without a ledger"
        )
        body = _error_bytes(
            "job-failed", str(message), failures=ledger
        )
        with self._lock:
            # failures are never cached: a transient crash must not be
            # replayed to every future request for the same model
            self._inflight.pop(ticket.key, None)
            followers = list(getattr(ticket, "followers", ()))
        ticket.resolve_error(500, body)
        for follower in followers:
            follower.resolve_error(500, body)

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self._counters.by_role)
            total = self._counters.total()
            latencies = sorted(self._latencies)
            queue_depth = len(self._queue)
            inflight = len(self._inflight)
            executor_stats = dict(self._executor_stats)
            batches = self._batches
            coalesced_groups = self._coalesced_groups

        def pct(q: int) -> float:
            if not latencies:
                return 0.0
            rank = max(
                0,
                min(len(latencies) - 1, -(-q * len(latencies) // 100) - 1),
            )
            return latencies[rank] * 1e3

        return {
            "requests": total,
            "by_disposition": counters,
            "queue_depth": queue_depth,
            "inflight": inflight,
            "dispatch_batches": batches,
            "vectorized_groups": coalesced_groups,
            "executor": executor_stats,
            "cache": self.cache.stats().to_dict(),
            "latency_ms": {
                "p50": pct(50),
                "p90": pct(90),
                "p99": pct(99),
            },
            "config": {
                "workers": self.config.workers,
                "queue_depth": self.config.queue_depth,
                "batch_max": self.config.batch_max,
                "batch_window_s": self.config.batch_window_s,
            },
        }
