"""The ``serve_throughput`` bench workload: a server under seeded load.

One service + HTTP server pair boots per engine (outside the timed
region); each timed round clears the cache and counters, replays the
same seeded repeat-heavy plan through real sockets, and returns tick
counters that are deterministic *and* engine-equal:

``requests``
    plan length (trivially fixed);
``computed`` / ``reused``
    distinct payloads vs cache-served responses — deterministic under
    concurrency because request coalescing guarantees one computation
    per key per cache epoch, and engine-equal because the plan issues
    the same payload set to every engine;
``exec_ps_sum``
    summed emulated completion times over every response — the ENG-1
    tick-for-tick contract asserted at the HTTP boundary;
``digest_checksum``
    summed report-digest prefixes — byte-level equivalence of the full
    served reports across engines, folded into an integer the bench's
    cross-engine equality assert can gate.

The wall/latency side (requests per second, p50/p90/p99) rides along as
:func:`service_metrics` into the baseline's ``service`` block.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.errors import SegBusError
from repro.serve.loadgen import (
    LoadgenReport,
    LoadPlan,
    build_plan,
    run_loadgen,
    serving_corpus,
)
from repro.serve.server import SegbusHTTPServer, create_server
from repro.serve.service import SegbusService, ServiceConfig

BENCH_SEED = 20260808
BENCH_REQUESTS = 120
BENCH_REPEAT_RATIO = 0.9
BENCH_CONCURRENCY = 4
#: generated corpus models + curated workloads (6 distinct payloads:
#: 120 requests over 6 payloads bounds the hit rate below by 95%)
BENCH_GENERATED = 4
BENCH_MODEL_SEED = 9101
BENCH_WORKLOADS = ("bursty", "long_tail")


class _EngineHarness:
    """One booted server + its per-engine plan, reused across rounds."""

    def __init__(self, engine: str) -> None:
        self.service = SegbusService(
            ServiceConfig(
                engine=engine,
                workers=1,  # serial in-process: measure serving, not spawning
                queue_depth=1024,  # never shed during the bench
                batch_window_s=0.002,
            )
        )
        self.server: SegbusHTTPServer = create_server(self.service)
        self.thread = threading.Thread(
            target=self.server.serve_forever,
            name=f"serve-bench-{engine}",
            daemon=True,
        )
        self.thread.start()
        self.plan: LoadPlan = build_plan(
            _corpus(),
            requests=BENCH_REQUESTS,
            repeat_ratio=BENCH_REPEAT_RATIO,
            seed=BENCH_SEED,
            engine=engine,
        )
        self.last_report: Optional[LoadgenReport] = None


_CORPUS = None
_HARNESSES: Dict[str, _EngineHarness] = {}


def _corpus():
    global _CORPUS
    if _CORPUS is None:
        _CORPUS = serving_corpus(
            generated=BENCH_GENERATED,
            base_seed=BENCH_MODEL_SEED,
            workloads=BENCH_WORKLOADS,
        )
    return _CORPUS


def _harness(engine: str) -> _EngineHarness:
    harness = _HARNESSES.get(engine)
    if harness is None:
        harness = _EngineHarness(engine)
        _HARNESSES[engine] = harness
    return harness


def serve_round(engine: str) -> Dict[str, int]:
    """One timed round: reset, replay the plan over HTTP, return ticks."""
    harness = _harness(engine)
    harness.service.reset()
    report = run_loadgen(
        harness.plan,
        url=harness.server.url,
        concurrency=BENCH_CONCURRENCY,
    )
    if report.errors:
        raise SegBusError(
            f"serve_throughput({engine}): {report.errors} failed request(s) "
            f"of {report.requests} — statuses {report.by_status}"
        )
    harness.last_report = report
    return {
        "requests": report.requests,
        "computed": report.computed,
        "reused": report.reused,
        "exec_ps_sum": report.exec_ps_sum,
        "digest_checksum": report.digest_checksum,
    }


def serve_prepare(engine: str):
    """Bench ``prepare`` hook: boot the harness outside the timed region."""
    _harness(engine)

    def run() -> Dict[str, int]:
        return serve_round(engine)

    return run


def service_metrics(engine: str) -> Dict[str, float]:
    """Latency/throughput/hit-rate of the engine's last timed round."""
    harness = _HARNESSES.get(engine)
    if harness is None or harness.last_report is None:
        return {}
    report = harness.last_report
    return {
        "throughput_rps": report.throughput_rps,
        "latency_p50_ms": report.latency_ms["p50"],
        "latency_p90_ms": report.latency_ms["p90"],
        "latency_p99_ms": report.latency_ms["p99"],
        "hit_rate": report.hit_rate,
    }
