"""Coalesce queued emulate jobs into vectorized ``run_batch`` groups.

When the dispatcher drains its micro-batch window and finds several
batch-engine emulations waiting, running them one executor job at a time
would waste exactly the lockstep advantage PR 7 built.  This module
takes those jobs straight into :func:`repro.emulator.batchkernel.run_batch`,
which groups compatible members by canonical digest, dedups identical
plans, clones zero-hit members off one reference run, and drives the
rest in lockstep — per-member failure isolation included.

Eligibility (:func:`batchable`) is deliberately conservative:

* ``kind == "emulate"`` with the ``batch`` engine — other engines gain
  nothing from coalescing and keep their per-job executor path;
* inline schemes only — workload jobs regenerate their models inside a
  worker (generation is seeded but costs lint passes; the dispatcher
  thread must not stall on it);
* not ``strict`` — the strict path lints before simulating and its
  failure shape (``LintError``) belongs to the per-job path.

Equivalence: a member's report comes from the same ``build_report`` over
the same batch kernel the per-job path would use with ``engine="batch"``,
so coalescing is invisible in the response bytes — the serving
equivalence suite pins this through real HTTP.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.executor import JobFailure
from repro.serve.jobs import ServeJob


def batchable(job: ServeJob) -> bool:
    """True when ``job`` may ride a coalesced ``run_batch`` group."""
    return (
        job.kind == "emulate"
        and job.engine == "batch"
        and job.workload is None
        and not job.strict
        and job.psdf_xml is not None
        and job.psm_xml is not None
    )


def run_emulate_batch(
    jobs: Sequence[ServeJob],
) -> List[Tuple[Optional[Dict[str, object]], Optional[JobFailure]]]:
    """Execute eligible emulate jobs as one vectorized batch.

    Returns one ``(body, failure)`` pair per job, in input order —
    exactly one of the two is set.  A member that fails (deadlock, fault
    exhaustion) becomes a structured :class:`JobFailure` without
    poisoning its siblings, mirroring the executor's ledger shape.
    """
    from repro.emulator.batchkernel import BatchMember, run_batch
    from repro.emulator.emulator import SegBusEmulator
    from repro.errors import SegBusError
    from repro.serve.jobs import RESPONSE_SCHEMA_VERSION, cache_key
    from repro.xmlio.faults_xml import parse_fault_plan_xml

    members: List[BatchMember] = []
    for job in jobs:
        emulator = SegBusEmulator(
            job.psdf_xml or "",
            job.psm_xml or "",
            fault_plan=(
                parse_fault_plan_xml(job.fault_plan_xml)
                if job.fault_plan_xml is not None
                else None
            ),
        )
        members.append(
            BatchMember(
                label=job.label,
                application=emulator.application,
                spec=emulator.spec,
                config=emulator.config,
                fault_plan=emulator.fault_plan,
            )
        )
    try:
        run = run_batch(members)
    except SegBusError as exc:
        # a whole-batch failure (not per-member) fails every job alike
        failure = lambda job: JobFailure(  # noqa: E731 - local shape helper
            label=job.label,
            attempts=1,
            kind="error",
            error=type(exc).__name__,
            message=str(exc),
        )
        return [(None, failure(job)) for job in jobs]

    out: List[Tuple[Optional[Dict[str, object]], Optional[JobFailure]]] = []
    for job, outcome in zip(jobs, run.outcomes):
        if outcome.error is not None or outcome.report is None:
            error = outcome.error
            out.append(
                (
                    None,
                    JobFailure(
                        label=job.label,
                        attempts=1,
                        kind="error",
                        error=type(error).__name__ if error else "SegBusError",
                        message=str(error) if error else "no report produced",
                    ),
                )
            )
            continue
        report = outcome.report
        body: Dict[str, object] = {
            "kind": "emulate",
            "engine": job.engine,
            "multimode": False,
            "result": report.to_dict(),
            "digest": report.digest(),
            "schema": RESPONSE_SCHEMA_VERSION,
            "key": cache_key(job),
        }
        out.append((body, None))
    return out
