"""Serve job schema: parse, validate, key, and execute one JSON job.

Everything that gives a request its *meaning* lives here, importable
without any HTTP machinery, so the dispatcher, the load generator, the
equivalence suite and the CLI all share one code path:

* :func:`parse_job` turns a JSON payload into a frozen :class:`ServeJob`
  of primitives (picklable — the campaign executor ships it to worker
  processes) and rejects unknown fields, bad kinds and unknown engines.
* :func:`validate_job` runs the deep checks: the inline schemes go
  through the real XML loaders, so a request that would crash a worker
  is refused at admission with a 400 instead.
* :func:`cache_key` derives the digest the result cache is keyed on.
  The key covers every input byte (scheme texts, workload name, engine,
  flags) *and* the versions of the rule catalogue and the estimator —
  see :func:`cache_key` for exactly which jobs carry which version.
* :func:`execute_job` produces the response body as a plain dict whose
  canonical JSON encoding is byte-identical to what the library produces
  directly — the ENG-1 equivalence contract lifted to the HTTP boundary
  (tests/property/test_serve_equivalence.py).

Response bodies are deterministic by construction: no timestamps, no
wall clocks, no request ids.  Anything nondeterministic (latency, cache
disposition) travels in HTTP headers, never in the body, so a cache hit
can replay the stored bytes verbatim.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.analysis.executor import canonical_digest
from repro.analysis.stochastic import (
    ESTIMATOR_VERSION,
    MultiModeStochastic,
    StochasticEstimate,
)
from repro.emulator.fastkernel import resolve_engine
from repro.errors import JobValidationError, SegBusError
from repro.units import fs_to_ps

#: bump when the response body layout changes: old cached bytes are then
#: unreachable (the key includes this constant)
RESPONSE_SCHEMA_VERSION = 1

JOB_KINDS = ("emulate", "estimate", "lint", "selftest")

#: selftest jobs are bounded so one request cannot monopolize a worker
MAX_SELFTEST_COUNT = 50

_ALLOWED_FIELDS = {
    "kind",
    "engine",
    "psdf_xml",
    "psm_xml",
    "fault_plan_xml",
    "workload",
    "strict",
    "count",
    "seed",
}


@dataclass(frozen=True)
class ServeJob:
    """One validated job: primitives only, picklable, canonically digestible.

    The model arrives either as inline scheme texts (``psdf_xml`` +
    ``psm_xml``, optionally ``fault_plan_xml``) or as a curated scenario
    name (``workload``, see ``repro.apps.workloads.scenario_catalog``).
    ``engine`` is always resolved (never None) so two spellings of the
    default engine cannot fragment the cache.
    """

    kind: str
    engine: str
    psdf_xml: Optional[str] = None
    psm_xml: Optional[str] = None
    fault_plan_xml: Optional[str] = None
    workload: Optional[str] = None
    strict: bool = False
    count: int = 0
    seed: int = 1

    @property
    def label(self) -> str:
        """Executor/chaos label: the kind plus a stable key prefix."""
        return f"{self.kind}:{cache_key(self)[:12]}"


def _require(condition: bool, detail: str) -> None:
    if not condition:
        raise JobValidationError(detail)


def parse_job(
    payload: object, default_engine: Optional[str] = None
) -> ServeJob:
    """Schema-validate a JSON payload into a :class:`ServeJob`.

    Cheap checks only (field names, kinds, engine resolution, workload
    names, bounds) — cache lookups must not pay XML parsing, so the deep
    loader validation is a separate step (:func:`validate_job`) that the
    service runs only on a cache miss.
    """
    _require(isinstance(payload, Mapping), "job must be a JSON object")
    assert isinstance(payload, Mapping)
    unknown = sorted(set(payload) - _ALLOWED_FIELDS)
    _require(not unknown, f"unknown field(s): {', '.join(unknown)}")

    kind = payload.get("kind")
    _require(
        isinstance(kind, str) and kind in JOB_KINDS,
        f"kind must be one of {', '.join(JOB_KINDS)} (got {kind!r})",
    )
    assert isinstance(kind, str)

    engine_arg = payload.get("engine", default_engine)
    _require(
        engine_arg is None or isinstance(engine_arg, str),
        "engine must be a string",
    )
    try:
        engine = resolve_engine(engine_arg)
    except SegBusError as exc:
        raise JobValidationError(str(exc)) from exc

    for field in ("psdf_xml", "psm_xml", "fault_plan_xml", "workload"):
        value = payload.get(field)
        _require(
            value is None or (isinstance(value, str) and value.strip() != ""),
            f"{field} must be a non-empty string",
        )
    strict = payload.get("strict", False)
    _require(isinstance(strict, bool), "strict must be a boolean")

    psdf_xml = payload.get("psdf_xml")
    psm_xml = payload.get("psm_xml")
    fault_plan_xml = payload.get("fault_plan_xml")
    workload = payload.get("workload")

    if workload is not None:
        from repro.apps.workloads import scenario_catalog

        catalog = scenario_catalog()
        _require(
            workload in catalog,
            f"unknown workload {workload!r}; known: {', '.join(catalog)}",
        )
        _require(
            psdf_xml is None and psm_xml is None and fault_plan_xml is None,
            "workload and inline schemes are mutually exclusive",
        )

    count = payload.get("count", 0)
    seed = payload.get("seed", 1)
    _require(
        isinstance(count, int) and not isinstance(count, bool),
        "count must be an integer",
    )
    _require(
        isinstance(seed, int) and not isinstance(seed, bool),
        "seed must be an integer",
    )

    if kind == "selftest":
        _require(
            psdf_xml is None and psm_xml is None and workload is None,
            "selftest jobs take count/seed, not a model",
        )
        _require(
            1 <= count <= MAX_SELFTEST_COUNT,
            f"selftest count must be in 1..{MAX_SELFTEST_COUNT}",
        )
    else:
        _require(count == 0, f"count applies to selftest jobs, not {kind}")
        has_inline = psdf_xml is not None and psm_xml is not None
        if kind == "lint":
            _require(
                workload is not None
                or psdf_xml is not None
                or psm_xml is not None,
                "lint jobs need a workload or at least one inline scheme",
            )
        else:
            _require(
                workload is not None or has_inline,
                f"{kind} jobs need a workload or both psdf_xml and psm_xml",
            )
    if fault_plan_xml is not None:
        _require(
            kind == "emulate",
            f"fault_plan_xml applies to emulate jobs, not {kind}",
        )

    return ServeJob(
        kind=kind,
        engine=engine,
        psdf_xml=psdf_xml,
        psm_xml=psm_xml,
        fault_plan_xml=fault_plan_xml,
        workload=workload,
        strict=strict,
        count=count if kind == "selftest" else 0,
        seed=seed if kind == "selftest" else 1,
    )


def validate_job(job: ServeJob) -> None:
    """Deep validation: run the inline schemes through the real loaders.

    Raises :class:`JobValidationError` naming the offending scheme.  Only
    called on a cache miss — a key that ever produced a cached response
    has necessarily validated before.
    """
    if job.psdf_xml is not None:
        from repro.xmlio.psdf_parser import parse_psdf_xml

        try:
            parse_psdf_xml(job.psdf_xml)
        except SegBusError as exc:
            raise JobValidationError(f"psdf_xml: {exc}") from exc
    if job.psm_xml is not None:
        from repro.xmlio.psm_parser import parse_psm_xml

        try:
            parse_psm_xml(job.psm_xml)
        except SegBusError as exc:
            raise JobValidationError(f"psm_xml: {exc}") from exc
    if job.fault_plan_xml is not None:
        from repro.xmlio.faults_xml import parse_fault_plan_xml

        try:
            parse_fault_plan_xml(job.fault_plan_xml)
        except SegBusError as exc:
            raise JobValidationError(f"fault_plan_xml: {exc}") from exc


# ---------------------------------------------------------------------------
# cache keys
# ---------------------------------------------------------------------------


def cache_key(job: ServeJob) -> str:
    """The digest a :class:`~repro.serve.cache.ResultCache` entry lives under.

    Covers every byte of input — scheme texts, workload name, the
    *resolved* engine, flags — plus the versions of whatever machinery
    shapes the response, so upgrading the server can never replay stale
    findings:

    * lint jobs and strict emulations key on the rule-catalogue hash
      (:func:`repro.lint.registry_hash`) — adding or rewording an SB rule
      invalidates them;
    * estimate jobs key on ``ESTIMATOR_VERSION`` — new estimator math
      invalidates them;
    * selftest jobs key on both (generation is lint-gated and the oracle
      battery embeds estimator invariants);
    * every key includes ``RESPONSE_SCHEMA_VERSION``.
    """
    parts = [
        "segbus-serve",
        RESPONSE_SCHEMA_VERSION,
        job.kind,
        job.engine,
        job.psdf_xml or "",
        job.psm_xml or "",
        job.fault_plan_xml or "",
        job.workload or "",
        job.strict,
    ]
    if job.kind == "lint" or job.strict or job.kind == "selftest":
        from repro.lint import registry_hash

        parts.append(("lint-registry", registry_hash()))
    if job.kind in ("estimate", "selftest"):
        parts.append(("estimator", ESTIMATOR_VERSION))
    if job.kind == "selftest":
        parts.append(("selftest", job.count, job.seed))
    return canonical_digest(*parts)


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


def _load_models(job: ServeJob):
    """(application, platform_or_spec, is_multimode) for a model-bearing job."""
    if job.workload is not None:
        from repro.apps.workloads import workload_model

        model = workload_model(job.workload)
        return model.application, model.platform, model.is_multimode
    from repro.emulator.kernel import PlatformSpec
    from repro.xmlio.psdf_parser import parse_psdf_xml
    from repro.xmlio.psm_parser import parse_psm_xml

    application = parse_psdf_xml(job.psdf_xml or "").to_graph()
    spec = PlatformSpec.from_parsed_psm(parse_psm_xml(job.psm_xml or ""))
    return application, spec, False


def _queue_dict(model) -> Dict[str, object]:
    """One M/D/1 queue, ints exact and floats closed-form deterministic."""
    return {
        "name": model.name,
        "arrivals": model.arrivals,
        "busy_fs": model.busy_fs,
        "window_fs": model.window_fs,
        "utilization": model.utilization,
        "mean_wait_fs": model.mean_wait_fs,
        "mean_queue_depth": model.mean_queue_depth,
    }


def _estimate_dict(estimate: StochasticEstimate) -> Dict[str, object]:
    return {
        "analytic_fs": estimate.analytic_fs,
        "contention_fs": estimate.contention_fs,
        "execution_time_fs": estimate.execution_time_fs,
        "execution_time_ps": fs_to_ps(estimate.execution_time_fs),
        "contention_ratio": estimate.contention_ratio,
        "critical_chain": list(estimate.critical_chain),
        "segments": {
            str(index): _queue_dict(model)
            for index, model in sorted(estimate.segments.items())
        },
        "ca": _queue_dict(estimate.ca),
        "border_units": {
            f"{a}-{b}": _queue_dict(model)
            for (a, b), model in sorted(estimate.border_units.items())
        },
    }


def _multimode_estimate_dict(
    estimate: MultiModeStochastic,
) -> Dict[str, object]:
    return {
        "execution_time_fs": estimate.execution_time_fs,
        "execution_time_ps": fs_to_ps(estimate.execution_time_fs),
        "contention_fs": estimate.contention_fs,
        "per_mode": {
            name: _estimate_dict(per_mode)
            for name, per_mode in sorted(estimate.per_mode.items())
        },
    }


def _execute_emulate(job: ServeJob) -> Dict[str, object]:
    application, platform, is_multimode = _load_models(job)
    if is_multimode:
        from repro.emulator.multimode import run_multimode
        from repro.errors import LintError

        if job.strict:
            from repro.lint import lint_multimode

            report = lint_multimode(application, platform=platform)
            if report.errors:
                raise LintError(
                    [f.format() for f in report.errors], report=report
                )
        mm = run_multimode(application, platform, engine=job.engine)
        return {
            "kind": "emulate",
            "engine": job.engine,
            "multimode": True,
            "result": mm.to_dict(),
            "digest": mm.digest(),
        }
    if job.workload is not None:
        from repro.emulator.emulator import SegBusEmulator

        emulator = SegBusEmulator.from_models(application, platform)
    else:
        from repro.emulator.emulator import SegBusEmulator
        from repro.xmlio.faults_xml import parse_fault_plan_xml

        fault_plan = (
            parse_fault_plan_xml(job.fault_plan_xml)
            if job.fault_plan_xml is not None
            else None
        )
        emulator = SegBusEmulator(
            job.psdf_xml or "", job.psm_xml or "", fault_plan=fault_plan
        )
    report = emulator.run(strict=job.strict, engine=job.engine)
    return {
        "kind": "emulate",
        "engine": job.engine,
        "multimode": False,
        "result": report.to_dict(),
        "digest": report.digest(),
    }


def _execute_estimate(job: ServeJob) -> Dict[str, object]:
    from repro.analysis.stochastic import (
        stochastic_estimate,
        stochastic_estimate_multimode,
    )
    from repro.emulator.kernel import PlatformSpec

    application, platform, is_multimode = _load_models(job)
    if job.workload is not None:
        spec = PlatformSpec.from_platform(platform)
    else:
        spec = platform  # inline path already built the spec
    if is_multimode:
        estimate = stochastic_estimate_multimode(application, spec)
        result: Dict[str, object] = _multimode_estimate_dict(estimate)
        result["multimode"] = True
    else:
        estimate = stochastic_estimate(application, spec)
        result = _estimate_dict(estimate)
        result["multimode"] = False
    body: Dict[str, object] = {
        "kind": "estimate",
        "estimator_version": ESTIMATOR_VERSION,
        "result": result,
    }
    body["digest"] = _dict_digest(result)
    return body


def _execute_lint(job: ServeJob) -> Dict[str, object]:
    from repro.lint import (
        lint_models,
        lint_multimode,
        registry_hash,
    )

    if job.workload is not None:
        application, platform, is_multimode = _load_models(job)
        if is_multimode:
            report = lint_multimode(application, platform=platform)
        else:
            report = lint_models(application=application, platform=platform)
    else:
        application = platform = None
        if job.psdf_xml is not None:
            from repro.xmlio.psdf_parser import parse_psdf_xml

            application = parse_psdf_xml(job.psdf_xml).to_graph()
        if job.psm_xml is not None:
            from repro.xmlio.psm_parser import parse_psm_xml

            platform = parse_psm_xml(job.psm_xml).to_platform()
        report = lint_models(application=application, platform=platform)
    result = json.loads(report.to_json())
    return {
        "kind": "lint",
        "registry": registry_hash(),
        "exit_code": report.exit_code,
        "result": result,
        "digest": _dict_digest(result),
    }


def _execute_selftest(job: ServeJob) -> Dict[str, object]:
    from repro.testing.selftest import run_selftest

    report = run_selftest(
        count=job.count,
        base_seed=job.seed,
        include_golden=False,
        engine=job.engine,
        workers=1,
    )
    # elapsed_s is a wall clock — deliberately excluded: response bodies
    # must be byte-stable so cache hits replay them verbatim
    result = {
        "models": report.models,
        "divergent": report.divergent,
        "checks": report.checks,
        "failures": list(report.failures),
        "ok": report.ok,
    }
    return {
        "kind": "selftest",
        "engine": job.engine,
        "result": result,
        "digest": _dict_digest(result),
    }


def _dict_digest(result: Mapping) -> str:
    """SHA-256 over the canonical JSON of a result (sorted, compact)."""
    import hashlib

    return hashlib.sha256(
        json.dumps(result, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def execute_job(job: ServeJob) -> Dict[str, object]:
    """Run one job to its response body (the executor's picklable runner).

    The returned dict is the full deterministic response body; the
    service wraps it in bytes via :func:`response_bytes` and caches those
    bytes under :func:`cache_key`.
    """
    if job.kind == "emulate":
        body = _execute_emulate(job)
    elif job.kind == "estimate":
        body = _execute_estimate(job)
    elif job.kind == "lint":
        body = _execute_lint(job)
    elif job.kind == "selftest":
        body = _execute_selftest(job)
    else:  # pragma: no cover - parse_job gates kinds
        raise SegBusError(f"unknown job kind {job.kind!r}")
    body["schema"] = RESPONSE_SCHEMA_VERSION
    body["key"] = cache_key(job)
    return body


def response_bytes(body: Mapping) -> bytes:
    """Canonical over-the-wire encoding: sorted keys, compact separators.

    Byte-identity of served responses (the equivalence suite's contract)
    holds exactly because both the live path and the cache replay path
    round-trip through this one function.
    """
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
