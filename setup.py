"""Setup shim: lets ``pip install -e .`` work offline (no wheel package
available in this environment, so pip falls back to setup.py develop)."""
from setuptools import setup

setup()
