"""Emulation-validated placement tests."""

import pytest

from repro.apps.mp3 import paper_allocation, paper_platform
from repro.emulator.emulator import emulate
from repro.placement.placetool import EmulatedPlacementResult, PlaceTool
from repro.psdf.generators import fork_join_psdf


class TestSolveEmulated:
    @pytest.fixture(scope="class")
    def result(self, mp3_graph):
        return PlaceTool().solve_emulated(
            mp3_graph, 3,
            segment_frequencies_mhz=[91, 98, 89],
            ca_frequency_mhz=111,
        )

    def test_returns_feasible_placement(self, result, mp3_graph):
        assert isinstance(result, EmulatedPlacementResult)
        assert set(result.placement) == set(mp3_graph.process_names)
        assert set(result.placement.values()) == {1, 2, 3}

    def test_evaluates_multiple_candidates(self, result):
        assert result.candidates_evaluated > 1

    def test_not_worse_than_paper_allocation(self, result, mp3_graph):
        paper = emulate(mp3_graph, paper_platform(3))
        assert result.execution_time_us <= paper.execution_time_us + 1e-6

    def test_allocation_roundtrip(self, result):
        allocation = result.allocation()
        assert allocation.segment_count == 3
        assert allocation.placement() == result.placement

    def test_small_workload(self):
        graph = fork_join_psdf(3, items_per_worker=108)
        result = PlaceTool().solve_emulated(
            graph, 2,
            segment_frequencies_mhz=[100, 100],
            ca_frequency_mhz=120,
            neighbourhood=4,
        )
        assert result.execution_time_us > 0
        assert result.candidates_evaluated <= 5
