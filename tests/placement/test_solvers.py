"""Placement solver tests: exactness, feasibility, improvement guarantees."""

import pytest

from repro.errors import PlacementError
from repro.placement.annealing import annealed_placement
from repro.placement.cost import objective
from repro.placement.exhaustive import exhaustive_placement
from repro.placement.greedy import greedy_placement
from repro.placement.kernighan_lin import refine_placement
from repro.psdf.generators import random_dag_psdf
from repro.psdf.graph import PSDFGraph
from repro.psdf.matrix import build_communication_matrix


@pytest.fixture
def pair_matrix():
    # two tightly-coupled pairs with a weak bridge
    graph = PSDFGraph.from_edges(
        [
            ("A", "B", 1000, 1, 10),
            ("C", "D", 1000, 1, 10),
            ("B", "C", 10, 2, 10),
        ]
    )
    return build_communication_matrix(graph)


def feasible(placement, segment_count, names):
    assert set(placement) == set(names)
    used = set(placement.values())
    assert used == set(range(1, segment_count + 1))


class TestExhaustive:
    def test_finds_obvious_partition(self, pair_matrix):
        placement = exhaustive_placement(pair_matrix, 2)
        assert placement["A"] == placement["B"]
        assert placement["C"] == placement["D"]
        assert placement["A"] != placement["C"]

    def test_single_segment(self, pair_matrix):
        placement = exhaustive_placement(pair_matrix, 1)
        assert set(placement.values()) == {1}

    def test_budget_guard(self, pair_matrix):
        with pytest.raises(PlacementError, match="budget"):
            exhaustive_placement(pair_matrix, 2, budget=3)

    def test_more_segments_than_processes(self, pair_matrix):
        with pytest.raises(PlacementError):
            exhaustive_placement(pair_matrix, 5)

    def test_every_segment_nonempty(self, pair_matrix):
        placement = exhaustive_placement(pair_matrix, 2)
        feasible(placement, 2, pair_matrix.names)


class TestGreedy:
    def test_feasible(self, pair_matrix):
        placement = greedy_placement(pair_matrix, 2)
        feasible(placement, 2, pair_matrix.names)

    def test_keeps_tight_pairs_together(self, pair_matrix):
        placement = greedy_placement(pair_matrix, 2)
        assert placement["A"] == placement["B"] or placement["C"] == placement["D"]

    def test_deterministic(self):
        matrix = build_communication_matrix(random_dag_psdf(12, seed=9))
        assert greedy_placement(matrix, 3) == greedy_placement(matrix, 3)

    def test_cap_too_small_rejected(self, pair_matrix):
        with pytest.raises(PlacementError):
            greedy_placement(pair_matrix, 2, max_per_segment=1)

    def test_large_instance_feasible(self):
        matrix = build_communication_matrix(random_dag_psdf(25, seed=4))
        placement = greedy_placement(matrix, 4)
        feasible(placement, 4, matrix.names)


class TestRefinement:
    def test_never_worsens(self):
        matrix = build_communication_matrix(random_dag_psdf(14, seed=2))
        start = greedy_placement(matrix, 3)
        refined = refine_placement(matrix, start, 3)
        assert objective(matrix, refined, 3) <= objective(matrix, start, 3)
        feasible(refined, 3, matrix.names)

    def test_reaches_optimum_on_small_instance(self, pair_matrix):
        # start from the worst split, refinement must find the pairing
        bad = {"A": 1, "B": 2, "C": 1, "D": 2}
        refined = refine_placement(pair_matrix, bad, 2)
        optimum = exhaustive_placement(pair_matrix, 2)
        assert objective(pair_matrix, refined, 2) == objective(
            pair_matrix, optimum, 2
        )

    def test_does_not_mutate_input(self, pair_matrix):
        start = {"A": 1, "B": 2, "C": 1, "D": 2}
        snapshot = dict(start)
        refine_placement(pair_matrix, start, 2)
        assert start == snapshot


class TestAnnealing:
    def test_feasible_and_deterministic(self):
        matrix = build_communication_matrix(random_dag_psdf(14, seed=6))
        a = annealed_placement(matrix, 3, seed=5, steps=800)
        b = annealed_placement(matrix, 3, seed=5, steps=800)
        assert a == b
        feasible(a, 3, matrix.names)

    def test_not_worse_than_greedy_start(self):
        matrix = build_communication_matrix(random_dag_psdf(14, seed=6))
        start = greedy_placement(matrix, 3)
        annealed = annealed_placement(
            matrix, 3, seed=1, initial=start, steps=1500
        )
        assert objective(matrix, annealed, 3) <= objective(matrix, start, 3)

    def test_rejects_bad_params(self, pair_matrix):
        with pytest.raises(PlacementError):
            annealed_placement(pair_matrix, 2, steps=0)
        with pytest.raises(PlacementError):
            annealed_placement(pair_matrix, 2, cooling=1.5)
