"""Placement cost-model tests."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.placement.cost import balance_penalty, objective, placement_cost
from repro.psdf.graph import PSDFGraph
from repro.psdf.matrix import CommunicationMatrix, build_communication_matrix


@pytest.fixture
def matrix():
    graph = PSDFGraph.from_edges(
        [("A", "B", 100, 1, 10), ("B", "C", 10, 2, 10)]
    )
    return build_communication_matrix(graph)


class TestPlacementCost:
    def test_zero_when_together(self, matrix):
        assert placement_cost(matrix, {"A": 1, "B": 1, "C": 1}, 3) == 0

    def test_counts_cut_traffic(self, matrix):
        assert placement_cost(matrix, {"A": 1, "B": 2, "C": 2}, 2) == 100

    def test_hop_weighting(self, matrix):
        near = placement_cost(matrix, {"A": 1, "B": 2, "C": 2}, 3)
        far = placement_cost(matrix, {"A": 1, "B": 3, "C": 3}, 3)
        assert far == 2 * near

    def test_missing_process_rejected(self, matrix):
        with pytest.raises(PlacementError):
            placement_cost(matrix, {"A": 1, "B": 1}, 2)

    def test_out_of_range_segment_rejected(self, matrix):
        with pytest.raises(PlacementError):
            placement_cost(matrix, {"A": 1, "B": 1, "C": 5}, 2)

    def test_bad_segment_count_rejected(self, matrix):
        with pytest.raises(PlacementError):
            placement_cost(matrix, {"A": 1, "B": 1, "C": 1}, 0)


class TestBalancePenalty:
    def test_zero_for_even_split(self):
        assert balance_penalty({"A": 1, "B": 2}, 2) == 0

    def test_positive_for_skew(self):
        assert balance_penalty({"A": 1, "B": 1, "C": 1, "D": 2}, 2) > 0

    def test_weight_scales(self):
        placement = {"A": 1, "B": 1, "C": 2, "D": 1}
        assert balance_penalty(placement, 2, weight=3) == 3 * balance_penalty(
            placement, 2, weight=1
        )


class TestObjective:
    def test_sums_components(self, matrix):
        placement = {"A": 1, "B": 2, "C": 2}
        assert objective(matrix, placement, 2) == placement_cost(
            matrix, placement, 2
        ) + balance_penalty(placement, 2)
