"""Estimator-pruned placement tests (rank wide, emulate narrow)."""

import pytest

from repro.apps.mp3 import paper_platform
from repro.emulator.emulator import emulate
from repro.placement.placetool import EstimatedPlacementResult, PlaceTool
from repro.psdf.generators import fork_join_psdf


class TestSolveEstimated:
    @pytest.fixture(scope="class")
    def result(self, mp3_graph):
        return PlaceTool().solve_estimated(
            mp3_graph, 3,
            segment_frequencies_mhz=[91, 98, 89],
            ca_frequency_mhz=111,
        )

    def test_returns_feasible_placement(self, result, mp3_graph):
        assert isinstance(result, EstimatedPlacementResult)
        assert set(result.placement) == set(mp3_graph.process_names)
        assert set(result.placement.values()) == {1, 2, 3}

    def test_estimates_wide_emulates_narrow(self, result):
        # the budget split this method exists for
        assert result.candidates_estimated > result.candidates_emulated
        assert result.candidates_emulated <= 4  # the default confirm

    def test_winner_carries_both_numbers(self, result):
        assert result.execution_time_us > 0
        assert result.estimated_us > 0
        # the estimator overshoots the emulated truth by design
        # (contention model), never wildly: same order of magnitude
        ratio = result.estimated_us / result.execution_time_us
        assert 0.5 < ratio < 2.0

    def test_not_worse_than_paper_allocation(self, result, mp3_graph):
        paper = emulate(mp3_graph, paper_platform(3))
        assert result.execution_time_us <= paper.execution_time_us + 1e-6

    def test_allocation_roundtrip(self, result):
        allocation = result.allocation()
        assert allocation.segment_count == 3
        assert allocation.placement() == result.placement

    def test_confirm_must_be_positive(self, mp3_graph):
        with pytest.raises(ValueError, match="confirm"):
            PlaceTool().solve_estimated(
                mp3_graph, 3,
                segment_frequencies_mhz=[91, 98, 89],
                ca_frequency_mhz=111,
                confirm=0,
            )

    def test_small_workload_tracks_solve_emulated(self):
        # on a small neighbourhood both searches can afford ground truth
        # everywhere; the estimator-pruned path must find an equally good
        # placement while emulating fewer candidates
        graph = fork_join_psdf(3, items_per_worker=108)
        kwargs = dict(
            segment_frequencies_mhz=[100, 100], ca_frequency_mhz=120
        )
        emulated = PlaceTool().solve_emulated(
            graph, 2, neighbourhood=4, **kwargs
        )
        estimated = PlaceTool().solve_estimated(
            graph, 2, neighbourhood=4, confirm=2, **kwargs
        )
        assert estimated.candidates_emulated < emulated.candidates_evaluated
        assert estimated.execution_time_us <= (
            emulated.execution_time_us * 1.05
        )
