"""PlaceTool facade tests."""

import pytest

from repro.placement.cost import objective
from repro.placement.exhaustive import exhaustive_placement
from repro.placement.placetool import PlaceTool
from repro.psdf.generators import random_dag_psdf
from repro.psdf.graph import PSDFGraph
from repro.psdf.matrix import build_communication_matrix


@pytest.fixture
def small_app():
    return PSDFGraph.from_edges(
        [
            ("A", "B", 1000, 1, 10),
            ("C", "D", 1000, 1, 10),
            ("B", "C", 10, 2, 10),
        ]
    )


class TestSolve:
    def test_small_instance_uses_exhaustive(self, small_app):
        result = PlaceTool().solve(small_app, 2)
        assert result.solver == "exhaustive"
        matrix = build_communication_matrix(small_app)
        optimum = exhaustive_placement(matrix, 2)
        assert result.total_cost == objective(matrix, optimum, 2)

    def test_large_instance_uses_heuristics(self):
        app = random_dag_psdf(18, seed=8)
        result = PlaceTool(exact_budget=1000, anneal=False).solve(app, 3)
        assert result.solver == "greedy+kl"
        assert set(result.placement) == set(app.process_names)

    def test_anneal_flag_changes_solver_label(self):
        app = random_dag_psdf(18, seed=8)
        result = PlaceTool(exact_budget=1000).solve(app, 3)
        assert result.solver == "greedy+kl+sa"  # annealing is the default

    def test_mp3_decoder_solvable(self, mp3_graph):
        result = PlaceTool().solve(mp3_graph, 3)
        assert result.segment_count == 3
        assert len(result.placement) == 15
        alloc = result.allocation()
        assert alloc.segment_count == 3

    def test_cost_breakdown_consistent(self, small_app):
        result = PlaceTool().solve(small_app, 2)
        assert result.total_cost == result.traffic_cost + result.balance_cost


class TestEvaluate:
    def test_costs_a_given_allocation(self, mp3_graph, allocation_3seg):
        matrix = build_communication_matrix(mp3_graph)
        result = PlaceTool().evaluate(matrix, allocation_3seg)
        assert result.solver == "given"
        # Fig. 9's allocation cuts: P3->P5(540)+P3->P11(540)+P3->P4(36*2 hops)
        # + P4->P5(36) + P10->P11(36) = 1224 + 72 + 36 = hop-weighted 1224+72+72...
        assert result.traffic_cost > 0

    def test_placetool_not_worse_than_paper_allocation(
        self, mp3_graph, allocation_3seg
    ):
        # the optimizer should find an allocation at least as cheap as Fig. 9
        matrix = build_communication_matrix(mp3_graph)
        tool = PlaceTool()
        solved = tool.solve(mp3_graph, 3)
        paper = tool.evaluate(matrix, allocation_3seg)
        assert solved.total_cost <= paper.total_cost
