"""Arbiter code generation tests (schedule ROM, SA, CA, facade)."""

import pytest

from repro.codegen.ca_gen import ca_entity, path_mask_table
from repro.codegen.generator import ArbiterCodeGenerator
from repro.codegen.sa_gen import sa_entity
from repro.codegen.schedule_rom import build_rom_entries, schedule_rom_package
from repro.errors import ConstraintViolation, SegBusError
from repro.model.builder import PlatformBuilder
from repro.psdf.graph import PSDFGraph


class TestScheduleRom:
    def test_entry_count_matches_schedule(self, mp3_graph, platform_3seg):
        placement = platform_3seg.process_placement()
        _, entries = build_rom_entries(mp3_graph, placement, 36)
        assert len(entries) == mp3_graph.total_packages(36)

    def test_entries_sorted_by_order(self, mp3_graph, platform_3seg):
        placement = platform_3seg.process_placement()
        _, entries = build_rom_entries(mp3_graph, placement, 36)
        orders = [e.order for e in entries]
        assert orders == sorted(orders)

    def test_target_segments_match_placement(self, mp3_graph, platform_3seg):
        placement = platform_3seg.process_placement()
        names, entries = build_rom_entries(mp3_graph, placement, 36)
        for entry in entries:
            assert entry.target_segment == placement[names[entry.target_id]]

    def test_package_renders(self, mp3_graph, platform_3seg):
        placement = platform_3seg.process_placement()
        text = schedule_rom_package(mp3_graph, placement, 36).render()
        assert "package schedule_rom_pkg is" in text
        assert f"C_ENTRY_COUNT : natural := {mp3_graph.total_packages(36)}" in text
        assert "C_PROCESS_COUNT : natural := 15" in text
        assert "id   0 = P0" in text


class TestSAGeneration:
    def test_ports_per_master(self):
        entity = sa_entity(1, masters=["P0", "P1"], slaves=["P1"], policy="round-robin")
        text = entity.render()
        assert "entity sa1_arbiter is" in text
        assert "req : in std_logic_vector(1 downto 0)" in text
        assert "slave_strobe_0 : out std_logic" in text
        assert "rr_ptr" in text  # round-robin pointer present

    def test_fixed_priority_has_no_pointer(self):
        text = sa_entity(2, ["P0"], [], policy="fixed-priority").render()
        assert "rr_ptr" not in text
        assert "fixed priority" in text

    def test_master_order_documented(self):
        text = sa_entity(1, ["P9", "P0"], [], policy="round-robin").render()
        assert "0=P0, 1=P9" in text  # sorted, deterministic indices

    def test_rejects_unknown_policy(self):
        with pytest.raises(SegBusError):
            sa_entity(1, ["P0"], [], policy="lottery")


class TestCAGeneration:
    def test_path_mask_table_linear(self):
        table = path_mask_table(3)
        # path 1 -> 3 locks segments 1, 2, 3 = 0b111
        assert table[0][2] == 0b111
        # path 2 -> 2 locks segment 2 only
        assert table[1][1] == 0b010
        # path 3 -> 1 locks all three (symmetric)
        assert table[2][0] == 0b111
        # path 2 -> 3 locks 2 and 3
        assert table[1][2] == 0b110

    def test_entity_embeds_table(self):
        text = ca_entity(3).render()
        assert "entity central_arbiter is" in text
        assert 'C_PATH_TABLE' in text
        assert '"111"' in text and '"010"' in text
        assert "cascaded release" in text

    def test_port_widths_scale(self):
        text = ca_entity(4).render()
        assert "sa_req : in std_logic_vector(3 downto 0)" in text


class TestFacade:
    def test_file_set(self, mp3_graph, platform_3seg):
        files = ArbiterCodeGenerator(mp3_graph, platform_3seg).generate()
        names = [f.filename for f in files]
        assert names == [
            "schedule_rom_pkg.vhd",
            "sa1_arbiter.vhd",
            "sa2_arbiter.vhd",
            "sa3_arbiter.vhd",
            "central_arbiter.vhd",
        ]
        assert all(f.line_count > 10 for f in files)

    def test_deterministic_output(self, mp3_graph, platform_3seg):
        a = ArbiterCodeGenerator(mp3_graph, platform_3seg).generate()
        b = ArbiterCodeGenerator(mp3_graph, platform_3seg).generate()
        assert [f.content for f in a] == [f.content for f in b]

    def test_write_to_disk(self, mp3_graph, platform_3seg, tmp_path):
        written = ArbiterCodeGenerator(mp3_graph, platform_3seg).write(
            tmp_path / "rtl"
        )
        assert len(written) == 5
        assert all(p.exists() and p.stat().st_size > 0 for p in written)

    def test_invalid_platform_rejected(self, mp3_graph):
        platform = (
            PlatformBuilder()
            .segment(frequency_mhz=91)
            .central_arbiter(frequency_mhz=111)
            .build()
        )  # no FUs, application unmapped
        with pytest.raises(ConstraintViolation):
            ArbiterCodeGenerator(mp3_graph, platform)

    def test_every_file_structurally_balanced(self, mp3_graph, platform_3seg):
        for generated in ArbiterCodeGenerator(mp3_graph, platform_3seg).generate():
            text = generated.content
            # every 'entity X is' has a matching 'end entity X;' etc.
            assert text.count("process (clk)") == text.count("end process")
            for keyword in ("entity", "architecture", "package"):
                opens = text.count(f"{keyword} ")
                # open + end mention the keyword twice per block
                assert opens % 2 == 0 or keyword not in text
