"""VHDL document model and emitter tests."""

import pytest

from repro.codegen.vhdl import (
    ConstantPackage,
    Entity,
    Generic,
    Port,
    bits_for,
    check_identifier,
    std_logic_vector,
)
from repro.errors import SegBusError


class TestIdentifiers:
    @pytest.mark.parametrize("good", ["clk", "sa1_arbiter", "G_SEGMENTS", "a1"])
    def test_accepts_legal(self, good):
        assert check_identifier(good) == good

    @pytest.mark.parametrize("bad", ["1clk", "a-b", "", "a b", "_x"])
    def test_rejects_illegal(self, bad):
        with pytest.raises(SegBusError):
            check_identifier(bad)

    @pytest.mark.parametrize("word", ["signal", "entity", "PROCESS", "Begin"])
    def test_rejects_reserved_words(self, word):
        with pytest.raises(SegBusError, match="reserved"):
            check_identifier(word)


class TestHelpers:
    def test_std_logic_vector(self):
        assert std_logic_vector(8) == "std_logic_vector(7 downto 0)"

    def test_std_logic_vector_rejects_zero(self):
        with pytest.raises(SegBusError):
            std_logic_vector(0)

    @pytest.mark.parametrize(
        "count,bits", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (16, 4), (17, 5)]
    )
    def test_bits_for(self, count, bits):
        assert bits_for(count) == bits


class TestPort:
    def test_render(self):
        assert Port("clk", "in", "std_logic").render() == "clk : in std_logic"

    def test_rejects_bad_direction(self):
        with pytest.raises(SegBusError):
            Port("clk", "input", "std_logic")


class TestEntityRender:
    def entity(self):
        e = Entity("demo_block", comment="a demo")
        e.add_generic("G_WIDTH", "natural", "8")
        e.add_port("clk", "in", "std_logic")
        e.add_port("q", "out", "std_logic")
        e.declarations.append("signal r : std_logic;")
        e.statements.append("q <= r;")
        return e

    def test_structure(self):
        text = self.entity().render()
        assert text.index("entity demo_block is") < text.index(
            "end entity demo_block;"
        )
        assert text.index("architecture rtl of demo_block is") < text.index(
            "end architecture rtl;"
        )
        assert "G_WIDTH : natural := 8" in text
        assert "clk : in std_logic" in text
        assert "-- a demo" in text

    def test_balanced_blocks(self):
        text = self.entity().render()
        assert text.count("entity demo_block") == 2  # open + end
        assert text.count("architecture rtl") == 2

    def test_library_clauses_first(self):
        lines = self.entity().render().splitlines()
        non_comment = [l for l in lines if l and not l.startswith("--")]
        assert non_comment[0] == "library ieee;"

    def test_deterministic(self):
        assert self.entity().render() == self.entity().render()


class TestConstantPackage:
    def test_render(self):
        pkg = ConstantPackage("demo_pkg")
        pkg.types.append("type t is record a : natural; end record;")
        pkg.constants.append("constant C_N : natural := 3;")
        text = pkg.render()
        assert "package demo_pkg is" in text
        assert "end package demo_pkg;" in text
        assert "constant C_N : natural := 3;" in text
