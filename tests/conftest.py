"""Shared fixtures: the paper's case study, cached expensive emulations."""

from __future__ import annotations

import pytest

from repro.apps.mp3 import (
    mp3_decoder_psdf,
    paper_allocation,
    paper_platform,
)
from repro.emulator.emulator import SegBusEmulator
from repro.psdf.graph import PSDFGraph
from repro.psdf.generators import chain_psdf, fork_join_psdf


@pytest.fixture(scope="session")
def mp3_graph() -> PSDFGraph:
    return mp3_decoder_psdf()


@pytest.fixture(scope="session")
def platform_3seg():
    return paper_platform(segment_count=3)


@pytest.fixture(scope="session")
def platform_1seg():
    return paper_platform(segment_count=1)


@pytest.fixture(scope="session")
def allocation_3seg():
    return paper_allocation(3)


@pytest.fixture(scope="session")
def emulator_3seg(mp3_graph, platform_3seg):
    """The paper's main experiment, run once per test session."""
    return SegBusEmulator.from_models(mp3_graph, platform_3seg)


@pytest.fixture(scope="session")
def report_3seg(emulator_3seg):
    return emulator_3seg.run()


@pytest.fixture(scope="session")
def sim_3seg(emulator_3seg):
    return emulator_3seg.simulation


@pytest.fixture
def small_chain() -> PSDFGraph:
    return chain_psdf(3, items_per_stage=72, ticks_per_package=50)


@pytest.fixture
def small_fork_join() -> PSDFGraph:
    return fork_join_psdf(3, items_per_worker=72, ticks_per_package=40)
