"""PSM writer + parser tests."""

import pytest

from repro.errors import XMLFormatError
from repro.model.builder import PlatformBuilder
from repro.xmlio.psm_parser import parse_psm_xml
from repro.xmlio.psm_writer import psm_to_schema, psm_to_xml


@pytest.fixture
def platform():
    p = (
        PlatformBuilder("SBP", package_size=36)
        .segment(frequency_mhz=91)
        .segment(frequency_mhz=98)
        .segment(frequency_mhz=89)
        .central_arbiter(frequency_mhz=111)
        .auto_border_units()
        .place("P0", 1)
        .place("P1", 2)
        .place("P4", 3)
        .build()
    )
    p.fu_of_process("P0").add_master()
    p.fu_of_process("P1").add_master()
    p.fu_of_process("P1").add_slave()
    p.fu_of_process("P4").add_slave()
    return p


class TestWriter:
    def test_platform_type_lists_structure(self, platform):
        root = psm_to_schema(platform).complex_type("SBP")
        names = [c.name for c in root.children]
        assert "segment1" in names and "segment3" in names
        assert "ca" in names
        assert "bu12" in names and "bu23" in names

    def test_segment_type_contains_processes_and_arbiter(self, platform):
        seg1 = psm_to_schema(platform).complex_type("Segment1")
        assert seg1.child("p0").type == "P0"
        assert seg1.child("arbiter").type == "SA1"

    def test_segment_bu_sides(self, platform):
        doc = psm_to_schema(platform)
        seg2 = doc.complex_type("Segment2")
        assert seg2.child("buLeft").type == "BU12"
        assert seg2.child("buRight").type == "BU23"
        seg1 = doc.complex_type("Segment1")
        assert seg1.child("buRight").type == "BU12"
        with pytest.raises(XMLFormatError):
            seg1.child("buLeft")

    def test_fu_endpoints_serialized(self, platform):
        doc = psm_to_schema(platform)
        p1 = doc.complex_type("P1")
        types = {c.type for c in p1.children}
        assert types == {"Master", "Slave"}


class TestParser:
    def test_roundtrip_structure(self, platform):
        parsed = parse_psm_xml(psm_to_xml(platform))
        assert parsed.segment_count == 3
        assert parsed.package_size == 36
        assert parsed.ca_frequency_mhz == pytest.approx(111)
        assert parsed.segment_frequencies_mhz == {1: 91.0, 2: 98.0, 3: 89.0}
        assert parsed.placement == {"P0": 1, "P1": 2, "P4": 3}
        assert parsed.bu_pairs == ((1, 2), (2, 3))

    def test_roundtrip_policies_and_depths(self, platform):
        parsed = parse_psm_xml(psm_to_xml(platform))
        assert parsed.sa_policies == {1: "round-robin", 2: "round-robin", 3: "round-robin"}
        assert parsed.bu_depths == {(1, 2): 1, (2, 3): 1}

    def test_roundtrip_endpoints(self, platform):
        parsed = parse_psm_xml(psm_to_xml(platform))
        assert len(parsed.masters_of["P1"]) == 1
        assert len(parsed.slaves_of["P1"]) == 1
        assert "P0" not in parsed.slaves_of

    def test_to_platform_rebuilds_model(self, platform):
        rebuilt = parse_psm_xml(psm_to_xml(platform)).to_platform()
        assert rebuilt.segment_count == 3
        assert rebuilt.package_size == 36
        assert rebuilt.process_placement() == platform.process_placement()
        assert len(rebuilt.fu_of_process("P1").masters) == 1

    def test_fractional_frequency_roundtrips(self):
        p = (
            PlatformBuilder()
            .segment(frequency_mhz=89.25)
            .central_arbiter(frequency_mhz=110.5)
            .place("P0", 1)
            .build()
        )
        p.fu_of_process("P0").add_slave()
        parsed = parse_psm_xml(psm_to_xml(p))
        assert parsed.segment_frequencies_mhz[1] == pytest.approx(89.25)
        assert parsed.ca_frequency_mhz == pytest.approx(110.5)

    def test_rejects_missing_package_size(self, platform):
        text = psm_to_xml(platform).replace("packageSize_36", "irrelevant_1")
        with pytest.raises(XMLFormatError, match="packageSize"):
            parse_psm_xml(text)

    def test_rejects_missing_ca_frequency(self, platform):
        text = psm_to_xml(platform).replace("frequencyMHz_111", "other_0")
        with pytest.raises(XMLFormatError, match="frequencyMHz"):
            parse_psm_xml(text)

    def test_rejects_duplicate_placement(self, platform):
        text = psm_to_xml(platform).replace(
            '<xs:element name="p4" type="P4"', '<xs:element name="p0b" type="P0"'
        )
        with pytest.raises(XMLFormatError):
            parse_psm_xml(text)

    def test_paper_platform_roundtrips(self, platform_3seg):
        parsed = parse_psm_xml(psm_to_xml(platform_3seg))
        assert parsed.segment_count == 3
        assert len(parsed.placement) == 15
