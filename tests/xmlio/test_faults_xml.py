"""Fault-plan XML scheme round-trip."""

import pytest

from repro.errors import XMLFormatError
from repro.faults.model import (
    KIND_BU_DROP,
    KIND_CORRUPTION,
    KIND_FU_STALL,
    KIND_GRANT_LOSS,
    KIND_PERMANENT,
    FaultPlan,
    FaultRecord,
)
from repro.xmlio.faults_xml import (
    fault_plan_to_scheme,
    fault_plan_to_xml,
    parse_fault_plan_xml,
)


@pytest.fixture
def full_plan():
    return FaultPlan(
        seed=42,
        records=(
            FaultRecord(site="segment:1", kind=KIND_CORRUPTION, rate=0.05),
            FaultRecord(site="ca", kind=KIND_GRANT_LOSS, rate=0.01),
            FaultRecord(site="fu:P3", kind=KIND_FU_STALL, rate=0.002, ticks=75),
            FaultRecord(site="bu:1:2", kind=KIND_BU_DROP, rate=0.001),
            FaultRecord(site="fu:P7", kind=KIND_PERMANENT, at_tick=12345),
            FaultRecord(site="*", kind=KIND_CORRUPTION, rate=0.125),
        ),
    )


class TestRoundTrip:
    def test_full_plan(self, full_plan):
        assert parse_fault_plan_xml(fault_plan_to_xml(full_plan)) == full_plan

    def test_empty_plan(self):
        plan = FaultPlan(seed=0)
        assert parse_fault_plan_xml(fault_plan_to_xml(plan)) == plan

    def test_record_order_preserved(self, full_plan):
        back = parse_fault_plan_xml(fault_plan_to_xml(full_plan))
        assert back.records == full_plan.records

    def test_float_rates_survive_exactly(self):
        plan = FaultPlan(
            seed=1,
            records=(FaultRecord(site="*", kind=KIND_CORRUPTION, rate=0.1),),
        )
        back = parse_fault_plan_xml(fault_plan_to_xml(plan))
        assert back.records[0].rate == plan.records[0].rate

    def test_scheme_uses_parameter_convention(self, full_plan):
        doc = fault_plan_to_scheme(full_plan)
        root = doc.complex_type("FaultPlan")
        assert root.child("seed_42").type == "Parameter"
        record0 = doc.complex_type("FaultRecord0")
        names = [e.name for e in record0.children]
        assert "site_segment:1" in names
        assert "kind_package_corruption" in names


class TestParseErrors:
    def test_not_xml(self):
        with pytest.raises(XMLFormatError):
            parse_fault_plan_xml("this is not xml")

    def test_missing_seed(self, full_plan):
        xml = fault_plan_to_xml(full_plan).replace("seed_42", "sprout_42")
        with pytest.raises(XMLFormatError):
            parse_fault_plan_xml(xml)

    def test_missing_site(self, full_plan):
        xml = fault_plan_to_xml(full_plan).replace(
            "site_segment:1", "situ_segment:1"
        )
        with pytest.raises(XMLFormatError):
            parse_fault_plan_xml(xml)

    def test_bad_rate(self, full_plan):
        xml = fault_plan_to_xml(full_plan).replace("rate_0.05", "rate_hot")
        with pytest.raises(XMLFormatError, match="not a number"):
            parse_fault_plan_xml(xml)

    def test_no_top_level(self):
        with pytest.raises(XMLFormatError, match="top-level"):
            parse_fault_plan_xml(
                '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>'
            )
