"""Scheme referential-integrity checker tests."""

import pytest

from repro.errors import XMLFormatError
from repro.xmlio.psdf_writer import psdf_to_schema
from repro.xmlio.psm_writer import psm_to_schema
from repro.xmlio.schema_check import assert_scheme_valid, check_scheme
from repro.xmlio.schema_writer import ComplexType, SchemaDocument


def valid_doc():
    doc = SchemaDocument()
    doc.add_top_level("root", "Root")
    doc.add_complex_type(ComplexType("Root").add("child", "Child"))
    doc.add_complex_type(ComplexType("Child").add("x", "Parameter"))
    return doc


class TestGeneratedSchemesAreValid:
    def test_psdf_scheme(self, mp3_graph):
        report = check_scheme(psdf_to_schema(mp3_graph, 36))
        assert report.ok, report.problems

    def test_psm_scheme(self, platform_3seg):
        report = check_scheme(psm_to_schema(platform_3seg))
        assert report.ok, report.problems


class TestDetection:
    def test_valid_document_passes(self):
        assert check_scheme(valid_doc()).ok

    def test_undefined_reference(self):
        doc = valid_doc()
        doc.complex_type("Child").add("bad", "Ghost")
        report = check_scheme(doc)
        assert any("Ghost" in p and "undefined" in p for p in report.problems)

    def test_undefined_top_level(self):
        doc = SchemaDocument()
        doc.add_top_level("root", "Missing")
        report = check_scheme(doc)
        assert any("Missing" in p for p in report.problems)

    def test_orphan_type(self):
        doc = valid_doc()
        doc.add_complex_type(ComplexType("Orphan"))
        report = check_scheme(doc)
        assert any("Orphan" in p and "unreachable" in p for p in report.problems)

    def test_terminal_types_always_legal(self):
        doc = SchemaDocument()
        doc.add_top_level("root", "Root")
        ctype = ComplexType("Root")
        for terminal in ("Transfer", "Parameter", "Master", "Slave",
                         "InitialNode", "ProcessNode", "FinalNode"):
            ctype.add(f"c{terminal}", terminal)
        doc.add_complex_type(ctype)
        assert check_scheme(doc).ok

    def test_assert_raises(self):
        doc = valid_doc()
        doc.complex_type("Child").add("bad", "Ghost")
        with pytest.raises(XMLFormatError, match="Ghost"):
            assert_scheme_valid(doc)

    def test_assert_passes_silently(self):
        assert_scheme_valid(valid_doc())


class TestProblemEntries:
    """Kind-tagged SchemeProblem entries (the lint engine's interface)."""

    def test_entries_parallel_problems(self):
        doc = valid_doc()
        doc.complex_type("Child").add("bad", "Ghost")
        report = check_scheme(doc)
        assert len(report.entries) == len(report.problems)
        assert [e.message for e in report.entries] == report.problems

    def test_undefined_reference_entry(self):
        doc = valid_doc()
        doc.complex_type("Child").add("bad", "Ghost")
        entry = check_scheme(doc).entries[0]
        assert entry.kind == "undefined-reference"
        assert entry.type_name == "Ghost"

    def test_orphan_entry(self):
        doc = valid_doc()
        doc.add_complex_type(ComplexType("Orphan"))
        entries = check_scheme(doc).entries
        assert [e.kind for e in entries] == ["orphan-type"]
        assert entries[0].type_name == "Orphan"

    def test_duplicate_type_entry(self):
        doc = valid_doc()
        doc.complex_types.append(ComplexType("Child"))
        entries = [
            e for e in check_scheme(doc).entries if e.kind == "duplicate-type"
        ]
        assert [e.type_name for e in entries] == ["Child"]

    def test_duplicate_child_entry(self):
        doc = valid_doc()
        doc.complex_type("Root").add("child", "Child")
        entries = [
            e for e in check_scheme(doc).entries if e.kind == "duplicate-child"
        ]
        assert len(entries) == 1
        assert entries[0].type_name == "Root"
        assert "'child'" in entries[0].message

    def test_dangling_process_in_psdf_scheme(self, mp3_graph):
        # drop P5 from the header: its complexType (and the flows it
        # carries) dangle — nothing reaches them from the document root
        doc = psdf_to_schema(mp3_graph, 36)
        header = doc.complex_type(doc.top_level[0].type)
        header.children = [c for c in header.children if c.name != "P5"]
        report = check_scheme(doc)
        assert not report.ok
        assert any(
            e.kind == "orphan-type" and e.type_name == "P5"
            for e in report.entries
        )

    def test_empty_segment_type_is_not_an_integrity_problem(self):
        # an empty xs:all is structurally fine; emptiness is the PSM
        # dialect rule SB406's business, not referential integrity's
        doc = valid_doc()
        doc.complex_type("Root").add("seg", "Segment9")
        doc.add_complex_type(ComplexType("Segment9"))
        assert check_scheme(doc).ok
