"""Scheme referential-integrity checker tests."""

import pytest

from repro.errors import XMLFormatError
from repro.xmlio.psdf_writer import psdf_to_schema
from repro.xmlio.psm_writer import psm_to_schema
from repro.xmlio.schema_check import assert_scheme_valid, check_scheme
from repro.xmlio.schema_writer import ComplexType, SchemaDocument


def valid_doc():
    doc = SchemaDocument()
    doc.add_top_level("root", "Root")
    doc.add_complex_type(ComplexType("Root").add("child", "Child"))
    doc.add_complex_type(ComplexType("Child").add("x", "Parameter"))
    return doc


class TestGeneratedSchemesAreValid:
    def test_psdf_scheme(self, mp3_graph):
        report = check_scheme(psdf_to_schema(mp3_graph, 36))
        assert report.ok, report.problems

    def test_psm_scheme(self, platform_3seg):
        report = check_scheme(psm_to_schema(platform_3seg))
        assert report.ok, report.problems


class TestDetection:
    def test_valid_document_passes(self):
        assert check_scheme(valid_doc()).ok

    def test_undefined_reference(self):
        doc = valid_doc()
        doc.complex_type("Child").add("bad", "Ghost")
        report = check_scheme(doc)
        assert any("Ghost" in p and "undefined" in p for p in report.problems)

    def test_undefined_top_level(self):
        doc = SchemaDocument()
        doc.add_top_level("root", "Missing")
        report = check_scheme(doc)
        assert any("Missing" in p for p in report.problems)

    def test_orphan_type(self):
        doc = valid_doc()
        doc.add_complex_type(ComplexType("Orphan"))
        report = check_scheme(doc)
        assert any("Orphan" in p and "unreachable" in p for p in report.problems)

    def test_terminal_types_always_legal(self):
        doc = SchemaDocument()
        doc.add_top_level("root", "Root")
        ctype = ComplexType("Root")
        for terminal in ("Transfer", "Parameter", "Master", "Slave",
                         "InitialNode", "ProcessNode", "FinalNode"):
            ctype.add(f"c{terminal}", terminal)
        doc.add_complex_type(ctype)
        assert check_scheme(doc).ok

    def test_assert_raises(self):
        doc = valid_doc()
        doc.complex_type("Child").add("bad", "Ghost")
        with pytest.raises(XMLFormatError, match="Ghost"):
            assert_scheme_valid(doc)

    def test_assert_passes_silently(self):
        assert_scheme_valid(valid_doc())
