"""PSDF writer + parser tests (the M2T transformation and its inverse)."""

import pytest

from repro.errors import XMLFormatError
from repro.psdf.graph import PSDFGraph
from repro.xmlio.psdf_parser import parse_psdf_xml
from repro.xmlio.psdf_writer import psdf_to_schema, psdf_to_xml
from repro.xmlio.schema_writer import XS_NS, SchemaDocument


@pytest.fixture
def app():
    return PSDFGraph.from_edges(
        [("P0", "P1", 576, 1, 250), ("P1", "P2", 540, 2, 300)], name="Demo"
    )


class TestWriter:
    def test_one_complex_type_per_process_plus_header(self, app):
        doc = psdf_to_schema(app, 36)
        assert set(doc.type_names()) == {"Demo", "P0", "P1", "P2"}

    def test_flow_element_name_format(self, app):
        doc = psdf_to_schema(app, 36)
        assert doc.complex_type("P0").children[0].name == "P1_576_1_250"

    def test_flow_elements_typed_transfer(self, app):
        doc = psdf_to_schema(app, 36)
        assert doc.complex_type("P0").children[0].type == "Transfer"

    def test_header_lists_stereotypes(self, app):
        header = psdf_to_schema(app, 36).complex_type("Demo")
        assert header.child("P0").type == "InitialNode"
        assert header.child("P1").type == "ProcessNode"
        assert header.child("P2").type == "FinalNode"

    def test_package_size_embedded_in_ticks(self, app):
        # constant costs: same C at any package size
        doc36 = psdf_to_schema(app, 36)
        doc18 = psdf_to_schema(app, 18)
        assert doc36.complex_type("P0").children[0].name == \
            doc18.complex_type("P0").children[0].name


class TestParser:
    def test_roundtrip_counts(self, app):
        parsed = parse_psdf_xml(psdf_to_xml(app, 36))
        assert parsed.process_count == 3
        assert len(parsed.flows) == 2
        assert parsed.name == "Demo"

    def test_roundtrip_flow_values(self, app):
        parsed = parse_psdf_xml(psdf_to_xml(app, 36))
        flow = parsed.transfers_from("P0")[0]
        assert flow.target == "P1"
        assert flow.data_items == 576
        assert flow.order == 1
        assert flow.ticks_per_package(36) == 250

    def test_to_graph_validates(self, app):
        graph = parse_psdf_xml(psdf_to_xml(app, 36)).to_graph()
        assert set(graph.process_names) == {"P0", "P1", "P2"}
        assert graph.flow("P0", "P1").data_items == 576

    def test_rejects_missing_header(self):
        text = f'<xs:schema xmlns:xs="{XS_NS}"><xs:complexType name="P0"><xs:all/></xs:complexType></xs:schema>'
        with pytest.raises(XMLFormatError):
            parse_psdf_xml(text)

    def test_rejects_undeclared_flow_target(self, app):
        text = psdf_to_xml(app, 36).replace("P1_576_1_250", "P9_576_1_250")
        with pytest.raises(XMLFormatError, match="undeclared"):
            parse_psdf_xml(text)

    def test_rejects_unknown_stereotype(self, app):
        # caught by the integrity check ("undefined type") before the
        # stereotype mapping even runs
        text = psdf_to_xml(app, 36).replace("InitialNode", "MagicNode")
        with pytest.raises(XMLFormatError, match="MagicNode"):
            parse_psdf_xml(text)

    def test_rejects_non_process_complex_type(self, app):
        doc = psdf_to_schema(app, 36)
        from repro.xmlio.schema_writer import ComplexType

        doc.add_complex_type(ComplexType("Rogue"))
        # flagged as an unreachable orphan by the scheme integrity check
        with pytest.raises(XMLFormatError, match="Rogue"):
            parse_psdf_xml(doc.to_xml())

    def test_mp3_model_roundtrips(self, mp3_graph):
        parsed = parse_psdf_xml(psdf_to_xml(mp3_graph, 36))
        assert parsed.process_count == 15
        assert len(parsed.flows) == len(mp3_graph.flows)
