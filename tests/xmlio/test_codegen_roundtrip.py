"""Code-engineering-set and round-trip fidelity tests."""

import pytest

from repro.errors import SegBusError, XMLFormatError
from repro.psdf.flow import FlowCost
from repro.psdf.graph import PSDFGraph
from repro.xmlio.codegen import CodeEngineeringSet, generate_models
from repro.xmlio.psdf_parser import parse_psdf_xml
from repro.xmlio.psm_parser import parse_psm_xml
from repro.xmlio.roundtrip import psdf_roundtrip, psm_roundtrip, roundtrip_pair


@pytest.fixture
def app():
    return PSDFGraph.from_edges(
        [("P0", "P1", 576, 1, FlowCost(c_fixed=34, c_item=6))], name="Mini"
    )


class TestCodegen:
    def test_generate_writes_both_schemes(self, app, platform_3seg, tmp_path, mp3_graph):
        sets = [
            CodeEngineeringSet("psdf", mp3_graph, "psdf.xml", package_size=36),
            CodeEngineeringSet("psm", platform_3seg, "psm.xml"),
        ]
        written = generate_models(sets, tmp_path / "out")
        assert [p.name for p in written] == ["psdf.xml", "psm.xml"]
        parsed_psdf = parse_psdf_xml(written[0].read_text())
        parsed_psm = parse_psm_xml(written[1].read_text())
        assert parsed_psdf.process_count == 15
        assert parsed_psm.segment_count == 3

    def test_creates_missing_directory(self, app, tmp_path):
        target = tmp_path / "a" / "b"
        generate_models(
            [CodeEngineeringSet("psdf", app, "x.xml", package_size=36)], target
        )
        assert (target / "x.xml").exists()

    def test_rejects_unknown_model_type(self, tmp_path):
        ces = CodeEngineeringSet("bad", object(), "x.xml")
        with pytest.raises(SegBusError):
            ces.transform()


class TestRoundtrip:
    def test_psdf_roundtrip_ok(self, app):
        parsed = psdf_roundtrip(app, 36)
        assert parsed.process_count == 2

    def test_psdf_roundtrip_evaluates_cost_at_package_size(self, app):
        parsed = psdf_roundtrip(app, 18)
        flow = parsed.transfers_from("P0")[0]
        # C(18) = 34 + 6*18 = 142 — the scheme stores the evaluated value
        assert flow.ticks_per_package(18) == 142

    def test_psm_roundtrip_ok(self, platform_3seg):
        parsed = psm_roundtrip(platform_3seg)
        assert parsed.segment_count == 3

    def test_roundtrip_pair(self, mp3_graph, platform_3seg):
        parsed_psdf, parsed_psm = roundtrip_pair(mp3_graph, platform_3seg)
        assert set(parsed_psm.placement) == set(
            p.name for p in parsed_psdf.processes
        )
