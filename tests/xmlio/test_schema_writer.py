"""XSD-style scheme document model tests."""

import pytest

from repro.errors import XMLFormatError
from repro.xmlio.schema_writer import ComplexType, Element, SchemaDocument, XS_NS


def sample_doc():
    doc = SchemaDocument()
    doc.add_top_level("sbp", "SBP")
    root = ComplexType("SBP")
    root.add("segment1", "Segment1")
    root.add("ca", "CA")
    doc.add_complex_type(root)
    doc.add_complex_type(ComplexType("Segment1").add("p0", "P0").add("arbiter", "SA1"))
    doc.add_complex_type(ComplexType("CA"))
    doc.add_complex_type(ComplexType("P0"))
    doc.add_complex_type(ComplexType("SA1"))
    return doc


class TestModel:
    def test_element_requires_name_and_type(self):
        with pytest.raises(XMLFormatError):
            Element("", "T")
        with pytest.raises(XMLFormatError):
            Element("n", "")

    def test_complex_type_child_lookup(self):
        ct = ComplexType("X").add("a", "A")
        assert ct.child("a").type == "A"
        with pytest.raises(XMLFormatError):
            ct.child("b")

    def test_duplicate_complex_type_rejected(self):
        doc = SchemaDocument()
        doc.add_complex_type(ComplexType("X"))
        with pytest.raises(XMLFormatError):
            doc.add_complex_type(ComplexType("X"))

    def test_missing_complex_type_lookup(self):
        with pytest.raises(XMLFormatError):
            SchemaDocument().complex_type("X")

    def test_type_names(self):
        assert sample_doc().type_names() == ["SBP", "Segment1", "CA", "P0", "SA1"]


class TestSerialization:
    def test_roundtrip(self):
        doc = sample_doc()
        recovered = SchemaDocument.from_xml(doc.to_xml())
        assert recovered.type_names() == doc.type_names()
        assert recovered.complex_type("Segment1").child("p0").type == "P0"
        assert [e.name for e in recovered.top_level] == ["sbp"]

    def test_xml_uses_xs_namespace(self):
        text = sample_doc().to_xml()
        assert XS_NS in text
        assert "complexType" in text
        assert 'name="SBP"' in text

    def test_xml_declaration_present(self):
        assert sample_doc().to_xml().startswith("<?xml")

    def test_paper_snippet_parses(self):
        # Structure of the paper's section 3.4 PSM snippet.
        snippet = f"""<?xml version='1.0' encoding='utf-8'?>
        <xs:schema xmlns:xs="{XS_NS}">
          <xs:complexType name="SBP">
            <xs:all>
              <xs:element name="segment1" type="Segment1"/>
              <xs:element name="segment2" type="Segment2"/>
              <xs:element name="ca" type="CA"/>
              <xs:element name="bu12" type="BU12"/>
            </xs:all>
          </xs:complexType>
          <xs:complexType name="Segment1">
            <xs:all>
              <xs:element name="buRight" type="BU12"/>
              <xs:element name="p5" type="P5"/>
              <xs:element name="arbiter" type="SA1"/>
            </xs:all>
          </xs:complexType>
        </xs:schema>"""
        doc = SchemaDocument.from_xml(snippet)
        assert doc.complex_type("SBP").child("bu12").type == "BU12"
        assert doc.complex_type("Segment1").child("arbiter").type == "SA1"

    def test_rejects_garbage(self):
        with pytest.raises(XMLFormatError):
            SchemaDocument.from_xml("not xml at all <")

    def test_rejects_wrong_root(self):
        with pytest.raises(XMLFormatError, match="root element"):
            SchemaDocument.from_xml("<root/>")

    def test_rejects_unexpected_top_level(self):
        text = f'<xs:schema xmlns:xs="{XS_NS}"><xs:simpleType name="x"/></xs:schema>'
        with pytest.raises(XMLFormatError, match="unexpected top-level"):
            SchemaDocument.from_xml(text)

    def test_rejects_missing_attr(self):
        text = f'<xs:schema xmlns:xs="{XS_NS}"><xs:element name="a"/></xs:schema>'
        with pytest.raises(XMLFormatError, match="missing required"):
            SchemaDocument.from_xml(text)

    def test_accepts_sequence_groups(self):
        text = f"""<xs:schema xmlns:xs="{XS_NS}">
          <xs:complexType name="X">
            <xs:sequence><xs:element name="a" type="A"/></xs:sequence>
          </xs:complexType>
        </xs:schema>"""
        doc = SchemaDocument.from_xml(text)
        assert doc.complex_type("X").child("a").type == "A"
