"""Fault model validation and the deterministic PRNG streams."""

import pytest

from repro.errors import FaultConfigError
from repro.faults.injector import FaultInjector
from repro.faults.model import (
    FAULT_KINDS,
    KIND_BU_DROP,
    KIND_CORRUPTION,
    KIND_FU_STALL,
    KIND_GRANT_LOSS,
    KIND_PERMANENT,
    FaultPlan,
    FaultRecord,
)
from repro.faults.prng import DeterministicStream, stream_state


class TestFaultRecord:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultConfigError, match="unknown fault kind"):
            FaultRecord(site="*", kind="cosmic_ray", rate=0.1)

    @pytest.mark.parametrize(
        "site,kind",
        [
            ("fu:P0", KIND_CORRUPTION),
            ("bu:1:2", KIND_GRANT_LOSS),
            ("segment:1", KIND_FU_STALL),
            ("ca", KIND_BU_DROP),
            ("*", KIND_PERMANENT),
            ("segment:one", KIND_CORRUPTION),
            ("bu:12", KIND_BU_DROP),
            ("fu:", KIND_FU_STALL),
        ],
    )
    def test_bad_site_for_kind(self, site, kind):
        kwargs = {"ticks": 5} if kind == KIND_FU_STALL else {}
        if kind == KIND_PERMANENT:
            kwargs["at_tick"] = 10
        with pytest.raises(FaultConfigError):
            FaultRecord(site=site, kind=kind, rate=0.1 if kind != KIND_PERMANENT else 0.0, **kwargs)

    def test_rate_out_of_range(self):
        with pytest.raises(FaultConfigError, match="outside"):
            FaultRecord(site="*", kind=KIND_CORRUPTION, rate=1.5)

    def test_permanent_needs_at_tick(self):
        with pytest.raises(FaultConfigError, match="at_tick"):
            FaultRecord(site="fu:P0", kind=KIND_PERMANENT)

    def test_permanent_rejects_rate(self):
        with pytest.raises(FaultConfigError, match="schedule-driven"):
            FaultRecord(site="fu:P0", kind=KIND_PERMANENT, rate=0.5, at_tick=10)

    def test_transient_rejects_at_tick(self):
        with pytest.raises(FaultConfigError, match="rate-driven"):
            FaultRecord(site="*", kind=KIND_CORRUPTION, rate=0.1, at_tick=10)

    def test_stall_needs_ticks(self):
        with pytest.raises(FaultConfigError, match="ticks"):
            FaultRecord(site="*", kind=KIND_FU_STALL, rate=0.1)

    def test_ticks_only_for_stall(self):
        with pytest.raises(FaultConfigError, match="only valid for"):
            FaultRecord(site="*", kind=KIND_CORRUPTION, rate=0.1, ticks=5)

    def test_matches_wildcard_and_exact(self):
        record = FaultRecord(site="segment:2", kind=KIND_CORRUPTION, rate=0.1)
        assert record.matches("segment:2")
        assert not record.matches("segment:1")
        anywhere = FaultRecord(site="*", kind=KIND_CORRUPTION, rate=0.1)
        assert anywhere.matches("segment:7")


class TestFaultPlan:
    def test_negative_seed_rejected(self):
        with pytest.raises(FaultConfigError, match="seed"):
            FaultPlan(seed=-1)

    def test_duplicate_permanent_site_rejected(self):
        record = FaultRecord(site="fu:P0", kind=KIND_PERMANENT, at_tick=5)
        with pytest.raises(FaultConfigError, match="duplicate"):
            FaultPlan(seed=0, records=(record, record))

    def test_transient_helper_builds_records(self):
        plan = FaultPlan.transient(
            seed=7,
            corruption_rate=0.1,
            grant_loss_rate=0.2,
            stall_rate=0.3,
            stall_ticks=25,
            bu_drop_rate=0.4,
        )
        assert {r.kind for r in plan.records} == set(FAULT_KINDS) - {
            KIND_PERMANENT
        }
        assert all(r.site == "*" for r in plan.records)
        stall = plan.of_kind(KIND_FU_STALL)[0]
        assert stall.ticks == 25

    def test_null_plan(self):
        assert FaultPlan.transient(seed=3).is_null
        assert not FaultPlan.transient(seed=3, corruption_rate=0.1).is_null

    def test_with_record_and_with_seed(self):
        plan = FaultPlan.transient(seed=1, corruption_rate=0.1)
        grown = plan.with_record(
            FaultRecord(site="fu:P0", kind=KIND_PERMANENT, at_tick=100)
        )
        assert len(grown.records) == 2
        assert grown.with_seed(9).seed == 9
        assert grown.with_seed(9).records == grown.records


class TestDeterministicStream:
    def test_same_keys_same_sequence(self):
        a = DeterministicStream(42, "segment:1", "x")
        b = DeterministicStream(42, "segment:1", "x")
        assert [a.next_u64() for _ in range(10)] == [
            b.next_u64() for _ in range(10)
        ]

    def test_different_keys_diverge(self):
        a = DeterministicStream(42, "segment:1")
        b = DeterministicStream(42, "segment:2")
        assert [a.next_u64() for _ in range(4)] != [
            b.next_u64() for _ in range(4)
        ]

    def test_state_is_never_zero(self):
        assert stream_state(0) != 0

    def test_floats_in_unit_interval(self):
        stream = DeterministicStream(0, "p")
        for _ in range(100):
            assert 0.0 <= stream.next_float() < 1.0

    def test_chance_extremes(self):
        stream = DeterministicStream(5, "q")
        assert not any(stream.chance(0.0) for _ in range(100))
        stream = DeterministicStream(5, "q")
        assert all(stream.chance(1.0) for _ in range(100))


class TestInjector:
    def test_zero_rate_never_draws(self):
        injector = FaultInjector(FaultPlan.transient(seed=11))
        assert not any(injector.corrupt_package(1) for _ in range(50))
        assert injector.counters.total == 0

    def test_counters_record_site_and_kind(self):
        plan = FaultPlan(
            seed=1,
            records=(FaultRecord(site="*", kind=KIND_CORRUPTION, rate=1.0),),
        )
        injector = FaultInjector(plan)
        assert injector.corrupt_package(2)
        assert injector.counters.by_kind == {KIND_CORRUPTION: 1}
        assert injector.counters.by_site == {"segment:2": 1}

    def test_site_scoped_record_leaves_others_alone(self):
        plan = FaultPlan(
            seed=1,
            records=(
                FaultRecord(site="segment:1", kind=KIND_GRANT_LOSS, rate=1.0),
            ),
        )
        injector = FaultInjector(plan)
        assert injector.lose_segment_grant(1)
        assert not injector.lose_segment_grant(2)
        assert not injector.lose_ca_grant()

    def test_stall_returns_configured_duration(self):
        plan = FaultPlan(
            seed=1,
            records=(
                FaultRecord(site="fu:P3", kind=KIND_FU_STALL, rate=1.0, ticks=33),
            ),
        )
        injector = FaultInjector(plan)
        assert injector.stall_ticks("P3") == 33
        assert injector.stall_ticks("P4") == 0

    def test_summary_shape(self):
        injector = FaultInjector(FaultPlan.transient(seed=6, corruption_rate=1.0))
        injector.corrupt_package(1)
        summary = injector.summary()
        assert summary["total"] == 1
        assert summary["seed"] == 6
        assert summary["records"] == 1
