"""Permanent element failure: graceful degradation vs fail-fast."""

import pytest

from repro.emulator.emulator import emulate
from repro.errors import ElementFailureError, FaultConfigError
from repro.faults import FaultPlan, RetryPolicy
from repro.faults.model import FaultRecord, KIND_PERMANENT


def _failure_plan(process="P2", at_tick=100, seed=9):
    return FaultPlan(
        seed=seed,
        records=(
            FaultRecord(site=f"fu:{process}", kind=KIND_PERMANENT, at_tick=at_tick),
        ),
    )


class TestGracefulDegradation:
    def test_degraded_report(self, mp3_graph, platform_3seg):
        report = emulate(
            mp3_graph,
            platform_3seg,
            fault_plan=_failure_plan(),
            retry_policy=RetryPolicy(on_permanent_failure="degrade"),
        )
        assert report.degraded
        assert any("P2" in flow and "failed" in flow for flow in report.unserved_flows)
        assert report.fault_summary["by_kind"] == {KIND_PERMANENT: 1}

    def test_downstream_flows_reported_unserved(self, mp3_graph, platform_3seg):
        report = emulate(
            mp3_graph,
            platform_3seg,
            fault_plan=_failure_plan(),
            retry_policy=RetryPolicy(on_permanent_failure="degrade"),
        )
        # killing an early process starves its consumers
        assert len(report.unserved_flows) > 1
        assert any("missing" in flow for flow in report.unserved_flows)

    def test_listing_renders_degraded_block(self, mp3_graph, platform_3seg):
        report = emulate(
            mp3_graph,
            platform_3seg,
            fault_plan=_failure_plan(),
            retry_policy=RetryPolicy(on_permanent_failure="degrade"),
        )
        listing = report.format_listing()
        assert "DEGRADED run" in listing

    def test_late_failure_changes_nothing(self, mp3_graph, platform_3seg):
        # an element that dies after the run's natural end harms nobody...
        clean = emulate(mp3_graph, platform_3seg)
        report = emulate(
            mp3_graph,
            platform_3seg,
            fault_plan=_failure_plan(at_tick=10_000_000),
            retry_policy=RetryPolicy(on_permanent_failure="degrade"),
        )
        # ...but the failure event itself still executes, so the element is
        # marked failed while every flow has already been served
        assert report.execution_time_fs == clean.execution_time_fs
        assert not report.unserved_flows

    def test_to_dict_carries_degradation(self, mp3_graph, platform_3seg):
        report = emulate(
            mp3_graph,
            platform_3seg,
            fault_plan=_failure_plan(),
            retry_policy=RetryPolicy(on_permanent_failure="degrade"),
        )
        data = report.to_dict()
        assert data["degraded"] is True
        assert data["unserved_flows"]
        assert data["fault_summary"]["total"] == 1


class TestFailFast:
    def test_raises_element_failure(self, mp3_graph, platform_3seg):
        with pytest.raises(ElementFailureError) as excinfo:
            emulate(
                mp3_graph,
                platform_3seg,
                fault_plan=_failure_plan(),
                retry_policy=RetryPolicy(on_permanent_failure="fail"),
            )
        assert excinfo.value.site == "fu:P2"
        assert excinfo.value.at_tick == 100


class TestValidation:
    def test_unknown_process_rejected(self, mp3_graph, platform_3seg):
        with pytest.raises(FaultConfigError, match="unknown process"):
            emulate(
                mp3_graph,
                platform_3seg,
                fault_plan=_failure_plan(process="Nope"),
            )
