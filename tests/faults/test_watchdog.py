"""The progress watchdog and the kernel's event/tick budgets."""

import pytest

from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.errors import DeadlockError, StallError
from repro.faults import FaultPlan, RetryPolicy, Watchdog


@pytest.fixture
def spec_3seg(platform_3seg):
    return PlatformSpec.from_platform(platform_3seg)


class TestWatchdog:
    def test_validation(self):
        from repro.errors import FaultConfigError

        with pytest.raises(FaultConfigError):
            Watchdog(stall_ticks=0)
        with pytest.raises(FaultConfigError):
            Watchdog(check_every=0)

    def test_fires_on_livelock(self, mp3_graph, spec_3seg):
        # every grant lost: time advances forever but nothing ever retires
        sim = Simulation(
            mp3_graph,
            spec_3seg,
            fault_plan=FaultPlan.transient(seed=3, grant_loss_rate=1.0),
            retry_policy=RetryPolicy(max_attempts=100_000, backoff="none"),
            watchdog=Watchdog(stall_ticks=5_000, check_every=64),
        )
        with pytest.raises(StallError) as excinfo:
            sim.run()
        error = excinfo.value
        assert "watchdog" in str(error)
        assert error.pending
        assert error.stalled_elements
        assert error.last_progress_tick is not None

    def test_silent_on_healthy_run(self, mp3_graph, spec_3seg):
        sim = Simulation(
            mp3_graph,
            spec_3seg,
            watchdog=Watchdog(stall_ticks=100_000, check_every=64),
        ).run()
        assert not sim.degraded


class TestBudgets:
    def test_event_budget_raises_stall_error(self, mp3_graph, spec_3seg):
        sim = Simulation(
            mp3_graph, spec_3seg, config=EmulationConfig(max_events=200)
        )
        with pytest.raises(StallError, match="event budget exhausted"):
            sim.run()

    def test_tick_budget_raises_stall_error(self, mp3_graph, spec_3seg):
        # MP3 needs ~54k CA ticks; a 1k budget must trip the guard
        sim = Simulation(
            mp3_graph, spec_3seg, config=EmulationConfig(max_ticks=1_000)
        )
        with pytest.raises(StallError, match="tick budget exhausted"):
            sim.run()

    def test_budget_errors_carry_diagnostics(self, mp3_graph, spec_3seg):
        sim = Simulation(
            mp3_graph, spec_3seg, config=EmulationConfig(max_events=200)
        )
        with pytest.raises(StallError) as excinfo:
            sim.run()
        assert excinfo.value.pending
        assert isinstance(excinfo.value, DeadlockError)

    def test_default_budgets_do_not_interfere(self, report_3seg):
        # the session-scoped paper run finished under the default budgets
        assert report_3seg.execution_time_fs > 0
