"""The reliability sweep: completion probability and overhead curves."""

import json

import pytest

from repro.analysis.reliability import ReliabilityCurve, reliability_sweep
from repro.errors import FaultConfigError
from repro.faults import RetryPolicy


@pytest.fixture(scope="module")
def curve(request):
    mp3_graph = request.getfixturevalue("mp3_graph")
    platform_3seg = request.getfixturevalue("platform_3seg")
    return reliability_sweep(
        mp3_graph,
        platform_3seg,
        rates=[0.0, 0.05],
        seeds=(1, 2),
        retry_policy=RetryPolicy(max_attempts=8, on_exhaustion="degrade"),
    )


class TestSweep:
    def test_zero_rate_point_is_baseline(self, curve):
        point = curve.point_at(0.0)
        assert point.completion_probability == 1.0
        assert point.overhead_pct == 0.0
        assert point.mean_retries == 0.0

    def test_nonzero_rate_costs_time(self, curve):
        point = curve.point_at(0.05)
        assert point.mean_retries > 0
        assert point.mean_nacks > 0
        assert point.overhead_pct > 0
        assert point.runs == 2
        assert point.completed + point.degraded + point.failed == 2

    def test_unknown_rate_raises(self, curve):
        with pytest.raises(KeyError):
            curve.point_at(0.5)

    def test_rejects_permanent_kind(self, mp3_graph, platform_3seg):
        with pytest.raises(FaultConfigError, match="transient"):
            reliability_sweep(
                mp3_graph,
                platform_3seg,
                rates=[0.0],
                kind="permanent_failure",
            )


class TestExports:
    def test_markdown_table(self, curve):
        table = curve.to_markdown()
        assert table.startswith("| rate |")
        assert table.count("\n") == 1 + len(curve.points)

    def test_csv(self, curve, tmp_path):
        target = tmp_path / "curve.csv"
        text = curve.to_csv(target)
        assert target.read_text(encoding="utf-8") == text
        assert text.splitlines()[0].startswith("rate,")
        assert len(text.splitlines()) == 1 + len(curve.points)

    def test_json_round_trip(self, curve):
        data = json.loads(curve.to_json())
        assert data["application"] == "MP3Decoder"
        assert data["kind"] == "package_corruption"
        assert len(data["points"]) == 2
        rebuilt_rates = [p["rate"] for p in data["points"]]
        assert rebuilt_rates == [0.0, 0.05]

    def test_as_dict_matches_points(self, curve):
        data = curve.as_dict()
        assert data["points"][1]["mean_retries"] == round(
            curve.point_at(0.05).mean_retries, 2
        )


class TestEngineMatrix:
    """The sweep's aggregated curve is engine-independent (ENG-1 applied)."""

    @pytest.mark.parametrize("engine", ["fast", "batch"])
    def test_curve_identical_to_stepped(self, request, engine):
        mp3_graph = request.getfixturevalue("mp3_graph")
        platform_3seg = request.getfixturevalue("platform_3seg")
        kwargs = dict(
            rates=[0.0, 0.01],
            seeds=(1, 2, 3),
            retry_policy=RetryPolicy(max_attempts=8, on_exhaustion="degrade"),
            workers=1,
        )
        stepped = reliability_sweep(
            mp3_graph, platform_3seg, engine="stepped", **kwargs
        )
        other = reliability_sweep(
            mp3_graph, platform_3seg, engine=engine, **kwargs
        )
        assert other.as_dict() == stepped.as_dict()

    def test_batch_path_checkpointing_falls_back(self, request, tmp_path):
        # checkpoint/resume journaling belongs to the per-job executor
        # path; asking for it with the batch engine must still work (and
        # still produce the same curve), not silently skip the journal
        mp3_graph = request.getfixturevalue("mp3_graph")
        platform_3seg = request.getfixturevalue("platform_3seg")
        kwargs = dict(rates=[0.0, 0.01], seeds=(1, 2), workers=1)
        direct = reliability_sweep(
            mp3_graph, platform_3seg, engine="batch", **kwargs
        )
        journaled = reliability_sweep(
            mp3_graph,
            platform_3seg,
            engine="batch",
            checkpoint_dir=tmp_path,
            **kwargs,
        )
        assert journaled.as_dict() == direct.as_dict()
        assert list(tmp_path.iterdir()), "checkpoint journal was not written"
