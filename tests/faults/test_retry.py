"""The retry/backoff protocol: NACKs, re-arbitration, exhaustion."""

import pytest

from repro.emulator.emulator import emulate
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.errors import FaultConfigError, RetryExhaustedError
from repro.faults import FaultPlan, RetryPolicy
from repro.faults.model import FaultRecord, KIND_CORRUPTION


class TestRetryPolicyValidation:
    def test_max_attempts_must_be_positive(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy(max_attempts=0)

    def test_unknown_backoff(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy(backoff="quadratic")

    def test_unknown_exhaustion_mode(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy(on_exhaustion="explode")

    def test_timeout_must_be_positive(self):
        with pytest.raises(FaultConfigError):
            RetryPolicy(timeout_ticks=0)


class TestBackoffArithmetic:
    def test_none_backoff(self):
        policy = RetryPolicy(backoff="none")
        assert policy.delay_ticks(1) == 0
        assert policy.delay_ticks(5) == 0

    def test_linear_backoff(self):
        policy = RetryPolicy(backoff="linear", base_delay_ticks=3)
        assert [policy.delay_ticks(n) for n in (1, 2, 3)] == [3, 6, 9]

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(
            backoff="exponential", base_delay_ticks=4, max_delay_ticks=16
        )
        assert [policy.delay_ticks(n) for n in (1, 2, 3, 4)] == [4, 8, 16, 16]


class TestRetryProtocol:
    def test_corruption_is_retried_and_completes(self, mp3_graph, platform_3seg):
        report = emulate(
            mp3_graph,
            platform_3seg,
            fault_plan=FaultPlan.transient(seed=42, corruption_rate=0.05),
            retry_policy=RetryPolicy(max_attempts=8),
        )
        assert report.total_nacks > 0
        assert report.total_retries > 0
        assert not report.degraded
        assert report.fault_summary["total"] > 0
        # every process still finished every flow
        assert all(entry.end_ps or not entry.packages_sent for entry in report.timeline)

    def test_retry_slows_execution(self, mp3_graph, platform_3seg):
        clean = emulate(mp3_graph, platform_3seg)
        faulty = emulate(
            mp3_graph,
            platform_3seg,
            fault_plan=FaultPlan.transient(seed=42, corruption_rate=0.05),
            retry_policy=RetryPolicy(max_attempts=8),
        )
        assert faulty.execution_time_fs > clean.execution_time_fs

    def test_exhaustion_raises_under_fail_policy(self, mp3_graph, platform_3seg):
        with pytest.raises(RetryExhaustedError) as excinfo:
            emulate(
                mp3_graph,
                platform_3seg,
                fault_plan=FaultPlan.transient(seed=1, corruption_rate=1.0),
                retry_policy=RetryPolicy(max_attempts=2, on_exhaustion="fail"),
            )
        assert excinfo.value.attempts == 2

    def test_exhaustion_degrades_under_degrade_policy(
        self, mp3_graph, platform_3seg
    ):
        report = emulate(
            mp3_graph,
            platform_3seg,
            fault_plan=FaultPlan.transient(seed=1, corruption_rate=1.0),
            retry_policy=RetryPolicy(max_attempts=2, on_exhaustion="degrade"),
        )
        assert report.degraded
        assert report.unserved_flows
        assert any("abandoned" in flow for flow in report.unserved_flows)

    def test_segment_scoped_corruption_counts_on_that_segment(
        self, mp3_graph, platform_3seg
    ):
        plan = FaultPlan(
            seed=3,
            records=(
                FaultRecord(site="segment:1", kind=KIND_CORRUPTION, rate=0.2),
            ),
        )
        report = emulate(
            mp3_graph,
            platform_3seg,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=10),
        )
        assert report.sa(1).nacks + report.ca_nacks == report.total_nacks
        assert report.sa(2).nacks == 0 and report.sa(3).nacks == 0

    def test_deterministic_across_runs(self, mp3_graph, platform_3seg):
        kwargs = dict(
            fault_plan=FaultPlan.transient(seed=42, corruption_rate=0.05),
            retry_policy=RetryPolicy(max_attempts=8),
        )
        a = emulate(mp3_graph, platform_3seg, **kwargs)
        b = emulate(mp3_graph, platform_3seg, **kwargs)
        assert a.to_json() == b.to_json()


class TestTimeout:
    def test_ca_timeout_counts_and_retries(self, mp3_graph, platform_3seg):
        # a 1-tick CA budget cannot cover any realistic queue wait, so some
        # requests time out and re-arbitrate; the run must still finish
        spec = PlatformSpec.from_platform(platform_3seg)
        sim = Simulation(
            mp3_graph,
            spec,
            retry_policy=RetryPolicy(
                max_attempts=50, backoff="none", timeout_ticks=1
            ),
        ).run()
        assert sim.ca.counters.timeouts > 0
        assert sim.ca.counters.retries >= sim.ca.counters.timeouts
        assert not sim.degraded

    def test_no_timeout_without_budget(self, sim_3seg):
        assert sim_3seg.ca.counters.timeouts == 0
