"""Kernel tests: inter-segment circuit-switched transfers.

Uniform 100 MHz clocks make every expectation exact:

A (segment 1) -> B (segment 2), 36 items, C = 50, s = 36:
  fire A @ 10 ns; compute done @ 510 ns; CA grants @ 510 ns;
  fill BU12 on segment 1's bus @ [510, 870] ns;
  unload into segment 2 @ [880, 1240] ns (W̄P = 1 tick);
  delivery (and the master's transaction end) @ 1240 ns.
"""

import pytest

from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.errors import MappingError
from repro.psdf.graph import PSDFGraph

NS = 1_000_000


def spec(n_segments, placement, package_size=36, **kwargs):
    defaults = dict(
        package_size=package_size,
        segment_frequencies_mhz={i: 100.0 for i in range(1, n_segments + 1)},
        ca_frequency_mhz=100.0,
        placement=placement,
    )
    defaults.update(kwargs)
    return PlatformSpec(**defaults)


def run_adjacent(config=None):
    graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
    sim = Simulation(graph, spec(2, {"A": 1, "B": 2}), config=config)
    return sim.run()


class TestAdjacentTransfer:
    def test_delivery_time(self):
        sim = run_adjacent()
        assert sim.process_counters["B"].last_input_fs == 1240 * NS

    def test_master_holds_until_delivery(self):
        sim = run_adjacent()
        assert sim.process_counters["A"].end_fs == 1240 * NS

    def test_bu_package_counters(self):
        sim = run_adjacent()
        bu = sim.bus_units[(1, 2)].counters
        assert bu.input_packages == 1
        assert bu.output_packages == 1
        assert bu.received_from_left == 1
        assert bu.transferred_to_right == 1
        assert bu.received_from_right == 0
        assert bu.transferred_to_left == 0

    def test_bu_tct_is_2s_plus_wp(self):
        sim = run_adjacent()
        bu = sim.bus_units[(1, 2)].counters
        assert bu.tct == 36 + 1 + 36  # load + W̄P + unload
        assert bu.waiting_ticks == 1

    def test_request_counters(self):
        sim = run_adjacent()
        assert sim.segments[1].counters.inter_requests == 1
        assert sim.segments[1].counters.intra_requests == 0
        assert sim.ca.counters.inter_requests == 1
        assert sim.ca.counters.grants == 1

    def test_source_segment_packet_counter(self):
        sim = run_adjacent()
        assert sim.segments[1].counters.packets_to_right == 1
        assert sim.segments[2].counters.packets_to_right == 0

    def test_cascaded_release(self):
        sim = run_adjacent()
        # source segment quiesces at fill end, destination at delivery
        assert sim.segments[1].counters.quiesce_fs == 870 * NS
        assert sim.segments[2].counters.quiesce_fs == 1240 * NS

    def test_no_locks_left(self):
        sim = run_adjacent()
        assert not any(seg.locked for seg in sim.segments.values())
        assert all(bu.occupancy == 0 for bu in sim.bus_units.values())


class TestTransitTransfer:
    def run_transit(self, config=None):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        sim = Simulation(
            graph, spec(3, {"A": 1, "B": 3}), config=config
        )
        return sim.run()

    def test_delivery_through_middle_segment(self):
        sim = self.run_transit()
        # fill @870, hop seg2 @880-1240, hop seg3 @1250-1610
        assert sim.process_counters["B"].last_input_fs == 1610 * NS

    def test_both_bus_record_the_package(self):
        sim = self.run_transit()
        bu12 = sim.bus_units[(1, 2)].counters
        bu23 = sim.bus_units[(2, 3)].counters
        assert bu12.tct == 73 and bu23.tct == 73
        assert bu12.transferred_to_right == 1
        assert bu23.received_from_left == 1

    def test_transit_segment_packet_counters_stay_zero(self):
        # the paper's Segment 2 reports 0/0 although P3->P4 transits it
        sim = self.run_transit()
        assert sim.segments[2].counters.packets_to_left == 0
        assert sim.segments[2].counters.packets_to_right == 0

    def test_middle_segment_released_in_cascade(self):
        sim = self.run_transit()
        assert sim.segments[1].counters.quiesce_fs == 870 * NS
        assert sim.segments[2].counters.quiesce_fs == 1240 * NS
        assert sim.segments[3].counters.quiesce_fs == 1610 * NS


class TestLeftwardTransfer:
    def test_direction_counters(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        sim = Simulation(graph, spec(2, {"A": 2, "B": 1})).run()
        assert sim.segments[2].counters.packets_to_left == 1
        bu = sim.bus_units[(1, 2)].counters
        assert bu.received_from_right == 1
        assert bu.transferred_to_left == 1


class TestFidelityKnobs:
    def test_bu_sync_raises_wp(self):
        sim = run_adjacent(EmulationConfig(bu_sync_ticks=2))
        bu = sim.bus_units[(1, 2)].counters
        assert bu.waiting_ticks == 3  # sampling 1 + sync 2

    def test_ca_decision_delays_fill(self):
        sim = run_adjacent(EmulationConfig(ca_decision_ticks=3))
        assert sim.process_counters["B"].last_input_fs == (1240 + 30) * NS

    def test_reference_config_slower_than_emulator(self):
        fast = run_adjacent()
        slow = run_adjacent(EmulationConfig.reference())
        assert slow.execution_time_fs() > fast.execution_time_fs()


class TestCircuitBlocking:
    def test_local_traffic_stalls_during_circuit(self):
        # A->B crosses into segment 2 while C->D is local in segment 2.
        graph = PSDFGraph.from_edges(
            [("A", "B", 36, 1, 50), ("C", "D", 36, 1, 50)]
        )
        sim = Simulation(
            graph, spec(2, {"A": 1, "B": 2, "C": 2, "D": 2})
        ).run()
        # Both compute until 510 ns.  Deterministic CA-first ordering: the
        # circuit locks segment 2, C's local transfer waits for the cascade.
        assert sim.process_counters["B"].last_input_fs == 1240 * NS
        assert sim.process_counters["C"].end_fs == 1600 * NS

    def test_two_circuits_on_disjoint_paths_overlap(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 36, 1, 50), ("C", "D", 36, 1, 50)]
        )
        sim = Simulation(
            graph,
            spec(4, {"A": 1, "B": 2, "C": 3, "D": 4}),
        ).run()
        # both transfers complete at the same time: disjoint paths, no wait
        assert sim.process_counters["B"].last_input_fs == 1240 * NS
        assert sim.process_counters["D"].last_input_fs == 1240 * NS

    def test_overlapping_circuits_serialize(self):
        graph = PSDFGraph.from_edges(
            [("A", "X", 36, 1, 50), ("C", "Y", 36, 1, 50)]
        )
        sim = Simulation(
            graph,
            spec(3, {"A": 1, "X": 2, "C": 2, "Y": 3}),
        ).run()
        finishes = sorted(
            (
                sim.process_counters["X"].last_input_fs,
                sim.process_counters["Y"].last_input_fs,
            )
        )
        assert finishes[0] == 1240 * NS
        assert finishes[1] > finishes[0]


class TestSpecValidation:
    def test_missing_placement_rejected(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        with pytest.raises(MappingError):
            Simulation(graph, spec(2, {"A": 1}))

    def test_placement_on_unknown_segment_rejected(self):
        with pytest.raises(MappingError):
            spec(2, {"A": 1, "B": 7})

    def test_non_contiguous_segments_rejected(self):
        from repro.errors import EmulationError

        with pytest.raises(EmulationError):
            PlatformSpec(
                package_size=36,
                segment_frequencies_mhz={1: 100.0, 3: 100.0},
                ca_frequency_mhz=100.0,
                placement={},
            )
