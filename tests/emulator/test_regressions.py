"""Pinned regressions: scenarios that once exposed kernel bugs.

Each test documents the bug it guards against; keep them even if they look
redundant with the property suite — they are the exact minimal witnesses.
"""

import pytest

from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.monitor import emulation_finished
from repro.psdf.generators import random_dag_psdf

SNF = EmulationConfig(inter_segment_protocol="store-and-forward")


@pytest.mark.parametrize("seed", [208, 248, 411])
def test_store_and_forward_destination_wake(seed):
    """Regression: a hop queued on a destination segment was never served
    when the segment's bus freed through an unrelated delivery.

    ``_release_segment`` re-scheduled arbitration only for pending *local*
    requests, not queued hops; with the hop as the segment's only pending
    work the emulation stalled (found by hypothesis on these seeds).
    """
    graph = random_dag_psdf(6, seed=seed, max_items=288, max_ticks=90)
    spec = PlatformSpec(
        package_size=36,
        segment_frequencies_mhz={1: 111.0, 2: 111.0, 3: 91.0},
        ca_frequency_mhz=111.0,
        placement={"P0": 3, "P1": 1, "P2": 1, "P3": 1, "P4": 2, "P5": 1},
    )
    sim = Simulation(graph, spec, SNF).run()
    assert emulation_finished(sim)
    total = graph.total_packages(36)
    received = sum(c.packages_received for c in sim.process_counters.values())
    assert received == total
