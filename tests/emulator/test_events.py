"""Event-queue determinism tests."""

import pytest

from repro.emulator.events import PRIO_CA, PRIO_SA, PRIO_STATE, EventQueue
from repro.errors import EmulationError


def test_time_ordering():
    queue = EventQueue()
    log = []
    queue.schedule(30, lambda: log.append("c"))
    queue.schedule(10, lambda: log.append("a"))
    queue.schedule(20, lambda: log.append("b"))
    queue.run()
    assert log == ["a", "b", "c"]


def test_priority_breaks_time_ties():
    queue = EventQueue()
    log = []
    queue.schedule(10, lambda: log.append("sa"), PRIO_SA)
    queue.schedule(10, lambda: log.append("state"), PRIO_STATE)
    queue.schedule(10, lambda: log.append("ca"), PRIO_CA)
    queue.run()
    assert log == ["state", "ca", "sa"]


def test_sequence_breaks_full_ties():
    queue = EventQueue()
    log = []
    for i in range(5):
        queue.schedule(10, lambda i=i: log.append(i), PRIO_STATE)
    queue.run()
    assert log == [0, 1, 2, 3, 4]


def test_now_advances():
    queue = EventQueue()
    seen = []
    queue.schedule(25, lambda: seen.append(queue.now_fs))
    queue.run()
    assert seen == [25]
    assert queue.now_fs == 25


def test_events_can_schedule_events():
    queue = EventQueue()
    log = []

    def first():
        log.append("first")
        queue.schedule(queue.now_fs + 5, lambda: log.append("second"))

    queue.schedule(10, first)
    queue.run()
    assert log == ["first", "second"]


def test_cannot_schedule_in_past():
    queue = EventQueue()
    queue.schedule(10, lambda: queue.schedule(5, lambda: None))
    with pytest.raises(EmulationError, match="past"):
        queue.run()


def test_cancel():
    queue = EventQueue()
    log = []
    entry = queue.schedule(10, lambda: log.append("cancelled"))
    queue.schedule(20, lambda: log.append("kept"))
    queue.cancel(entry)
    queue.run()
    assert log == ["kept"]


def test_len_ignores_cancelled():
    queue = EventQueue()
    entry = queue.schedule(10, lambda: None)
    queue.schedule(20, lambda: None)
    queue.cancel(entry)
    assert len(queue) == 1


def test_budget_exhaustion():
    queue = EventQueue()

    def loop():
        queue.schedule(queue.now_fs + 1, loop)

    queue.schedule(0, loop)
    with pytest.raises(EmulationError, match="budget"):
        queue.run(max_events=100)


def test_run_returns_event_count():
    queue = EventQueue()
    for i in range(7):
        queue.schedule(i, lambda: None)
    assert queue.run() == 7
    assert queue.executed == 7


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None
