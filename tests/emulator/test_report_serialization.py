"""Report JSON serialization tests."""

import json

import pytest


def test_to_dict_structure(report_3seg):
    data = report_3seg.to_dict()
    assert data["application"] == "MP3Decoder"
    assert data["segment_count"] == 3
    assert len(data["segment_arbiters"]) == 3
    assert len(data["border_units"]) == 2
    assert len(data["timeline"]) == 15


def test_dict_matches_report(report_3seg):
    data = report_3seg.to_dict()
    assert data["execution_time_ps"] == report_3seg.execution_time_ps
    assert data["ca"]["tct"] == report_3seg.ca_tct
    bu12 = next(b for b in data["border_units"] if b["name"] == "BU12")
    assert bu12["tct"] == report_3seg.bu(1, 2).tct
    sa2 = next(s for s in data["segment_arbiters"] if s["index"] == 2)
    assert sa2["intra_requests"] == report_3seg.sa(2).intra_requests


def test_json_roundtrips(report_3seg):
    parsed = json.loads(report_3seg.to_json())
    assert parsed == json.loads(json.dumps(report_3seg.to_dict(), sort_keys=True))


def test_timeline_rows_sorted_by_end(report_3seg):
    rows = report_3seg.to_dict()["timeline"]
    ends = [r["end_ps"] for r in rows]
    assert ends == sorted(ends)


def test_json_stable_across_runs(mp3_graph, platform_3seg):
    from repro.emulator.emulator import emulate

    a = emulate(mp3_graph, platform_3seg).to_json()
    b = emulate(mp3_graph, platform_3seg).to_json()
    assert a == b
