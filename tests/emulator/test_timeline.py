"""Process timeline (Fig. 10 data) tests."""

import pytest

from repro.emulator.timeline import build_timeline


class TestMP3Timeline:
    def test_all_processes_present(self, report_3seg):
        assert len(report_3seg.timeline) == 15

    def test_entry_lookup(self, report_3seg):
        assert report_3seg.timeline.entry("P0").process == "P0"
        with pytest.raises(KeyError):
            report_3seg.timeline.entry("P99")

    def test_p0_starts_at_tick_one(self, report_3seg):
        assert report_3seg.timeline.entry("P0").start_ps == 10_989

    def test_every_process_fired_and_finished(self, report_3seg):
        for entry in report_3seg.timeline:
            assert entry.start_fs is not None
            assert entry.end_fs is not None

    def test_entries_sorted_by_end(self, report_3seg):
        ends = [e.end_fs for e in report_3seg.timeline]
        assert ends == sorted(ends)

    def test_finishing_order_respects_pipeline(self, report_3seg):
        order = report_3seg.timeline.finishing_order()
        pos = {name: i for i, name in enumerate(order)}
        # the paper's Fig. 10 shape: P0 first, P7 among the last
        assert pos["P0"] == 0
        assert pos["P0"] < pos["P8"] < pos["P3"] < pos["P7"]
        assert pos["P7"] >= len(order) - 2

    def test_durations_positive(self, report_3seg):
        for entry in report_3seg.timeline:
            assert entry.duration_us is not None
            assert entry.duration_us >= 0

    def test_to_rows_shape(self, report_3seg):
        rows = report_3seg.timeline.to_rows()
        assert len(rows) == 15
        assert all(len(row) == 3 for row in rows)

    def test_sinks_report_last_input(self, report_3seg):
        p14 = report_3seg.timeline.entry("P14")
        assert p14.packages_sent == 0
        assert p14.last_input_fs is not None
        # P14 receives 16 + 16 packages (from P7 and P13)
        assert p14.packages_received == 32

    def test_sent_counts_match_schedule(self, report_3seg, mp3_graph):
        for entry in report_3seg.timeline:
            expected = sum(
                f.packages(36) for f in mp3_graph.outgoing(entry.process)
            )
            assert entry.packages_sent == expected

    def test_build_timeline_matches_report(self, sim_3seg, report_3seg):
        rebuilt = build_timeline(sim_3seg)
        assert rebuilt.to_rows() == report_3seg.timeline.to_rows()
