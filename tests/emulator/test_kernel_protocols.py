"""Kernel tests: arbitration policies and the store-and-forward protocol."""

import pytest

from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.monitor import emulation_finished
from repro.psdf.generators import random_dag_psdf
from repro.psdf.graph import PSDFGraph

NS = 1_000_000

SF = EmulationConfig(inter_segment_protocol="store-and-forward")


def spec(n, placement, **kwargs):
    defaults = dict(
        package_size=36,
        segment_frequencies_mhz={i: 100.0 for i in range(1, n + 1)},
        ca_frequency_mhz=100.0,
        placement=placement,
    )
    defaults.update(kwargs)
    return PlatformSpec(**defaults)


class TestFixedPriorityPolicy:
    def contention_spec(self, policy):
        return spec(
            1,
            {"A": 1, "B": 1, "C": 1},
            sa_policies={1: policy},
        )

    def graph(self):
        # A and B saturate the bus racing toward C
        return PSDFGraph.from_edges(
            [("A", "C", 144, 1, 10), ("B", "C", 144, 1, 10)]
        )

    def test_fixed_priority_favours_lowest_name(self):
        sim = Simulation(self.graph(), self.contention_spec("fixed-priority")).run()
        # A always wins ties: it finishes all 4 packages before B catches up
        assert sim.process_counters["A"].end_fs < sim.process_counters["B"].end_fs

    def test_round_robin_interleaves(self):
        rr = Simulation(self.graph(), self.contention_spec("round-robin")).run()
        fp = Simulation(self.graph(), self.contention_spec("fixed-priority")).run()
        # under fixed priority the loser finishes no earlier than under RR
        assert fp.process_counters["B"].end_fs >= rr.process_counters["B"].end_fs
        # total makespan is identical (same work, one bus)
        assert fp.execution_time_fs() == rr.execution_time_fs()

    def test_policy_travels_through_xml(self, mp3_graph):
        from repro.apps.mp3 import paper_allocation
        from repro.emulator.emulator import SegBusEmulator
        from repro.model.mapping import map_application

        psm = map_application(
            mp3_graph,
            paper_allocation(3),
            segment_frequencies_mhz=[91, 98, 89],
            ca_frequency_mhz=111,
        )
        psm.platform.segment(1).arbiter = type(psm.platform.segment(1).arbiter)(
            "SA1", policy="fixed-priority"
        )
        emulator = SegBusEmulator.from_models(mp3_graph, psm.platform)
        assert emulator.spec.sa_policies[1] == "fixed-priority"
        assert emulator.spec.sa_policies[2] == "round-robin"
        emulator.run()  # must still terminate cleanly


class TestStoreAndForward:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            EmulationConfig(inter_segment_protocol="wormhole")

    def test_adjacent_transfer_same_counters_as_circuit(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        circuit = Simulation(graph, spec(2, {"A": 1, "B": 2})).run()
        snf = Simulation(graph, spec(2, {"A": 1, "B": 2}), SF).run()
        # identical single-transfer timing on an idle platform
        assert (
            snf.process_counters["B"].last_input_fs
            == circuit.process_counters["B"].last_input_fs
            == 1240 * NS
        )
        assert snf.bus_units[(1, 2)].counters.tct == 73

    def test_transit_hop_arbitrated_not_locked(self):
        # local traffic in the middle segment overlaps with transit under
        # store-and-forward (it would stall under the circuit protocol)
        graph = PSDFGraph.from_edges(
            [("A", "B", 36, 1, 50), ("C", "D", 36, 1, 50)]
        )
        placement = {"A": 1, "B": 3, "C": 2, "D": 2}
        circuit = Simulation(graph, spec(3, placement)).run()
        snf = Simulation(graph, spec(3, placement), SF).run()
        # C's local transfer is not blocked by A's circuit in S&F
        assert (
            snf.process_counters["C"].end_fs
            <= circuit.process_counters["C"].end_fs
        )

    def test_source_only_locked_during_fill(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        sim = Simulation(graph, spec(3, {"A": 1, "B": 3}), SF).run()
        # destination still receives through both hops
        assert sim.process_counters["B"].packages_received == 1
        assert sim.bus_units[(1, 2)].counters.output_packages == 1
        assert sim.bus_units[(2, 3)].counters.output_packages == 1

    def test_opposing_traffic_no_deadlock(self):
        # heavy flows in both directions across the same BUs
        graph = PSDFGraph.from_edges(
            [("A", "B", 360, 1, 10), ("C", "D", 360, 1, 10)]
        )
        placement = {"A": 1, "B": 3, "C": 3, "D": 1}
        sim = Simulation(graph, spec(3, placement), SF).run()
        assert emulation_finished(sim)
        assert sim.process_counters["B"].packages_received == 10
        assert sim.process_counters["D"].packages_received == 10

    def test_wp_accounts_arbitration_wait(self):
        # with contention, S&F waiting periods exceed the circuit constant
        graph = PSDFGraph.from_edges(
            [("A", "B", 180, 1, 10), ("C", "D", 180, 1, 10)]
        )
        placement = {"A": 1, "B": 2, "C": 1, "D": 2}
        snf = Simulation(graph, spec(2, placement), SF).run()
        bu = snf.bus_units[(1, 2)].counters
        assert bu.waiting_ticks >= bu.output_packages  # >= 1 tick each

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_dags_terminate_clean(self, seed):
        graph = random_dag_psdf(8, seed=seed, max_items=360, max_ticks=80)
        placement = {
            name: (i % 3) + 1 for i, name in enumerate(graph.process_names)
        }
        sim = Simulation(graph, spec(3, placement), SF).run()
        assert emulation_finished(sim)
        total = graph.total_packages(36)
        received = sum(
            c.packages_received for c in sim.process_counters.values()
        )
        assert received == total

    def test_mp3_runs_under_both_protocols(self, mp3_graph, platform_3seg):
        from repro.emulator.emulator import emulate

        circuit = emulate(mp3_graph, platform_3seg)
        snf = emulate(mp3_graph, platform_3seg, config=SF)
        # same package accounting under either protocol
        assert snf.bu(1, 2).input_packages == circuit.bu(1, 2).input_packages
        assert snf.bu(2, 3).input_packages == circuit.bu(2, 3).input_packages
        # both within a few percent: the MP3 app is compute-dominated
        assert abs(snf.execution_time_us - circuit.execution_time_us) \
            / circuit.execution_time_us < 0.05
