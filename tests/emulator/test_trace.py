"""Event tracing and VCD export tests."""

import pytest

from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.trace import Tracer, export_vcd
from repro.psdf.graph import PSDFGraph


@pytest.fixture
def traced_sim():
    graph = PSDFGraph.from_edges(
        [("A", "B", 72, 1, 50), ("B", "C", 36, 2, 40)]
    )
    spec = PlatformSpec(
        package_size=36,
        segment_frequencies_mhz={1: 100.0, 2: 100.0},
        ca_frequency_mhz=100.0,
        placement={"A": 1, "B": 1, "C": 2},
    )
    tracer = Tracer()
    sim = Simulation(graph, spec, tracer=tracer).run()
    return sim, tracer


class TestTracer:
    def test_events_in_time_order(self, traced_sim):
        _, tracer = traced_sim
        times = [e.time_fs for e in tracer.events]
        assert times == sorted(times)

    def test_lifecycle_events_present(self, traced_sim):
        _, tracer = traced_sim
        kinds = {e.kind for e in tracer.events}
        assert {"fire", "request", "grant", "transfer_done", "deliver",
                "circuit_grant", "fill_done", "hop_done",
                "process_done"} <= kinds

    def test_event_counts_match_counters(self, traced_sim):
        sim, tracer = traced_sim
        # one fire per process, one deliver per received package
        assert len(tracer.of_kind("fire")) == len(sim.process_counters)
        delivered = sum(
            c.packages_received for c in sim.process_counters.values()
        )
        assert len(tracer.of_kind("deliver")) == delivered
        # inter-segment packages each get a circuit grant
        assert len(tracer.of_kind("circuit_grant")) == \
            sim.ca.counters.grants

    def test_about_filters_by_subject(self, traced_sim):
        _, tracer = traced_sim
        a_events = tracer.about("A")
        assert a_events
        assert all(e.subject == "A" for e in a_events)

    def test_format_log(self, traced_sim):
        _, tracer = traced_sim
        log = tracer.format_log(limit=5)
        assert len(log.splitlines()) == 5
        assert "fire" in log

    def test_untraced_run_has_no_overhead_hooks(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        spec = PlatformSpec(
            package_size=36,
            segment_frequencies_mhz={1: 100.0},
            ca_frequency_mhz=100.0,
            placement={"A": 1, "B": 1},
        )
        sim = Simulation(graph, spec).run()  # tracer=None must be fine
        assert sim.tracer is None


class TestVCD:
    def test_header_and_signals(self, traced_sim):
        sim, _ = traced_sim
        vcd = export_vcd(sim)
        assert "$timescale 1ps $end" in vcd
        assert "$enddefinitions $end" in vcd
        assert "segment1_busy" in vcd
        assert "segment2_busy" in vcd
        assert "bu12_occupancy" in vcd
        assert "A_active" in vcd
        assert "ca_circuits" in vcd

    def test_timestamps_monotone(self, traced_sim):
        sim, _ = traced_sim
        stamps = [
            int(line[1:])
            for line in export_vcd(sim).splitlines()
            if line.startswith("#")
        ]
        assert stamps == sorted(stamps)

    def test_writes_file(self, traced_sim, tmp_path):
        sim, _ = traced_sim
        target = tmp_path / "run.vcd"
        text = export_vcd(sim, path=target)
        assert target.read_text() == text

    def test_busy_wire_toggles(self, traced_sim):
        sim, _ = traced_sim
        vcd = export_vcd(sim)
        # find segment1_busy's id, then check both 0 and 1 values appear
        for line in vcd.splitlines():
            if "segment1_busy" in line:
                vcd_id = line.split()[3]
                break
        assert f"1{vcd_id}" in vcd and f"0{vcd_id}" in vcd

    def test_mp3_vcd_exports(self, sim_3seg):
        vcd = export_vcd(sim_3seg)
        assert "bu23_occupancy" in vcd
        assert vcd.count("#") > 100  # plenty of change points
