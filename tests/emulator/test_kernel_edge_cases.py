"""Kernel edge cases: wide platforms, extreme parameters, mixed flows."""

import pytest

from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.monitor import emulation_finished
from repro.psdf.flow import FlowCost
from repro.psdf.graph import PSDFGraph

NS = 1_000_000


def spec(n, placement, package_size=36, bu_depths=None, **kwargs):
    defaults = dict(
        package_size=package_size,
        segment_frequencies_mhz={i: 100.0 for i in range(1, n + 1)},
        ca_frequency_mhz=100.0,
        placement=placement,
        bu_depths=bu_depths or {},
    )
    defaults.update(kwargs)
    return PlatformSpec(**defaults)


class TestWidePlatforms:
    def test_five_segment_end_to_end_transfer(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        sim = Simulation(graph, spec(5, {"A": 1, "B": 5})).run()
        # fill @870, then 4 hops of 370 ns each (alignment + 36 ticks)
        assert sim.process_counters["B"].last_input_fs == (870 + 4 * 370) * NS
        # every BU on the path saw exactly one package
        for pair in ((1, 2), (2, 3), (3, 4), (4, 5)):
            assert sim.bus_units[pair].counters.output_packages == 1

    def test_five_segment_leftward(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        sim = Simulation(graph, spec(5, {"A": 5, "B": 1})).run()
        assert sim.process_counters["B"].packages_received == 1
        assert sim.segments[5].counters.packets_to_left == 1
        for pair in ((1, 2), (2, 3), (3, 4), (4, 5)):
            assert sim.bus_units[pair].counters.transferred_to_left == 1

    def test_bidirectional_crossing_flows(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 108, 1, 50), ("C", "D", 108, 1, 50)]
        )
        sim = Simulation(
            graph, spec(3, {"A": 1, "B": 3, "C": 3, "D": 1})
        ).run()
        assert emulation_finished(sim)
        bu12 = sim.bus_units[(1, 2)].counters
        assert bu12.received_from_left == 3
        assert bu12.received_from_right == 3


class TestExtremeParameters:
    def test_package_size_one(self):
        graph = PSDFGraph.from_edges([("A", "B", 5, 1, 10)])
        sim = Simulation(graph, spec(1, {"A": 1, "B": 1}, package_size=1)).run()
        assert sim.process_counters["B"].packages_received == 5
        # per package: 10 compute + 1 transfer
        assert sim.process_counters["A"].end_fs == (1 + 5 * 11) * 10 * NS

    def test_huge_package_size_single_transfer(self):
        graph = PSDFGraph.from_edges([("A", "B", 100, 1, 10)])
        sim = Simulation(
            graph, spec(1, {"A": 1, "B": 1}, package_size=1000)
        ).run()
        assert sim.process_counters["B"].packages_received == 1
        # the bus is occupied for the full 1000-slot package
        assert sim.segments[1].counters.busy_fs == 1000 * 10 * NS

    def test_one_tick_cost(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 72, 1, FlowCost(c_fixed=1, c_item=0))]
        )
        sim = Simulation(graph, spec(1, {"A": 1, "B": 1})).run()
        assert sim.process_counters["A"].end_fs == (1 + 2 * 37) * 10 * NS

    def test_single_process_application(self):
        graph = PSDFGraph([__import__("repro.psdf.process", fromlist=["Process"]).Process("A")], [])
        sim = Simulation(graph, spec(1, {"A": 1})).run()
        assert sim.process_counters["A"].done
        assert sim.execution_time_fs() > 0


class TestBUDepth:
    def test_depth_two_buffers_under_store_and_forward(self):
        # two masters feed the same BU; depth 2 lets both packages queue
        graph = PSDFGraph.from_edges(
            [("A", "C", 36, 1, 10), ("B", "D", 36, 1, 12)]
        )
        config = EmulationConfig(inter_segment_protocol="store-and-forward")
        deep = Simulation(
            graph,
            spec(2, {"A": 1, "B": 1, "C": 2, "D": 2}, bu_depths={(1, 2): 2}),
            config,
        ).run()
        shallow = Simulation(
            graph,
            spec(2, {"A": 1, "B": 1, "C": 2, "D": 2}, bu_depths={(1, 2): 1}),
            config,
        ).run()
        assert emulation_finished(deep) and emulation_finished(shallow)
        # a deeper FIFO can only help (or tie) the second sender
        deep_b = deep.process_counters["B"].end_fs
        shallow_b = shallow.process_counters["B"].end_fs
        assert deep_b <= shallow_b

    def test_depth_ignored_under_circuit_protocol(self):
        # full-path locking admits one in-flight package regardless of depth
        graph = PSDFGraph.from_edges([("A", "B", 108, 1, 10)])
        d1 = Simulation(
            graph, spec(2, {"A": 1, "B": 2}, bu_depths={(1, 2): 1})
        ).run()
        d4 = Simulation(
            graph, spec(2, {"A": 1, "B": 2}, bu_depths={(1, 2): 4})
        ).run()
        assert d1.execution_time_fs() == d4.execution_time_fs()


class TestMixedFlows:
    def test_master_with_intra_and_inter_flows(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 72, 1, 50), ("A", "C", 72, 2, 50)]
        )
        sim = Simulation(graph, spec(2, {"A": 1, "B": 1, "C": 2})).run()
        assert sim.process_counters["B"].packages_received == 2
        assert sim.process_counters["C"].packages_received == 2
        assert sim.segments[1].counters.grants == 2  # the local flow
        assert sim.segments[1].counters.inter_requests == 2

    def test_flows_execute_in_t_order(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 36, 2, 50), ("A", "C", 36, 1, 50)]
        )
        sim = Simulation(graph, spec(1, {"A": 1, "B": 1, "C": 1})).run()
        # C's flow has the smaller T: delivered first
        assert (
            sim.process_counters["C"].last_input_fs
            < sim.process_counters["B"].last_input_fs
        )

    def test_diamond_with_cross_segment_join(self):
        graph = PSDFGraph.from_edges(
            [
                ("S", "L", 72, 1, 30),
                ("S", "R", 72, 2, 30),
                ("L", "T", 72, 3, 30),
                ("R", "T", 72, 3, 30),
            ]
        )
        sim = Simulation(
            graph, spec(2, {"S": 1, "L": 1, "R": 2, "T": 2})
        ).run()
        t = sim.process_counters["T"]
        assert t.packages_received == 4
        assert t.done
