"""Activity series (Fig. 11 data) tests."""

import pytest

from repro.emulator.activity import activity_series


class TestActivitySeries:
    def test_elements_covered(self, sim_3seg):
        series = activity_series(sim_3seg, bins=40)
        assert set(series.elements) == {
            "Segment 1",
            "Segment 2",
            "Segment 3",
            "BU12",
            "BU23",
            "CA",
        }

    def test_bin_count(self, sim_3seg):
        series = activity_series(sim_3seg, bins=25)
        assert series.bins == 25
        assert len(series.bin_edges_us) == 26

    def test_utilization_bounded(self, sim_3seg):
        series = activity_series(sim_3seg, bins=40)
        for element in series.elements:
            for value in series.utilization[element]:
                assert 0.0 <= value <= 1.0

    def test_edges_cover_whole_run(self, sim_3seg):
        series = activity_series(sim_3seg, bins=10)
        assert series.bin_edges_us[0] == 0.0
        assert series.bin_edges_us[-1] == pytest.approx(
            sim_3seg.global_end_fs / 1e9
        )

    def test_segment1_busy_early_not_late(self, sim_3seg):
        # segment 1 hosts the front of the pipeline: its activity is
        # concentrated in the first ~2/3 of the run (the Fig. 11 shape)
        series = activity_series(sim_3seg, bins=10)
        seg1 = series.utilization["Segment 1"]
        assert sum(seg1[:7]) > 0
        assert sum(seg1[8:]) == 0.0

    def test_segment2_busy_late(self, sim_3seg):
        series = activity_series(sim_3seg, bins=10)
        seg2 = series.utilization["Segment 2"]
        assert seg2[-1] > 0 or seg2[-2] > 0

    def test_busy_fraction_positive_for_segments(self, sim_3seg):
        series = activity_series(sim_3seg, bins=40)
        for index in (1, 2, 3):
            assert series.busy_fraction(f"Segment {index}") > 0

    def test_bu_activity_sparse(self, sim_3seg):
        series = activity_series(sim_3seg, bins=40)
        # BU23 carries only 2 packages: tiny overall utilization
        assert series.busy_fraction("BU23") < series.busy_fraction("Segment 2")

    def test_peak_bin_within_range(self, sim_3seg):
        series = activity_series(sim_3seg, bins=40)
        for element in series.elements:
            assert 0 <= series.peak_bin(element) < series.bins

    def test_rejects_zero_bins(self, sim_3seg):
        with pytest.raises(ValueError):
            activity_series(sim_3seg, bins=0)
