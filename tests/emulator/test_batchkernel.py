"""Batch-kernel tests: grouping, cloning, isolation, order invariance.

The vectorized mega-batch engine promises two things at once: per-member
observables *byte-identical* to the stepped kernel, and an execution
strategy (shared construction, lockstep scheduling, zero-hit cloning,
dedup) that never leaks into those observables.  These tests pin the
batch-shape edge cases — empty batch, batch of one, heterogeneous
batches, a member that dies mid-batch — plus the internal machinery the
equivalence proof leans on (exact vectorized fault predraws and the
counting injector's opportunity census).
"""

import random

import pytest

from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.emulator.batchkernel import (
    BatchMember,
    BatchSimulation,
    _CountingPlan,
    _python_any_hit,
    _vector_any_hit,
    record_draws,
    run_batch,
)
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.report import build_report
from repro.errors import SegBusError
from repro.faults import FaultPlan, RetryPolicy

RATES = (0.0, 0.0005, 0.001)
SEEDS = (1, 2, 3)


def _spec(segments=2, package_size=8):
    return PlatformSpec.from_platform(
        paper_platform(segments, package_size=package_size)
    )


def _member(label, seed=1, rate=0.001, spec=None, policy=None):
    return BatchMember(
        label=label,
        application=mp3_decoder_psdf(),
        spec=spec or _spec(),
        fault_plan=FaultPlan.transient(seed=seed, corruption_rate=rate),
        retry_policy=policy or RetryPolicy(on_exhaustion="degrade"),
    )


def _stepped_digest(member):
    sim = Simulation(
        member.application,
        member.spec,
        member.config,
        fault_plan=member.fault_plan,
        retry_policy=member.retry_policy,
    ).run()
    return build_report(sim).digest()


class TestBatchShapes:
    def test_empty_batch(self):
        run = run_batch([])
        assert run.ok
        assert run.outcomes == ()
        assert run.stats.members == 0
        assert run.stats.groups == 0

    def test_batch_of_one(self):
        member = _member("solo", rate=0.01)
        run = run_batch([member])
        assert run.ok
        assert run.stats.members == 1
        assert run.stats.simulated == 1
        assert run.stats.cloned == 0
        assert run.outcomes[0].report.digest() == _stepped_digest(member)

    def test_heterogeneous_batch_falls_back_per_group(self):
        # different platform specs cannot share a lockstep group; the
        # batch must split per compatibility group, not reject or merge
        members = [
            _member("a2", spec=_spec(segments=2)),
            _member("b3", spec=_spec(segments=3)),
            _member("c2", seed=2, spec=_spec(segments=2)),
        ]
        run = run_batch(members)
        assert run.ok
        assert run.stats.groups == 2
        for member, outcome in zip(members, run.outcomes):
            assert outcome.report.digest() == _stepped_digest(member)
        # members of one group share its index, across groups they differ
        assert run.outcomes[0].group == run.outcomes[2].group
        assert run.outcomes[0].group != run.outcomes[1].group

    def test_member_order_is_preserved(self):
        members = [_member(f"m{seed}", seed=seed) for seed in SEEDS]
        run = run_batch(members)
        assert [o.label for o in run.outcomes] == [m.label for m in members]


class TestFailureIsolation:
    def _mixed(self):
        # one member's plan exhausts retries under a fail policy while
        # its siblings (same group: same app/spec/config/policy) complete
        policy = RetryPolicy(max_attempts=1, on_exhaustion="fail")
        return [
            _member("healthy1", seed=1, rate=0.0, policy=policy),
            _member("doomed", seed=7, rate=1.0, policy=policy),
            _member("healthy2", seed=2, rate=0.0, policy=policy),
        ]

    def test_mid_batch_failure_does_not_poison_siblings(self):
        members = self._mixed()
        run = run_batch(members)
        assert not run.ok
        by_label = {o.label: o for o in run.outcomes}
        assert isinstance(by_label["doomed"].error, SegBusError)
        assert by_label["doomed"].report is None
        for label in ("healthy1", "healthy2"):
            assert by_label[label].ok
            assert by_label[label].report.digest() == _stepped_digest(
                members[0 if label == "healthy1" else 2]
            )

    def test_failed_member_becomes_job_failure_in_emulate_batch(self):
        # the analysis layer surfaces a batch member's death as that
        # job's JobFailure ledger entry, mirroring the executor path
        from repro.analysis.parallel import EmulationJob, emulate_batch
        from repro.emulator.config import EmulationConfig

        spec = _spec()
        jobs = [
            EmulationJob(
                label="ok",
                application=mp3_decoder_psdf(),
                spec=spec,
                engine="batch",
            ),
            EmulationJob(
                label="budget-dead",
                application=mp3_decoder_psdf(),
                spec=spec,
                config=EmulationConfig(max_events=3),
                engine="batch",
            ),
        ]
        result = emulate_batch(jobs, workers=1)
        assert not result.ok
        assert result.results[0] is not None
        assert result.results[1] is None
        (failure,) = result.failures
        assert failure.label == "budget-dead"
        assert failure.kind == "error"
        assert failure.attempts == 1


class TestCloningAndDedup:
    def test_zero_hit_members_clone_the_reference(self):
        members = [
            _member(f"{rate:g}#{seed}", seed=seed, rate=rate)
            for rate in RATES
            for seed in SEEDS
        ]
        run = run_batch(members)
        assert run.ok
        assert run.stats.groups == 1
        assert run.stats.cloned > 0
        assert run.stats.simulated + run.stats.cloned + run.stats.deduped == (
            len(members) + (1 if run.stats.cloned else 0)
        )  # +1: the group's counting reference run
        for member, outcome in zip(members, run.outcomes):
            assert outcome.report.digest() == _stepped_digest(member)

    def test_cloned_outcomes_share_the_reference_objects(self):
        members = [_member(f"z{seed}", seed=seed, rate=0.0) for seed in SEEDS]
        run = run_batch(members)
        clones = [o for o in run.outcomes if o.cloned]
        assert len(clones) == len(members)
        assert len({id(o.sim) for o in clones}) == 1
        assert len({id(o.report) for o in clones}) == 1

    def test_exact_duplicates_dedup_onto_first_occurrence(self):
        plan = FaultPlan.transient(seed=5, corruption_rate=0.01)
        spec = _spec()
        twin = dict(
            application=mp3_decoder_psdf(),
            spec=spec,
            fault_plan=plan,
            retry_policy=RetryPolicy(on_exhaustion="degrade"),
        )
        run = run_batch(
            [BatchMember(label="one", **twin), BatchMember(label="two", **twin)]
        )
        assert run.ok
        assert run.stats.deduped == 1
        assert run.outcomes[1].deduped
        assert run.outcomes[1].report is run.outcomes[0].report

    def test_batch_order_invariance(self):
        members = [
            _member(f"{rate:g}#{seed}", seed=seed, rate=rate)
            for rate in RATES
            for seed in SEEDS
        ]
        straight = {
            o.label: o.report.digest() for o in run_batch(members).outcomes
        }
        shuffled = list(members)
        random.Random(42).shuffle(shuffled)
        reshuffled = {
            o.label: o.report.digest() for o in run_batch(shuffled).outcomes
        }
        assert straight == reshuffled


class TestPredrawMachinery:
    def test_vectorized_predraw_matches_sequential_reference(self):
        rng = random.Random(99)
        states = [rng.getrandbits(64) | 1 for _ in range(40)]
        rates = [rng.choice([1e-4, 1e-3, 0.02, 0.3]) for _ in range(40)]
        draws = [rng.randint(0, 50) for _ in range(40)]
        assert _vector_any_hit(states, rates, draws) == _python_any_hit(
            states, rates, draws
        )

    def test_counting_reference_census_bounds_the_plan_draws(self):
        # the counting run tallies every fault-draw opportunity of the
        # fault-free execution; a real plan over the same model can only
        # draw at sites/kinds that census knows about
        member = _member("census", rate=0.001)
        reference = BatchSimulation(
            member.application,
            member.spec,
            fault_plan=_CountingPlan(),
            retry_policy=member.retry_policy,
        ).run()
        opportunities = reference.faults.opportunities
        assert opportunities
        assert all(count > 0 for count in opportunities.values())
        draws = record_draws(member.fault_plan, opportunities)
        assert draws
        for _index, record, count in draws:
            assert count == sum(
                n
                for (kind, site), n in opportunities.items()
                if kind == record.kind and record.matches(site)
            )

    def test_zero_rate_plan_report_is_bit_identical_to_fault_free(self):
        # the invariant the clone path leans on: a plan whose streams
        # never fire must leave no trace in the report
        member = _member("null", rate=0.0)
        bare = BatchMember(
            label="bare", application=member.application, spec=member.spec
        )
        run = run_batch([member])
        assert run.outcomes[0].report.digest() == _stepped_digest(bare)


class TestEngineRegistration:
    def test_batch_engine_is_registered(self):
        from repro.emulator.fastkernel import ENGINE_NAMES, simulation_class

        assert "batch" in ENGINE_NAMES
        assert simulation_class("batch") is BatchSimulation

    def test_env_selects_batch(self, monkeypatch):
        from repro.emulator.fastkernel import resolve_engine

        monkeypatch.setenv("SEGBUS_ENGINE", "batch")
        assert resolve_engine(None) == "batch"

    def test_single_run_matches_stepped(self):
        spec = _spec(segments=3, package_size=36)
        application = mp3_decoder_psdf()
        batch_sim = BatchSimulation(application, spec).run()
        stepped_sim = Simulation(application, spec).run()
        assert (
            build_report(batch_sim).digest()
            == build_report(stepped_sim).digest()
        )
        assert batch_sim.queue.executed == stepped_sim.queue.executed
