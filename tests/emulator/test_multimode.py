"""Multi-mode composition: per-mode runs, switch charges, engine lift."""

import pytest

from repro.analysis.analytic import transition_delay_fs
from repro.emulator.fastkernel import ENGINE_NAMES
from repro.emulator.kernel import PlatformSpec
from repro.emulator.multimode import run_multimode, run_multimode_detailed
from repro.errors import ModeError
from repro.model.mapping import Allocation, map_application
from repro.psdf.graph import PSDFGraph
from repro.psdf.modes import (
    ModePhase,
    ModeSchedule,
    MultiModeApplication,
    TransitionSpec,
)

TRANSITION = TransitionSpec(reconfig_ticks=10, flush_ticks_per_bu=2)


def _graphs():
    lo = PSDFGraph.from_edges(
        [("A", "B", 36, 1, 10), ("B", "C", 36, 2, 10)], name="lo"
    )
    hi = PSDFGraph.from_edges(
        [("A", "B", 72, 1, 20), ("B", "C", 72, 2, 20)], name="hi"
    )
    return lo, hi


def toy_app(phases=None, transition=TRANSITION):
    lo, hi = _graphs()
    schedule = ModeSchedule(
        phases=phases
        or (ModePhase("lo", 2), ModePhase("hi", 1), ModePhase("lo", 1)),
        transition=transition,
    )
    return MultiModeApplication(
        name="toy2", modes={"lo": lo, "hi": hi}, schedule=schedule
    )


def toy_spec():
    lo, _ = _graphs()
    psm = map_application(
        lo,
        Allocation.from_groups([("A", "B"), ("C",)]),
        segment_frequencies_mhz=(100.0, 100.0),
        ca_frequency_mhz=120.0,
        package_size=36,
        name="Toy2",
    )
    return PlatformSpec.from_platform(psm.platform)


class TestComposition:
    def test_total_time_is_phase_sum_plus_switch_charges(self):
        app = toy_app()
        spec = toy_spec()
        composed = run_multimode(app, spec)
        lo = composed.mode_runs["lo"].iteration_fs
        hi = composed.mode_runs["hi"].iteration_fs
        switch_fs = transition_delay_fs(app, spec)
        assert switch_fs > 0
        # lo x2, switch, hi x1, switch, lo x1
        assert composed.execution_time_fs == 3 * lo + hi + 2 * switch_fs
        assert composed.transition_total_fs == 2 * switch_fs
        assert composed.switch_count == 2

    def test_zero_transition_degenerates_to_back_to_back(self):
        app = toy_app(transition=TransitionSpec())
        composed = run_multimode(app, toy_spec())
        lo = composed.mode_runs["lo"].iteration_fs
        hi = composed.mode_runs["hi"].iteration_fs
        assert composed.transition_total_fs == 0
        assert composed.execution_time_fs == 3 * lo + hi

    def test_same_mode_neighbours_charge_no_switch(self):
        app = toy_app(phases=(ModePhase("lo", 1), ModePhase("lo", 2)))
        composed = run_multimode(app, toy_spec())
        assert composed.switch_count == 0
        assert composed.transition_total_fs == 0

    def test_phase_timeline_is_cumulative(self):
        composed = run_multimode(toy_app(), toy_spec())
        cursor = 0
        for phase in composed.phases:
            assert phase.start_fs == cursor
            cursor += phase.phase_fs + phase.transition_after_fs
        assert cursor == composed.execution_time_fs

    def test_events_scale_with_iterations(self):
        composed = run_multimode(toy_app(), toy_spec())
        lo = composed.mode_runs["lo"]
        hi = composed.mode_runs["hi"]
        assert composed.total_events == 3 * lo.events + hi.events
        assert composed.executed_events == 3 * lo.executed + hi.executed
        assert sum(composed.kind_counts().values()) == composed.total_events

    def test_detailed_returns_one_measurement_per_mode(self):
        report, measurements = run_multimode_detailed(toy_app(), toy_spec())
        assert set(measurements) == {"lo", "hi"}
        for name, measurement in measurements.items():
            assert measurement.sim.execution_time_fs() == \
                report.mode_runs[name].iteration_fs


class TestEngineLift:
    def test_three_engines_compose_identically(self):
        app = toy_app()
        spec = toy_spec()
        observed = {
            engine: run_multimode(app, spec, engine=engine)
            for engine in ENGINE_NAMES
        }
        reference = observed["stepped"]
        for engine, composed in observed.items():
            assert composed.engine == engine
            assert composed.trace_digest() == reference.trace_digest()
            assert composed.timeline_digest() == reference.timeline_digest()
            assert composed.report_digest() == reference.report_digest()
            assert composed.execution_time_fs == reference.execution_time_fs
            assert composed.total_events == reference.total_events


class TestValidation:
    def test_unplaced_mode_process_raises(self):
        lo, _ = _graphs()
        ghost = PSDFGraph.from_edges([("A", "Z", 36, 1, 10)], name="ghost")
        app = MultiModeApplication(
            name="bad",
            modes={"lo": lo, "ghost": ghost},
            schedule=ModeSchedule(
                phases=(ModePhase("lo"), ModePhase("ghost"))
            ),
        )
        with pytest.raises(ModeError, match="unplaced"):
            run_multimode(app, toy_spec())

    def test_ill_formed_schedule_raises_before_running(self):
        app = toy_app(phases=(ModePhase("lo", iterations=0),))
        with pytest.raises(ModeError, match="degenerate"):
            run_multimode(app, toy_spec())


class TestPresentation:
    def test_listing_and_dict_round_trip_the_structure(self):
        composed = run_multimode(toy_app(), toy_spec())
        listing = composed.format_listing()
        assert "toy2" in listing
        assert "2 switch(es)" in listing
        data = composed.to_dict()
        assert data["switches"] == 2
        assert len(data["phases"]) == 3
        assert data["trace_digest"] == composed.trace_digest()
