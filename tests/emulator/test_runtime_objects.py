"""Unit tests for the kernel's runtime data holders (fu/bu/ca/counters)."""

import pytest

from repro.emulator.bu import BURT, LEFTWARD, RIGHTWARD
from repro.emulator.ca import CART
from repro.emulator.clock import ClockDomain
from repro.emulator.counters import (
    BUCounters,
    CACounters,
    ProcessCounters,
    SegmentCounters,
)
from repro.emulator.fu import MasterRT, TransferJob
from repro.psdf.schedule import ScheduledTransfer
from repro.units import Frequency


def transfer(source="A", target="B", packages=2, order=1):
    return ScheduledTransfer(
        source=source,
        target=target,
        order=order,
        data_items=packages * 36,
        packages=packages,
        ticks_per_package=50,
    )


class TestMasterRT:
    def make(self):
        return MasterRT(
            process="A",
            segment_index=1,
            transfers=(transfer(packages=2), transfer(target="C", packages=1, order=2)),
            counters=ProcessCounters(name="A"),
        )

    def test_program_counter_walk(self):
        master = self.make()
        assert master.current_transfer.target == "B"
        master.advance()
        assert (master.transfer_index, master.package_index) == (0, 1)
        master.advance()
        assert master.current_transfer.target == "C"
        master.advance()
        assert master.all_issued
        assert master.current_transfer is None

    def test_is_done_requires_deliveries(self):
        master = self.make()
        for _ in range(3):
            master.advance()
        master.outstanding_deliveries = 1
        assert not master.is_done
        master.outstanding_deliveries = 0
        assert master.is_done


class TestTransferJob:
    def test_label(self):
        job = TransferJob(
            master="A", source_segment=1, target_segment=2,
            transfer=transfer(), package_seq=0,
        )
        assert job.label == "A->B#1/2"
        assert job.is_inter_segment

    def test_local_job(self):
        job = TransferJob(
            master="A", source_segment=2, target_segment=2,
            transfer=transfer(), package_seq=1,
        )
        assert not job.is_inter_segment


class TestBURT:
    def make(self, depth=1):
        return BURT(left=1, right=2, depth=depth,
                    counters=BUCounters(left=1, right=2))

    def test_per_direction_channels(self):
        bu = self.make()
        bu.push(100, RIGHTWARD)
        assert bu.has_space(LEFTWARD)       # other channel unaffected
        assert not bu.has_space(RIGHTWARD)
        bu.push(200, LEFTWARD)
        assert bu.occupancy == 2

    def test_fifo_order(self):
        bu = self.make(depth=2)
        bu.push(100, RIGHTWARD)
        bu.push(200, RIGHTWARD)
        assert bu.head_loaded_at(RIGHTWARD) == 100
        assert bu.pop(RIGHTWARD) == 100
        assert bu.pop(RIGHTWARD) == 200

    def test_other_side(self):
        bu = self.make()
        assert bu.other_side(1) == 2
        assert bu.other_side(2) == 1
        with pytest.raises(ValueError):
            bu.other_side(3)

    def test_counters_up_wp(self):
        counters = BUCounters(left=1, right=2)
        counters.output_packages = 4
        counters.tct = 4 * (72 + 1)
        assert counters.useful_period(36) == 288
        assert counters.mean_waiting_period(36) == pytest.approx(1.0)

    def test_idle_counters(self):
        counters = BUCounters(left=1, right=2)
        assert counters.mean_waiting_period(36) == 0.0
        assert counters.name == "BU12"


class TestCART:
    def test_circuit_intervals(self):
        ca = CART(
            clock=ClockDomain("CA", Frequency.from_mhz(111)),
            counters=CACounters(),
        )
        job = TransferJob(
            master="A", source_segment=1, target_segment=2,
            transfer=transfer(), package_seq=0,
        )
        ca.begin_circuit(job, 1000)
        assert ca.counters.grants == 1
        ca.end_circuit(job, 5000)
        assert ca.counters.active_intervals == [(1000, 5000)]

    def test_end_unknown_circuit_is_noop(self):
        ca = CART(
            clock=ClockDomain("CA", Frequency.from_mhz(111)),
            counters=CACounters(),
        )
        job = TransferJob(
            master="A", source_segment=1, target_segment=2,
            transfer=transfer(), package_seq=0,
        )
        ca.end_circuit(job, 5000)  # never began
        assert ca.counters.active_intervals == []


class TestSegmentCounters:
    def test_record_busy_accumulates(self):
        counters = SegmentCounters(index=1)
        counters.record_busy(0, 100)
        counters.record_busy(200, 500)
        assert counters.busy_fs == 400
        assert counters.quiesce_fs == 500
        assert counters.busy_intervals == [(0, 100), (200, 500)]


class TestProcessCounters:
    def test_fired_property(self):
        counters = ProcessCounters(name="A")
        assert not counters.fired
        counters.start_fs = 10
        assert counters.fired
