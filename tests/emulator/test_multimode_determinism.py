"""Mode-switch trace determinism: double runs and hash-seed independence.

The composed multi-mode digests hash per-phase structure plus per-mode
trace/timeline/report digests, so they inherit every ordering guarantee
of the single-mode kernels — pinned here the same way as
``test_determinism.py``: byte-identical digests across two in-process
runs and across fresh interpreters with different ``PYTHONHASHSEED``.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.apps.workloads import workload_model
from repro.emulator.multimode import run_multimode
from repro.testing.generators import generate_multimode_model

REPO_ROOT = Path(__file__).resolve().parents[2]

_DIGEST_SCRIPT = """
from repro.apps.workloads import workload_model
from repro.emulator.multimode import run_multimode
from repro.testing.generators import generate_multimode_model

scenario = workload_model("mp3_jpeg_multimode")
composed = run_multimode(scenario.application, scenario.platform)
print(composed.trace_digest())
print(composed.timeline_digest())
print(composed.report_digest())

model = generate_multimode_model(5)
composed = run_multimode(model.application, model.platform)
print(composed.trace_digest())
print(composed.timeline_digest())
print(composed.report_digest())
"""


def _composed_digests(application, platform):
    composed = run_multimode(application, platform)
    return (
        composed.trace_digest(),
        composed.timeline_digest(),
        composed.report_digest(),
    )


class TestSameProcess:
    def test_scenario_double_run_identical_digests(self):
        scenario = workload_model("mp3_jpeg_multimode")
        first = _composed_digests(scenario.application, scenario.platform)
        second = _composed_digests(scenario.application, scenario.platform)
        assert first == second

    def test_generated_multimode_double_run_identical_digests(self):
        a = generate_multimode_model(5)
        b = generate_multimode_model(5)
        assert a.application.name == b.application.name
        assert _composed_digests(
            a.application, a.platform
        ) == _composed_digests(b.application, b.platform)


class TestAcrossInterpreters:
    def _digests_under_hashseed(self, hashseed: str):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-c", _DIGEST_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            check=True,
        )
        lines = result.stdout.split()
        assert len(lines) == 6
        return lines

    def test_mode_switch_digests_stable_across_hash_randomization(self):
        assert self._digests_under_hashseed(
            "1"
        ) == self._digests_under_hashseed("4242")
