"""Monitor (Process Status Flags) tests."""

import pytest

from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.monitor import emulation_finished, no_activity, status_flags
from repro.errors import DeadlockError
from repro.psdf.graph import PSDFGraph


@pytest.fixture
def finished_sim():
    graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
    spec = PlatformSpec(
        package_size=36,
        segment_frequencies_mhz={1: 100.0},
        ca_frequency_mhz=100.0,
        placement={"A": 1, "B": 1},
    )
    return Simulation(graph, spec).run()


def test_all_flags_high_after_run(finished_sim):
    flags = status_flags(finished_sim)
    assert flags.all_high
    assert flags.low() == ()
    assert flags["A"] and flags["B"]


def test_no_activity_after_run(finished_sim):
    assert no_activity(finished_sim)
    assert emulation_finished(finished_sim)


def test_flags_reflect_tampered_state(finished_sim):
    finished_sim.process_counters["B"].done = False
    flags = status_flags(finished_sim)
    assert not flags.all_high
    assert flags.low() == ("B",)


def test_no_activity_detects_queued_requests(finished_sim):
    finished_sim.ca.queue.append(object())
    assert not no_activity(finished_sim)


def test_no_activity_detects_locked_segment(finished_sim):
    finished_sim.segments[1].locked = True
    assert not no_activity(finished_sim)


def test_validate_final_state_raises_on_tamper(finished_sim):
    finished_sim.process_counters["B"].done = False
    with pytest.raises(DeadlockError, match="process B not done"):
        finished_sim._validate_final_state()


def test_validate_final_state_reports_stuck_master(finished_sim):
    master = finished_sim.masters["A"]
    master.transfer_index = 0
    master.package_index = 0
    with pytest.raises(DeadlockError, match="master A"):
        finished_sim._validate_final_state()


def test_mp3_run_finishes_clean(sim_3seg):
    assert emulation_finished(sim_3seg)
    assert status_flags(sim_3seg).all_high
