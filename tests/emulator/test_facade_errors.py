"""Facade error paths: mismatched or broken model pairs."""

import pytest

from repro.emulator.emulator import SegBusEmulator
from repro.errors import MappingError, SegBusError, XMLFormatError
from repro.psdf.graph import PSDFGraph
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_writer import psm_to_xml


@pytest.fixture
def app():
    return PSDFGraph.from_edges([("A", "B", 72, 1, 50)])


def platform_for(names):
    from repro.model.builder import uniform_platform

    builder = uniform_platform(1, frequency_mhz=100)
    for name in names:
        builder.place(name, 1)
    platform = builder.build()
    for name in names:
        platform.fu_of_process(name).add_slave()
    return platform


class TestMismatchedPairs:
    def test_psm_missing_process(self, app):
        # the PSM only places A: emulation setup must fail loudly
        emulator = SegBusEmulator(
            psdf_to_xml(app, 36), psm_to_xml(platform_for(["A"]))
        )
        with pytest.raises(MappingError, match="B"):
            emulator.run()

    def test_unrelated_models_fail(self, app):
        other_psm = psm_to_xml(platform_for(["X", "Y"]))
        emulator = SegBusEmulator(psdf_to_xml(app, 36), other_psm)
        with pytest.raises(MappingError):
            emulator.run()

    def test_broken_psdf_rejected_at_construction(self, app):
        with pytest.raises(XMLFormatError):
            SegBusEmulator("<broken", psm_to_xml(platform_for(["A", "B"])))

    def test_broken_psm_rejected_at_construction(self, app):
        with pytest.raises(XMLFormatError):
            SegBusEmulator(psdf_to_xml(app, 36), "not xml")

    def test_swapped_arguments_fail(self, app):
        psdf = psdf_to_xml(app, 36)
        psm = psm_to_xml(platform_for(["A", "B"]))
        with pytest.raises(SegBusError):
            SegBusEmulator(psm, psdf)  # swapped
