"""Emulator facade tests: XML in, report out."""

import pytest

from repro.emulator.config import EmulationConfig
from repro.emulator.emulator import SegBusEmulator, emulate
from repro.psdf.flow import FlowCost
from repro.psdf.graph import PSDFGraph
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_writer import psm_to_xml


class TestConstruction:
    def test_from_xml_strings(self, mp3_graph, platform_3seg):
        emulator = SegBusEmulator(
            psdf_to_xml(mp3_graph, 36), psm_to_xml(platform_3seg)
        )
        assert emulator.spec.segment_count == 3
        assert len(emulator.application) == 15

    def test_from_files(self, mp3_graph, platform_3seg, tmp_path):
        psdf = tmp_path / "psdf.xml"
        psm = tmp_path / "psm.xml"
        psdf.write_text(psdf_to_xml(mp3_graph, 36))
        psm.write_text(psm_to_xml(platform_3seg))
        emulator = SegBusEmulator.from_files(psdf, psm)
        assert emulator.run().segment_count == 3

    def test_communication_matrix_built(self, emulator_3seg):
        # section 3.5: the emulator builds the matrix from the PSDF
        assert emulator_3seg.communication_matrix["P0", "P1"] == 576

    def test_run_is_cached(self, mp3_graph, platform_3seg):
        emulator = SegBusEmulator.from_models(mp3_graph, platform_3seg)
        assert emulator.run() is emulator.run()


class TestCostPreservation:
    def graph(self):
        return PSDFGraph.from_edges(
            [("A", "B", 72, 1, FlowCost(c_fixed=10, c_item=5))]
        )

    def platform(self, package_size):
        from repro.model.builder import uniform_platform

        builder = uniform_platform(1, frequency_mhz=100, package_size=package_size)
        builder.place("A", 1).place("B", 1)
        return builder.build()

    def test_preserved_costs_reevaluate(self):
        emulator = SegBusEmulator.from_models(self.graph(), self.platform(18))
        flow = emulator.application.flow("A", "B")
        assert flow.ticks_per_package(18) == 100   # 10 + 5*18
        assert flow.ticks_per_package(36) == 190   # cost model survived

    def test_flattened_costs_freeze_c(self):
        emulator = SegBusEmulator.from_models(
            self.graph(), self.platform(18), preserve_costs=False
        )
        flow = emulator.application.flow("A", "B")
        assert flow.ticks_per_package(18) == 100
        assert flow.ticks_per_package(36) == 100  # constant after roundtrip


class TestOneShot:
    def test_emulate_runs(self, mp3_graph, platform_1seg):
        report = emulate(mp3_graph, platform_1seg)
        assert report.segment_count == 1
        assert report.bu_results == ()

    def test_emulate_with_config(self, mp3_graph, platform_1seg):
        fast = emulate(mp3_graph, platform_1seg)
        slow = emulate(
            mp3_graph, platform_1seg, config=EmulationConfig.reference()
        )
        assert slow.execution_time_fs > fast.execution_time_fs

    def test_deterministic_across_runs(self, mp3_graph, platform_3seg):
        a = emulate(mp3_graph, platform_3seg)
        b = emulate(mp3_graph, platform_3seg)
        assert a.execution_time_fs == b.execution_time_fs
        assert a.ca_tct == b.ca_tct
        assert [s.tct for s in a.sa_results] == [s.tct for s in b.sa_results]
