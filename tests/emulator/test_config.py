"""Emulation configuration tests."""

import pytest

from repro.emulator.config import EmulationConfig


def test_default_is_papers_emulator():
    config = EmulationConfig()
    assert config.grant_latency_ticks == 0
    assert config.bu_sync_ticks == 0
    assert config.ca_decision_ticks == 0
    assert config.master_handshake_ticks == 0
    assert config.bu_sampling_ticks == 1  # W̄P = 1, measured by the paper


def test_emulator_preset_equals_default():
    assert EmulationConfig.emulator() == EmulationConfig()


def test_reference_enables_skipped_factors():
    ref = EmulationConfig.reference()
    assert ref.grant_latency_ticks > 0
    assert ref.bu_sync_ticks == 2  # the paper's "two clock ticks" figure
    assert ref.ca_decision_ticks > 0
    assert ref.master_handshake_ticks > 0


def test_with_overrides():
    config = EmulationConfig().with_overrides(bu_sync_ticks=5)
    assert config.bu_sync_ticks == 5
    assert config.grant_latency_ticks == 0


def test_frozen():
    with pytest.raises(Exception):
        EmulationConfig().bu_sync_ticks = 3


@pytest.mark.parametrize(
    "field",
    [
        "grant_latency_ticks",
        "bus_turnaround_ticks",
        "master_handshake_ticks",
        "bu_sync_ticks",
        "ca_decision_ticks",
        "slave_ack_ticks",
        "bu_sampling_ticks",
        "ca_epilogue_ticks",
    ],
)
def test_rejects_negative(field):
    with pytest.raises(ValueError):
        EmulationConfig(**{field: -1})


def test_rejects_zero_event_budget():
    with pytest.raises(ValueError):
        EmulationConfig(max_events=0)
