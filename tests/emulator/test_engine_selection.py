"""Engine registry and selection: resolve_engine, facade caching, env var."""

import pytest

from repro.emulator.emulator import SegBusEmulator, emulate
from repro.emulator.fastkernel import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    ENGINE_NAMES,
    FastSimulation,
    make_simulation,
    resolve_engine,
    simulation_class,
)
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.errors import SegBusError


class TestResolveEngine:
    def test_explicit_names_win(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
        assert resolve_engine("stepped") == "stepped"

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
        assert resolve_engine(None) == "fast"

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine() == DEFAULT_ENGINE == "stepped"

    def test_empty_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "")
        assert resolve_engine() == DEFAULT_ENGINE

    def test_unknown_name_rejected(self):
        with pytest.raises(SegBusError, match="unknown emulation engine"):
            resolve_engine("warp")

    def test_bad_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "turbo")
        with pytest.raises(SegBusError, match="turbo"):
            resolve_engine()

    def test_every_advertised_name_resolves(self):
        for name in ENGINE_NAMES:
            assert resolve_engine(name) == name


class TestSimulationClass:
    def test_stepped_maps_to_base_kernel(self):
        assert simulation_class("stepped") is Simulation

    def test_fast_maps_to_fastkernel(self):
        assert simulation_class("fast") is FastSimulation

    def test_fast_is_a_simulation(self):
        # drop-in subtype: everything accepting a Simulation accepts it
        assert issubclass(FastSimulation, Simulation)

    def test_make_simulation_constructs_unrun(self, mp3_graph, platform_3seg):
        spec = PlatformSpec.from_platform(platform_3seg)
        sim = make_simulation(mp3_graph, spec, engine="fast")
        assert isinstance(sim, FastSimulation)
        assert sim.queue.executed == 0


class TestFacadeEngineCaching:
    def test_reports_cached_per_engine(self, mp3_graph, platform_3seg):
        emulator = SegBusEmulator.from_models(mp3_graph, platform_3seg)
        stepped = emulator.run(engine="stepped")
        fast = emulator.run(engine="fast")
        assert emulator.run(engine="stepped") is stepped
        assert emulator.run(engine="fast") is fast
        assert stepped is not fast

    def test_engines_agree_through_facade(self, mp3_graph, platform_3seg):
        emulator = SegBusEmulator.from_models(mp3_graph, platform_3seg)
        stepped = emulator.run(engine="stepped")
        fast = emulator.run(engine="fast")
        assert stepped.digest() == fast.digest()

    def test_simulation_property_follows_env(
        self, mp3_graph, platform_3seg, monkeypatch
    ):
        monkeypatch.setenv(ENGINE_ENV_VAR, "fast")
        emulator = SegBusEmulator.from_models(mp3_graph, platform_3seg)
        assert isinstance(emulator.simulation, FastSimulation)

    def test_emulate_one_shot_engine(self, mp3_graph, platform_1seg):
        stepped = emulate(mp3_graph, platform_1seg, engine="stepped")
        fast = emulate(mp3_graph, platform_1seg, engine="fast")
        assert stepped.execution_time_fs == fast.execution_time_fs

    def test_emulate_rejects_unknown_engine(self, mp3_graph, platform_1seg):
        with pytest.raises(SegBusError, match="known engines"):
            emulate(mp3_graph, platform_1seg, engine="cycle-accurate")
