"""Protocol conformance checker tests."""

import pytest

from repro.emulator.conformance import check_conformance
from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.trace import Tracer
from repro.psdf.generators import random_dag_psdf
from repro.psdf.graph import PSDFGraph


def traced_run(graph, placement, segments=2, config=None):
    spec = PlatformSpec(
        package_size=36,
        segment_frequencies_mhz={i: 100.0 for i in range(1, segments + 1)},
        ca_frequency_mhz=100.0,
        placement=placement,
    )
    tracer = Tracer()
    sim = Simulation(graph, spec, config=config, tracer=tracer).run()
    return sim, tracer


class TestConformantRuns:
    def test_simple_run_conformant(self):
        graph = PSDFGraph.from_edges([("A", "B", 72, 1, 50)])
        sim, tracer = traced_run(graph, {"A": 1, "B": 2})
        report = check_conformance(sim, tracer)
        assert report.ok, report.violations
        assert report.checked >= 7

    def test_mp3_run_conformant(self, mp3_graph, platform_3seg):
        from repro.emulator.kernel import PlatformSpec as PS

        tracer = Tracer()
        sim = Simulation(
            mp3_graph, PS.from_platform(platform_3seg), tracer=tracer
        ).run()
        report = check_conformance(sim, tracer)
        assert report.ok, report.violations

    def test_store_and_forward_conformant(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 144, 1, 20), ("C", "D", 144, 1, 20)]
        )
        sim, tracer = traced_run(
            graph,
            {"A": 1, "B": 3, "C": 3, "D": 1},
            segments=3,
            config=EmulationConfig(inter_segment_protocol="store-and-forward"),
        )
        report = check_conformance(sim, tracer)
        assert report.ok, report.violations

    def test_reference_fidelity_conformant(self):
        graph = random_dag_psdf(8, seed=12, max_items=216, max_ticks=60)
        placement = {n: (i % 2) + 1 for i, n in enumerate(graph.process_names)}
        sim, tracer = traced_run(
            graph, placement, config=EmulationConfig.reference()
        )
        report = check_conformance(sim, tracer)
        assert report.ok, report.violations

    def test_works_without_tracer(self, sim_3seg):
        report = check_conformance(sim_3seg)
        assert report.ok, report.violations


class TestViolationDetection:
    """Tampered state must be flagged (the checker actually checks)."""

    @pytest.fixture
    def sim(self):
        graph = PSDFGraph.from_edges([("A", "B", 72, 1, 50)])
        sim, _ = traced_run(graph, {"A": 1, "B": 1}, segments=1)
        return sim

    def test_detects_overlapping_occupations(self, sim):
        sim.segments[1].counters.busy_intervals.append((0, 10**12))
        report = check_conformance(sim)
        assert any("BUS-1" in v for v in report.violations)

    def test_detects_short_occupation(self, sim):
        end = sim.global_end_fs
        sim.segments[1].counters.busy_intervals.append((end + 10, end + 20))
        report = check_conformance(sim)
        assert any("BUS-2" in v for v in report.violations)

    def test_detects_bu_imbalance(self, mp3_graph, platform_3seg):
        from repro.emulator.kernel import PlatformSpec as PS

        sim = Simulation(mp3_graph, PS.from_platform(platform_3seg)).run()
        sim.bus_units[(1, 2)].counters.input_packages += 1
        report = check_conformance(sim)
        assert any("BU-1" in v for v in report.violations)

    def test_detects_tct_below_useful_period(self, mp3_graph, platform_3seg):
        from repro.emulator.kernel import PlatformSpec as PS

        sim = Simulation(mp3_graph, PS.from_platform(platform_3seg)).run()
        sim.bus_units[(1, 2)].counters.tct = 1
        report = check_conformance(sim)
        assert any("BU-2" in v for v in report.violations)

    def test_detects_grant_miscount(self, sim):
        sim.segments[1].counters.grants += 1
        report = check_conformance(sim)
        assert any("CNT-1" in v for v in report.violations)

    def test_detects_premature_fire(self):
        graph = PSDFGraph.from_edges([("A", "B", 72, 1, 50)])
        sim, tracer = traced_run(graph, {"A": 1, "B": 1}, segments=1)
        # forge a fire event for B at t=0, before any delivery
        from repro.emulator.trace import TraceEvent

        tracer.events.insert(0, TraceEvent(0, "fire", "B"))
        report = check_conformance(sim, tracer)
        assert any("FIRE-1" in v for v in report.violations)


class TestOrderViolationDetection:
    def test_detects_out_of_order_delivery(self):
        graph = PSDFGraph.from_edges([("A", "B", 108, 1, 50)])  # 3 packages
        sim, tracer = traced_run(graph, {"A": 1, "B": 1}, segments=1)
        # forge: swap the completion order of packages 2 and 3
        import dataclasses

        done = [
            i for i, e in enumerate(tracer.events)
            if e.kind == "transfer_done"
        ]
        e2, e3 = tracer.events[done[1]], tracer.events[done[2]]
        tracer.events[done[1]] = dataclasses.replace(e2, detail=e3.detail)
        tracer.events[done[2]] = dataclasses.replace(e3, detail=e2.detail)
        report = check_conformance(sim, tracer)
        assert any("ORD-1" in v for v in report.violations)
