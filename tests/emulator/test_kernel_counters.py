"""Counter-semantics tests with heterogeneous clocks (exact oracles)."""

import pytest

from repro.emulator.kernel import PlatformSpec, Simulation
from repro.psdf.graph import PSDFGraph
from repro.units import Frequency

NS = 1_000_000


def run(graph, freqs, ca_mhz, placement, package_size=36):
    spec = PlatformSpec(
        package_size=package_size,
        segment_frequencies_mhz=freqs,
        ca_frequency_mhz=ca_mhz,
        placement=placement,
    )
    return Simulation(graph, spec).run()


class TestHeterogeneousClocks:
    def test_paper_clock_tick_one(self):
        # a 91 MHz source process starts at exactly 10989 ps
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        sim = run(graph, {1: 91.0}, 111.0, {"A": 1, "B": 1})
        assert sim.process_counters["A"].start_fs // 1000 == 10_989

    def test_compute_duration_in_segment_clock(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 100)])
        sim = run(graph, {1: 50.0}, 100.0, {"A": 1, "B": 1})
        # period 20 ns: fire at 20 ns, compute 100 ticks, transfer 36 ticks
        assert sim.process_counters["A"].end_fs == (1 + 136) * 20 * NS

    def test_sa_tct_counts_own_clock(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 100)])
        sim = run(graph, {1: 50.0}, 100.0, {"A": 1, "B": 1})
        # quiesce at 137 ticks of the 50 MHz clock
        assert sim.sa_tct(1) == 137

    def test_ca_tct_counts_ca_clock(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 100)])
        sim = run(graph, {1: 50.0}, 100.0, {"A": 1, "B": 1})
        # global end = sink fire at edge_after(2740 ns) = 2760 ns (50 MHz),
        # CA at 100 MHz: ceil(2760/10) + 2 epilogue = 278
        assert sim.ca.counters.tct == 278

    def test_execution_time_formula(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 100)])
        sim = run(graph, {1: 50.0}, 100.0, {"A": 1, "B": 1})
        t_sa = sim.sa_tct(1) * Frequency.from_mhz(50).period_fs
        t_ca = sim.ca.counters.tct * Frequency.from_mhz(100).period_fs
        assert sim.execution_time_fs() == max(t_sa, t_ca)

    def test_cross_domain_transfer_uses_both_clocks(self):
        # source 100 MHz, destination 50 MHz: the hop runs at 50 MHz
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        sim = run(graph, {1: 100.0, 2: 50.0}, 100.0, {"A": 1, "B": 2})
        # fill ends at 870 ns (100 MHz); unload starts at the next 50 MHz
        # edge (880 ns), occupies 36 x 20 ns = 720 ns
        assert sim.process_counters["B"].last_input_fs == (880 + 720) * NS

    def test_wp_counted_in_destination_clock(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        sim = run(graph, {1: 100.0, 2: 50.0}, 100.0, {"A": 1, "B": 2})
        # one destination-clock sampling tick, as always
        assert sim.bus_units[(1, 2)].counters.waiting_ticks == 1


class TestRequestObservationOracles:
    def test_lone_master_observed_once_per_package(self):
        graph = PSDFGraph.from_edges([("A", "B", 180, 1, 100)])  # 5 packages
        sim = run(graph, {1: 100.0}, 100.0, {"A": 1, "B": 1})
        assert sim.segments[1].counters.intra_requests == 5
        assert sim.segments[1].counters.grants == 5

    def test_simultaneous_pair_observation_count(self):
        # A and B request at the same instant (same C): the round observes
        # both (2), grants one; the loser is re-observed when the winner's
        # transfer completes (1) -> 3 observations for 2 packages
        graph = PSDFGraph.from_edges(
            [("A", "C", 36, 1, 50), ("B", "C", 36, 1, 50)]
        )
        sim = run(graph, {1: 100.0}, 100.0, {"A": 1, "B": 1, "C": 1})
        assert sim.segments[1].counters.intra_requests == 3
        assert sim.segments[1].counters.grants == 2

    def test_arrival_while_busy_also_observed(self):
        # B's request lands mid-transfer of A: +1 arrival observation,
        # +1 round observation at the grant -> 3 total for 2 packages
        graph = PSDFGraph.from_edges(
            [("A", "C", 36, 1, 50), ("B", "C", 36, 1, 60)]
        )
        sim = run(graph, {1: 100.0}, 100.0, {"A": 1, "B": 1, "C": 1})
        assert sim.segments[1].counters.intra_requests == 3
