"""Kernel tests: intra-segment transfers with hand-computed timing oracles.

The base scenario uses a 100 MHz clock everywhere (period = 10 ns =
10_000_000 fs) so every expected timestamp below is exact integer
arithmetic:

* a process enabled at t fires at the first edge strictly after t;
* compute takes C ticks, the transfer occupies the bus s ticks;
* with one flow A->B (36 items, C = 50, s = 36):
  fire A @ 10 ns, compute done @ 510 ns, transfer done (delivery) @ 870 ns.
"""

import pytest

from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.psdf.graph import PSDFGraph

NS = 1_000_000  # femtoseconds per nanosecond


def spec_1seg(**kwargs):
    defaults = dict(
        package_size=36,
        segment_frequencies_mhz={1: 100.0},
        ca_frequency_mhz=100.0,
        placement={"A": 1, "B": 1},
    )
    defaults.update(kwargs)
    return PlatformSpec(**defaults)


def run_single_flow(config=None):
    graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
    sim = Simulation(graph, spec_1seg(), config=config)
    return sim.run()


class TestSingleFlow:
    def test_source_fires_at_tick_one(self):
        sim = run_single_flow()
        assert sim.process_counters["A"].start_fs == 10 * NS

    def test_master_done_at_delivery(self):
        sim = run_single_flow()
        # 10 ns start + 50 ticks compute + 36 ticks transfer = 870 ns
        assert sim.process_counters["A"].end_fs == 870 * NS

    def test_target_receives_package(self):
        sim = run_single_flow()
        counters = sim.process_counters["B"]
        assert counters.packages_received == 1
        assert counters.last_input_fs == 870 * NS

    def test_sink_fires_after_delivery(self):
        sim = run_single_flow()
        assert sim.process_counters["B"].start_fs == 880 * NS
        assert sim.process_counters["B"].done

    def test_request_counters(self):
        sim = run_single_flow()
        counters = sim.segments[1].counters
        assert counters.intra_requests == 1
        assert counters.inter_requests == 0
        assert counters.grants == 1

    def test_sa_tct_is_quiesce_ticks(self):
        sim = run_single_flow()
        assert sim.sa_tct(1) == 87  # quiesce at 870 ns = 87 ticks @ 100 MHz

    def test_ca_tct_covers_global_end_plus_epilogue(self):
        sim = run_single_flow()
        # global end = sink firing at 880 ns = 88 CA ticks, + 2 epilogue
        assert sim.ca.counters.tct == 90

    def test_execution_time_is_max_of_arbiters(self):
        sim = run_single_flow()
        assert sim.execution_time_fs() == 90 * 10 * NS

    def test_no_bu_activity_single_segment(self):
        sim = run_single_flow()
        assert sim.bus_units == {}

    def test_segment_packet_counters_zero_for_local(self):
        sim = run_single_flow()
        assert sim.segments[1].counters.packets_to_left == 0
        assert sim.segments[1].counters.packets_to_right == 0


class TestTimingKnobs:
    def test_grant_latency_shifts_transfer(self):
        sim = run_single_flow(EmulationConfig(grant_latency_ticks=3))
        assert sim.process_counters["A"].end_fs == 900 * NS

    def test_handshake_extends_compute(self):
        sim = run_single_flow(EmulationConfig(master_handshake_ticks=8))
        assert sim.process_counters["A"].end_fs == 950 * NS

    def test_slave_ack_extends_occupancy(self):
        sim = run_single_flow(EmulationConfig(slave_ack_ticks=2))
        assert sim.process_counters["A"].end_fs == 890 * NS


class TestMultiPackage:
    def test_packages_sequential(self):
        graph = PSDFGraph.from_edges([("A", "B", 108, 1, 50)])  # 3 packages
        sim = Simulation(graph, spec_1seg()).run()
        # per package: 50 + 36 = 86 ticks; 3 packages from t=10ns
        assert sim.process_counters["A"].end_fs == (1 + 3 * 86) * 10 * NS
        assert sim.process_counters["B"].packages_received == 3

    def test_partial_final_package_occupies_full_slot(self):
        graph = PSDFGraph.from_edges([("A", "B", 40, 1, 50)])  # 2 packages
        sim = Simulation(graph, spec_1seg()).run()
        assert sim.process_counters["A"].end_fs == (1 + 2 * 86) * 10 * NS


class TestPipelineChain:
    def test_three_stage_chain_timing(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 36, 1, 50), ("B", "C", 36, 2, 50)]
        )
        spec = spec_1seg(placement={"A": 1, "B": 1, "C": 1})
        sim = Simulation(graph, spec).run()
        # A delivers @ 870 ns; B fires @ 880; B delivers @ 880 + 860 = 1740 ns
        assert sim.process_counters["B"].start_fs == 880 * NS
        assert sim.process_counters["B"].end_fs == 1740 * NS
        assert sim.process_counters["C"].last_input_fs == 1740 * NS

    def test_fire_waits_for_all_inputs(self):
        graph = PSDFGraph.from_edges(
            [("A", "C", 36, 1, 50), ("B", "C", 36, 1, 10)]
        )
        spec = spec_1seg(placement={"A": 1, "B": 1, "C": 1})
        sim = Simulation(graph, spec).run()
        c = sim.process_counters["C"]
        assert c.packages_received == 2
        # C fires only after the slower input (A's) arrives
        assert c.start_fs > sim.process_counters["A"].end_fs


class TestContention:
    def test_bus_serializes_transfers(self):
        # Two producers with identical timing racing for one bus.
        graph = PSDFGraph.from_edges(
            [("A", "C", 36, 1, 50), ("B", "C", 36, 1, 50)]
        )
        spec = spec_1seg(placement={"A": 1, "B": 1, "C": 1})
        sim = Simulation(graph, spec).run()
        ends = sorted(
            (sim.process_counters[p].end_fs for p in ("A", "B"))
        )
        # both ready at 510 ns; winner done @ 870, loser @ 870+360=1230
        assert ends == [870 * NS, 1230 * NS]

    def test_contention_inflates_request_observations(self):
        graph = PSDFGraph.from_edges(
            [("A", "C", 72, 1, 50), ("B", "C", 72, 1, 50)]
        )
        spec = spec_1seg(placement={"A": 1, "B": 1, "C": 1})
        sim = Simulation(graph, spec).run()
        # 4 packages but extra observations from requests arriving while busy
        assert sim.segments[1].counters.intra_requests > 4

    def test_round_robin_alternates_masters(self):
        graph = PSDFGraph.from_edges(
            [("A", "C", 144, 1, 10), ("B", "C", 144, 1, 10)]
        )
        spec = spec_1seg(placement={"A": 1, "B": 1, "C": 1})
        sim = Simulation(graph, spec).run()
        # with near-permanent contention both finish within one slot of each other
        a_end = sim.process_counters["A"].end_fs
        b_end = sim.process_counters["B"].end_fs
        assert abs(a_end - b_end) <= 2 * 36 * 10 * NS
