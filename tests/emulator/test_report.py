"""Emulation report structure and formatting tests."""

import pytest

from repro.units import fs_to_ps


class TestStructure:
    def test_headline_fields(self, report_3seg):
        assert report_3seg.application == "MP3Decoder"
        assert report_3seg.segment_count == 3
        assert report_3seg.package_size == 36
        assert report_3seg.execution_time_us > 0

    def test_sa_lookup(self, report_3seg):
        assert report_3seg.sa(1).index == 1
        with pytest.raises(KeyError):
            report_3seg.sa(9)

    def test_bu_lookup(self, report_3seg):
        assert report_3seg.bu(1, 2).name == "BU12"
        with pytest.raises(KeyError):
            report_3seg.bu(3, 4)

    def test_sa_execution_times_consistent(self, report_3seg):
        for sa in report_3seg.sa_results:
            period_ps = 1e6 / sa.frequency_mhz
            assert sa.execution_time_ps == pytest.approx(
                sa.tct * period_ps, rel=1e-6
            )

    def test_execution_time_is_max(self, report_3seg):
        times = [sa.execution_time_ps for sa in report_3seg.sa_results]
        times.append(report_3seg.ca_time_ps)
        assert report_3seg.execution_time_ps == max(times)

    def test_execution_time_unit_conversions(self, report_3seg):
        assert report_3seg.execution_time_ps == fs_to_ps(
            report_3seg.execution_time_fs
        )
        assert report_3seg.execution_time_us == pytest.approx(
            report_3seg.execution_time_ps / 1e6, rel=1e-9
        )

    def test_total_inter_segment_packages(self, report_3seg):
        # 32 from segment 1 + 1 from segment 3 (the paper's counts)
        assert report_3seg.total_inter_segment_packages() == 33


class TestListing:
    def test_listing_contains_all_blocks(self, report_3seg):
        listing = report_3seg.format_listing()
        assert "P0, Start Time = 10989ps" in listing
        assert "P14 received last package at" in listing
        assert "CA TCT =" in listing
        assert "Execution time =" in listing
        assert "BU12:" in listing and "BU23:" in listing
        assert "SA1: TCT =" in listing
        assert "@ 111.00MHz" in listing

    def test_listing_reports_request_counters(self, report_3seg):
        listing = report_3seg.format_listing()
        assert "Total intra-segment requests" in listing
        assert "Total inter-segment requests" in listing

    def test_listing_reports_packet_directions(self, report_3seg):
        listing = report_3seg.format_listing()
        assert "Packets transfered to Right = 32" in listing
        assert "Packets transfered to Left = 1" in listing
