"""Event-ordering determinism regression (audit of kernel.py/events.py).

The audit's conclusions, pinned as executable checks:

* the event queue breaks (time, priority) ties with a monotone sequence
  counter, never object identity;
* every dict/set iteration that feeds scheduling is sorted or
  insertion-ordered deterministically;
* therefore two runs of the same model — in the same process or in fresh
  interpreters with *different* ``PYTHONHASHSEED`` — produce byte-identical
  canonical traces, timelines and reports.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.report import build_report
from repro.emulator.trace import Tracer
from repro.testing.generators import generate_model

REPO_ROOT = Path(__file__).resolve().parents[2]

_DIGEST_SCRIPT = """
from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.emulator.batchkernel import BatchMember, run_batch
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.report import build_report
from repro.emulator.trace import Tracer
from repro.faults import FaultPlan, RetryPolicy
from repro.testing.generators import generate_model

def digests(application, platform):
    spec = PlatformSpec.from_platform(platform)
    tracer = Tracer()
    sim = Simulation(application, spec, tracer=tracer).run()
    report = build_report(sim)
    return tracer.digest(), report.timeline.digest(), report.digest()

model = generate_model(7)
for d in digests(mp3_decoder_psdf(), paper_platform(3)):
    print(d)
for d in digests(model.application, model.platform):
    print(d)

# one faulted lockstep batch: per-member report digests must be just as
# independent of str-hash randomization as the single-run engines
spec = PlatformSpec.from_platform(paper_platform(2, package_size=8))
members = [
    BatchMember(
        label="m%d" % seed,
        application=mp3_decoder_psdf(),
        spec=spec,
        fault_plan=FaultPlan.transient(seed=seed, corruption_rate=0.01),
        retry_policy=RetryPolicy(on_exhaustion="degrade"),
    )
    for seed in (1, 2, 3)
]
for outcome in run_batch(members).outcomes:
    print(outcome.report.digest())
"""


def _run_digests(application, platform):
    spec = PlatformSpec.from_platform(platform)
    tracer = Tracer()
    sim = Simulation(application, spec, tracer=tracer).run()
    report = build_report(sim)
    return tracer.digest(), report.timeline.digest(), report.digest()


class TestSameProcess:
    def test_mp3_double_run_identical_digests(self):
        first = _run_digests(mp3_decoder_psdf(), paper_platform(3))
        second = _run_digests(mp3_decoder_psdf(), paper_platform(3))
        assert first == second

    def test_generated_model_double_run_identical_digests(self):
        a = generate_model(7)
        b = generate_model(7)
        assert a.application.name == b.application.name
        assert _run_digests(a.application, a.platform) == _run_digests(
            b.application, b.platform
        )

    def test_trace_digest_covers_every_event(self):
        tracer = Tracer()
        spec = PlatformSpec.from_platform(paper_platform(3))
        Simulation(mp3_decoder_psdf(), spec, tracer=tracer).run()
        assert len(tracer.canonical_lines()) == len(tracer)
        assert sum(tracer.kind_counts().values()) == len(tracer)

    def test_batch_double_run_identical_digests(self):
        from repro.emulator.batchkernel import BatchMember, run_batch
        from repro.faults import FaultPlan, RetryPolicy

        def batch_digests():
            spec = PlatformSpec.from_platform(
                paper_platform(2, package_size=8)
            )
            members = [
                BatchMember(
                    label=f"m{seed}",
                    application=mp3_decoder_psdf(),
                    spec=spec,
                    fault_plan=FaultPlan.transient(
                        seed=seed, corruption_rate=0.01
                    ),
                    retry_policy=RetryPolicy(on_exhaustion="degrade"),
                )
                for seed in (1, 2, 3, 4)
            ]
            return tuple(
                outcome.report.digest()
                for outcome in run_batch(members).outcomes
            )

        assert batch_digests() == batch_digests()


class TestAcrossInterpreters:
    def _digests_under_hashseed(self, hashseed: str):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-c", _DIGEST_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            check=True,
        )
        lines = result.stdout.split()
        assert len(lines) == 9
        return lines

    def test_digests_stable_across_hash_randomization(self):
        # different PYTHONHASHSEED perturbs str hashing (and so any latent
        # set/dict-order dependence); byte-identical output proves the
        # kernel's ordering never leans on it
        assert self._digests_under_hashseed(
            "1"
        ) == self._digests_under_hashseed("4242")
