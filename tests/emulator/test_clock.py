"""Clock-domain edge arithmetic tests."""

import pytest

from repro.emulator.clock import ClockDomain
from repro.units import Frequency


@pytest.fixture
def clk100():
    return ClockDomain("seg", Frequency.from_mhz(100))  # period 10_000_000 fs


class TestEdges:
    def test_edge_at_or_after_on_edge(self, clk100):
        assert clk100.edge_at_or_after(10_000_000) == 10_000_000

    def test_edge_at_or_after_between(self, clk100):
        assert clk100.edge_at_or_after(10_000_001) == 20_000_000

    def test_edge_at_or_after_zero(self, clk100):
        assert clk100.edge_at_or_after(0) == 0

    def test_edge_after_on_edge(self, clk100):
        assert clk100.edge_after(10_000_000) == 20_000_000

    def test_edge_after_zero_is_tick_one(self, clk100):
        # the enablement rule: a process enabled at t=0 starts at tick 1
        assert clk100.edge_after(0) == 10_000_000

    def test_edge_after_between(self, clk100):
        assert clk100.edge_after(10_000_001) == 20_000_000

    def test_paper_tick_one(self):
        clk = ClockDomain("seg1", Frequency.from_mhz(91))
        # P0, Start Time = 10989 ps
        assert clk.edge_after(0) // 1000 == 10_989


class TestTicks:
    def test_ticks_ceiling(self, clk100):
        assert clk100.ticks(10_000_000) == 1
        assert clk100.ticks(10_000_001) == 2
        assert clk100.ticks(0) == 0

    def test_ticks_to_fs(self, clk100):
        assert clk100.ticks_to_fs(36) == 360_000_000

    def test_ticks_between_counts_edges(self, clk100):
        # edges in (start, end]
        assert clk100.ticks_between(0, 10_000_000) == 1
        assert clk100.ticks_between(5, 10_000_000) == 1
        assert clk100.ticks_between(0, 9_999_999) == 0
        assert clk100.ticks_between(0, 30_000_000) == 3

    def test_ticks_between_rejects_reversed(self, clk100):
        with pytest.raises(ValueError):
            clk100.ticks_between(10, 5)
