"""Clock-domain edge arithmetic tests."""

import math

import pytest

from repro.emulator.clock import ClockDomain
from repro.emulator.events import (
    PRIO_CA,
    PRIO_MONITOR,
    PRIO_SA,
    PRIO_STATE,
    EventQueue,
)
from repro.units import FS_PER_SECOND, Frequency


def _domain_with_period(name, period_fs):
    """A clock whose exact femtosecond period is ``period_fs``."""
    domain = ClockDomain(name, Frequency(FS_PER_SECOND / period_fs))
    assert domain.period_fs == period_fs
    return domain


@pytest.fixture
def clk100():
    return ClockDomain("seg", Frequency.from_mhz(100))  # period 10_000_000 fs


class TestEdges:
    def test_edge_at_or_after_on_edge(self, clk100):
        assert clk100.edge_at_or_after(10_000_000) == 10_000_000

    def test_edge_at_or_after_between(self, clk100):
        assert clk100.edge_at_or_after(10_000_001) == 20_000_000

    def test_edge_at_or_after_zero(self, clk100):
        assert clk100.edge_at_or_after(0) == 0

    def test_edge_after_on_edge(self, clk100):
        assert clk100.edge_after(10_000_000) == 20_000_000

    def test_edge_after_zero_is_tick_one(self, clk100):
        # the enablement rule: a process enabled at t=0 starts at tick 1
        assert clk100.edge_after(0) == 10_000_000

    def test_edge_after_between(self, clk100):
        assert clk100.edge_after(10_000_001) == 20_000_000

    def test_paper_tick_one(self):
        clk = ClockDomain("seg1", Frequency.from_mhz(91))
        # P0, Start Time = 10989 ps
        assert clk.edge_after(0) // 1000 == 10_989


class TestTicks:
    def test_ticks_ceiling(self, clk100):
        assert clk100.ticks(10_000_000) == 1
        assert clk100.ticks(10_000_001) == 2
        assert clk100.ticks(0) == 0

    def test_ticks_to_fs(self, clk100):
        assert clk100.ticks_to_fs(36) == 360_000_000

    def test_ticks_between_counts_edges(self, clk100):
        # edges in (start, end]
        assert clk100.ticks_between(0, 10_000_000) == 1
        assert clk100.ticks_between(5, 10_000_000) == 1
        assert clk100.ticks_between(0, 9_999_999) == 0
        assert clk100.ticks_between(0, 30_000_000) == 3

    def test_ticks_between_rejects_reversed(self, clk100):
        with pytest.raises(ValueError):
            clk100.ticks_between(10, 5)


class TestCoPrimeDomains:
    """SA/CA clocks with co-prime periods never share edges mid-cycle."""

    def test_edges_coincide_only_at_lcm_multiples(self):
        sa = _domain_with_period("SA", 3)
        ca = _domain_with_period("CA", 7)
        shared = [
            t
            for t in range(0, 10 * 21 + 1)
            if sa.edge_at_or_after(t) == t and ca.edge_at_or_after(t) == t
        ]
        assert shared == [21 * k for k in range(11)]

    def test_cross_domain_alignment_is_monotone(self):
        # the BU crossing pattern: leave on a source edge, get sampled at
        # the next destination edge — each hand-off must strictly advance
        sa = _domain_with_period("SA", 3)
        ca = _domain_with_period("CA", 7)
        t = 0
        for _ in range(50):
            advanced = ca.edge_after(sa.edge_after(t))
            assert advanced > t
            assert advanced % ca.period_fs == 0
            t = advanced

    def test_ticks_between_is_additive_across_odd_splits(self):
        # splitting an interval at a foreign domain's edge must not
        # create or lose ticks
        sa = _domain_with_period("SA", 3)
        ca = _domain_with_period("CA", 7)
        for end in range(1, 22):
            split = ca.edge_at_or_after(end // 2)
            if split > end:
                continue
            assert sa.ticks_between(0, end) == sa.ticks_between(
                0, split
            ) + sa.ticks_between(split, end)

    def test_paper_clocks_are_coprime(self):
        # 91 MHz segment vs 111 MHz CA: the first coincident edge after
        # t=0 sits one full lcm away — beyond any emulated horizon, so
        # the kernel can never rely on accidental re-alignment
        seg = ClockDomain("seg", Frequency.from_mhz(91))
        ca = ClockDomain("CA", Frequency.from_mhz(111))
        assert math.gcd(seg.period_fs, ca.period_fs) == 1


class TestPeriodOneDomain:
    """A 1 fs period degenerates every edge operation to identity-ish."""

    def test_every_instant_is_an_edge(self):
        clk = _domain_with_period("unit", 1)
        for t in (0, 1, 17, 123_456_789):
            assert clk.edge_at_or_after(t) == t
            assert clk.edge_after(t) == t + 1

    def test_ticks_equal_femtoseconds(self):
        clk = _domain_with_period("unit", 1)
        assert clk.ticks(12_345) == 12_345
        assert clk.ticks_between(100, 250) == 150

    def test_aligns_with_every_other_domain(self):
        unit = _domain_with_period("unit", 1)
        coarse = _domain_with_period("coarse", 7)
        for k in range(10):
            edge = coarse.ticks_to_fs(k)
            assert unit.edge_at_or_after(edge) == edge


class TestSimultaneousExpiry:
    """Same-instant events order by (priority, insertion) — never by luck."""

    def test_priority_order_beats_insertion_order(self):
        queue = EventQueue()
        order = []
        for prio, tag in (
            (PRIO_MONITOR, "monitor"),
            (PRIO_SA, "sa"),
            (PRIO_CA, "ca"),
            (PRIO_STATE, "state"),
        ):
            queue.schedule(100, lambda t=tag: order.append(t), prio)
        queue.run()
        assert order == ["state", "ca", "sa", "monitor"]

    def test_equal_priority_is_fifo(self):
        queue = EventQueue()
        order = []
        for tag in range(6):
            queue.schedule(100, lambda t=tag: order.append(t), PRIO_SA)
        queue.run()
        assert order == list(range(6))

    def test_cancellation_preserves_sibling_order(self):
        queue = EventQueue()
        order = []
        entries = [
            queue.schedule(100, lambda t=tag: order.append(t), PRIO_STATE)
            for tag in range(5)
        ]
        queue.cancel(entries[2])
        queue.run()
        assert order == [0, 1, 3, 4]

    def test_coincident_domain_edges_are_deterministic(self):
        # two equal-frequency segments expire at the same femtosecond on
        # every tick; two identical schedules must interleave identically
        def run_once():
            a = _domain_with_period("A", 5)
            b = _domain_with_period("B", 5)
            queue = EventQueue()
            order = []
            for k in range(1, 4):
                queue.schedule(
                    a.ticks_to_fs(k), lambda t=f"A{k}": order.append(t), PRIO_SA
                )
                queue.schedule(
                    b.ticks_to_fs(k), lambda t=f"B{k}": order.append(t), PRIO_SA
                )
            queue.run()
            return order

        assert run_once() == run_once() == [
            "A1", "B1", "A2", "B2", "A3", "B3",
        ]
