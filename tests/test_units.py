"""Unit tests for exact time/frequency arithmetic."""

import pytest

from repro.units import (
    FS_PER_PS,
    FS_PER_SECOND,
    Frequency,
    fs_to_ps,
    fs_to_us,
    period_fs_from_hz,
    ps_to_fs,
)


class TestPeriodFromHz:
    def test_91mhz_matches_paper_tick(self):
        # 1 / 91 MHz = 10989.011 ps — the paper prints P0's start as 10989 ps
        assert period_fs_from_hz(91e6) == 10_989_011

    def test_111mhz(self):
        assert period_fs_from_hz(111e6) == 9_009_009

    def test_one_hz(self):
        assert period_fs_from_hz(1.0) == FS_PER_SECOND

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            period_fs_from_hz(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            period_fs_from_hz(-5e6)


class TestConversions:
    def test_fs_to_ps_truncates(self):
        assert fs_to_ps(10_989_011) == 10_989

    def test_fs_to_us(self):
        assert fs_to_us(10**9) == 1.0

    def test_ps_to_fs_roundtrip(self):
        assert fs_to_ps(ps_to_fs(123_456)) == 123_456


class TestFrequency:
    def test_from_mhz(self):
        assert Frequency.from_mhz(98).hz == 98e6

    def test_mhz_property(self):
        assert Frequency.from_mhz(89).mhz == pytest.approx(89.0)

    def test_period_fs(self):
        assert Frequency.from_mhz(91).period_fs == 10_989_011

    def test_period_ps(self):
        assert Frequency.from_mhz(91).period_ps == pytest.approx(10989.011)

    def test_ticks_to_fs(self):
        f = Frequency.from_mhz(100)
        assert f.ticks_to_fs(5) == 5 * 10_000_000

    def test_fs_to_ticks_ceil_exact(self):
        f = Frequency.from_mhz(100)
        assert f.fs_to_ticks_ceil(20_000_000) == 2

    def test_fs_to_ticks_ceil_rounds_up(self):
        f = Frequency.from_mhz(100)
        assert f.fs_to_ticks_ceil(20_000_001) == 3

    def test_next_edge_on_edge(self):
        f = Frequency.from_mhz(100)
        assert f.next_edge_fs(10_000_000) == 10_000_000

    def test_next_edge_between(self):
        f = Frequency.from_mhz(100)
        assert f.next_edge_fs(10_000_001) == 20_000_000

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Frequency(0)

    def test_hashable(self):
        assert len({Frequency.from_mhz(91), Frequency.from_mhz(91)}) == 1
