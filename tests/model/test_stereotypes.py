"""UML-profile machinery tests."""

import pytest

from repro.errors import ModelError
from repro.model.stereotypes import (
    KERNEL_CLASS,
    STEREOTYPES,
    Stereotype,
    StereotypedElement,
)


class TestRegistry:
    def test_platform_stereotypes_present(self):
        for name in (
            "SegBusPlatform",
            "Segment",
            "CentralArbiter",
            "SegmentArbiter",
            "BorderUnit",
            "FunctionalUnit",
            "Master",
            "Slave",
        ):
            assert name in STEREOTYPES

    def test_psdf_stereotypes_added_by_paper(self):
        # section 2.2: "we introduce three new stereotypes"
        for name in ("InitialNode", "ProcessNode", "FinalNode"):
            assert name in STEREOTYPES

    def test_all_extend_kernel_class(self):
        assert all(s.metaclass == KERNEL_CLASS for s in STEREOTYPES.values())


class TestTagChecking:
    def test_known_tag_correct_type(self):
        STEREOTYPES["Segment"].check_tag("index", 3)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ModelError, match="no tag"):
            STEREOTYPES["Segment"].check_tag("voltage", 1.2)

    def test_wrong_type_rejected(self):
        with pytest.raises(ModelError, match="expects"):
            STEREOTYPES["Segment"].check_tag("index", "three")


class _Fake(StereotypedElement):
    STEREOTYPE = "Segment"


class _Broken(StereotypedElement):
    STEREOTYPE = "NotAStereotype"


class TestStereotypedElement:
    def test_tag_roundtrip(self):
        element = _Fake("seg")
        element.set_tag("index", 2)
        assert element.get_tag("index") == 2

    def test_get_tag_default(self):
        assert _Fake("seg").get_tag("index", 7) == 7

    def test_tag_items_sorted(self):
        element = _Fake("seg")
        element.set_tag("index", 2)
        element.set_tag("frequencyMHz", 91.0)
        assert element.tag_items == (("frequencyMHz", 91.0), ("index", 2))

    def test_rejects_empty_name(self):
        with pytest.raises(ModelError):
            _Fake("")

    def test_rejects_unknown_stereotype(self):
        with pytest.raises(ModelError):
            _Broken("x")

    def test_set_tag_type_checked(self):
        with pytest.raises(ModelError):
            _Fake("seg").set_tag("index", "two")
