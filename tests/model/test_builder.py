"""Fluent platform builder tests."""

import pytest

from repro.errors import ModelError
from repro.model.builder import PlatformBuilder, uniform_platform
from repro.units import Frequency


def test_segments_numbered_in_order():
    platform = (
        PlatformBuilder()
        .segment(frequency_mhz=91)
        .segment(frequency_mhz=98)
        .central_arbiter(frequency_mhz=111)
        .build()
    )
    assert [s.index for s in platform.segments] == [1, 2]
    assert platform.segment(1).frequency.mhz == pytest.approx(91)


def test_explicit_index():
    platform = (
        PlatformBuilder()
        .segment(frequency_mhz=91, index=2)
        .segment(frequency_mhz=98, index=1)
        .central_arbiter(frequency_mhz=111)
        .build()
    )
    assert [s.index for s in platform.segments] == [1, 2]


def test_accepts_frequency_objects():
    platform = (
        PlatformBuilder()
        .segment(frequency_mhz=Frequency.from_mhz(89))
        .central_arbiter(frequency_mhz=111)
        .build()
    )
    assert platform.segment(1).frequency.mhz == pytest.approx(89)


def test_auto_border_units():
    platform = (
        PlatformBuilder()
        .segment(frequency_mhz=91)
        .segment(frequency_mhz=98)
        .segment(frequency_mhz=89)
        .central_arbiter(frequency_mhz=111)
        .auto_border_units()
        .build()
    )
    assert {(b.left, b.right) for b in platform.border_units} == {(1, 2), (2, 3)}


def test_auto_border_units_respects_existing():
    platform = (
        PlatformBuilder()
        .segment(frequency_mhz=91)
        .segment(frequency_mhz=98)
        .border_unit(1, 2, depth=4)
        .central_arbiter(frequency_mhz=111)
        .auto_border_units()
        .build()
    )
    assert len(platform.border_units) == 1
    assert platform.border_unit(1, 2).depth == 4


def test_place_creates_fu():
    platform = (
        PlatformBuilder()
        .segment(frequency_mhz=91)
        .central_arbiter(frequency_mhz=111)
        .place("P0", 1)
        .build()
    )
    assert platform.segment_of_process("P0") == 1


def test_place_all():
    platform = (
        PlatformBuilder()
        .segment(frequency_mhz=91)
        .segment(frequency_mhz=98)
        .central_arbiter(frequency_mhz=111)
        .auto_border_units()
        .place_all({"P0": 1, "P1": 2, "P2": 1})
        .build()
    )
    assert platform.process_placement() == {"P0": 1, "P1": 2, "P2": 1}


def test_place_groups():
    platform = (
        PlatformBuilder()
        .segment(frequency_mhz=91)
        .segment(frequency_mhz=98)
        .central_arbiter(frequency_mhz=111)
        .auto_border_units()
        .place_groups([["P0", "P1"], ["P2"]])
        .build()
    )
    assert platform.process_placement() == {"P0": 1, "P1": 1, "P2": 2}


def test_builder_single_use():
    builder = PlatformBuilder().segment(frequency_mhz=91)
    builder.central_arbiter(frequency_mhz=111)
    builder.build()
    with pytest.raises(ModelError):
        builder.segment(frequency_mhz=98)
    with pytest.raises(ModelError):
        builder.build()


def test_uniform_platform():
    platform = uniform_platform(3, frequency_mhz=100, ca_frequency_mhz=120).build()
    assert platform.segment_count == 3
    assert len(platform.border_units) == 2
    assert platform.central_arbiter.frequency.mhz == pytest.approx(120)


def test_uniform_platform_ca_defaults_to_segment_clock():
    platform = uniform_platform(2, frequency_mhz=80).build()
    assert platform.central_arbiter.frequency.mhz == pytest.approx(80)


def test_uniform_platform_rejects_zero_segments():
    with pytest.raises(ModelError):
        uniform_platform(0)
