"""OCL-style constraint checks, one test per rule breach."""

import pytest

from repro.model.builder import PlatformBuilder
from repro.model.constraints import STRUCTURAL_CONSTRAINTS
from repro.model.elements import (
    BorderUnit,
    CentralArbiter,
    FunctionalUnit,
    Segment,
    SegBusPlatform,
)
from repro.model.validation import validate_platform
from repro.units import Frequency

F = Frequency.from_mhz(100)


def valid_platform():
    builder = (
        PlatformBuilder("SBP", package_size=36)
        .segment(frequency_mhz=91)
        .segment(frequency_mhz=98)
        .central_arbiter(frequency_mhz=111)
        .auto_border_units()
        .place("P0", 1)
        .place("P1", 2)
    )
    platform = builder.build()
    platform.fu_of_process("P0").add_master()
    platform.fu_of_process("P1").add_slave()
    return platform


def diagnostics_of(platform):
    return validate_platform(platform).diagnostics


def test_registry_ids_unique():
    ids = [c.identifier for c in STRUCTURAL_CONSTRAINTS]
    assert len(ids) == len(set(ids))


def test_valid_platform_passes_all():
    report = validate_platform(valid_platform())
    assert report.ok
    assert report.checked == len(STRUCTURAL_CONSTRAINTS)


def test_missing_ca_detected():
    platform = SegBusPlatform()
    seg = Segment(1, F)
    fu = FunctionalUnit("FU_P0", "P0")
    fu.add_master()
    seg.add_fu(fu)
    platform.add_segment(seg)
    assert any("SBP-CA-1" in d for d in diagnostics_of(platform))


def test_no_segments_detected():
    platform = SegBusPlatform()
    platform.set_central_arbiter(CentralArbiter("CA", F))
    assert any("SBP-SEG-1" in d for d in diagnostics_of(platform))


def test_non_contiguous_indices_detected():
    platform = SegBusPlatform()
    platform.set_central_arbiter(CentralArbiter("CA", F))
    seg = Segment(2, F)
    fu = FunctionalUnit("FU_P0", "P0")
    fu.add_slave()
    seg.add_fu(fu)
    platform.add_segment(seg)
    assert any("SBP-SEG-2" in d for d in diagnostics_of(platform))


def test_empty_segment_detected():
    platform = SegBusPlatform()
    platform.set_central_arbiter(CentralArbiter("CA", F))
    platform.add_segment(Segment(1, F))
    assert any("SEG-FU-1" in d for d in diagnostics_of(platform))


def test_missing_bu_detected():
    platform = valid_platform()
    platform.border_units.clear()
    assert any("SBP-BU-1" in d and "missing BU" in d for d in diagnostics_of(platform))


def test_extra_bu_detected():
    platform = valid_platform()
    platform.border_units.append(BorderUnit(2, 3))
    assert any(
        "SBP-BU-1" in d and "does not match" in d for d in diagnostics_of(platform)
    )


def test_fu_without_endpoint_detected():
    platform = valid_platform()
    platform.fu_of_process("P0").masters.clear()
    assert any("FU-EP-1" in d for d in diagnostics_of(platform))


def test_duplicate_mapping_detected():
    platform = valid_platform()
    # bypass Segment.add_fu's own check by appending directly
    stray = FunctionalUnit("FU_P0_dup", "P0")
    stray.add_slave()
    platform.segment(2).fus.append(stray)
    assert any("MAP-1" in d for d in diagnostics_of(platform))


def test_tampered_package_size_detected():
    platform = valid_platform()
    platform.package_size = 0
    assert any("SBP-PKG-1" in d for d in diagnostics_of(platform))


def test_sa_removed_detected():
    platform = valid_platform()
    platform.segment(1).arbiter = None
    assert any("SEG-SA-1" in d for d in diagnostics_of(platform))
