"""Allocation and PSM-mapping tests."""

import pytest

from repro.errors import MappingError
from repro.model.mapping import Allocation, map_application
from repro.psdf.graph import PSDFGraph


@pytest.fixture
def app():
    return PSDFGraph.from_edges(
        [("P0", "P1", 72, 1, 50), ("P1", "P2", 72, 2, 50)]
    )


class TestAllocation:
    def test_from_groups(self):
        alloc = Allocation.from_groups([["P0", "P1"], ["P2"]])
        assert alloc.segment_count == 2
        assert alloc.placement() == {"P0": 1, "P1": 1, "P2": 2}

    def test_from_placement_roundtrip(self):
        placement = {"P0": 1, "P1": 2, "P2": 1}
        alloc = Allocation.from_placement(placement)
        assert alloc.placement() == placement

    def test_from_placement_rejects_empty(self):
        with pytest.raises(MappingError):
            Allocation.from_placement({})

    def test_from_placement_rejects_zero_index(self):
        with pytest.raises(MappingError):
            Allocation.from_placement({"P0": 0})

    def test_duplicate_process_rejected(self):
        alloc = Allocation.from_groups([["P0"], ["P0"]])
        with pytest.raises(MappingError):
            alloc.placement()

    def test_str_uses_paper_notation(self):
        alloc = Allocation.from_groups([["P0", "P1"], ["P2"]])
        assert str(alloc) == "P0 P1 || P2"

    def test_moved(self):
        alloc = Allocation.from_groups([["P0", "P9"], ["P1"], ["P4"]])
        moved = alloc.moved("P9", 3)
        assert moved.placement() == {"P0": 1, "P1": 2, "P4": 3, "P9": 3}
        # original untouched
        assert alloc.placement()["P9"] == 1

    def test_moved_unknown_process(self):
        alloc = Allocation.from_groups([["P0"], ["P1"]])
        with pytest.raises(MappingError):
            alloc.moved("P9", 2)

    def test_moved_bad_target(self):
        alloc = Allocation.from_groups([["P0"], ["P1"]])
        with pytest.raises(MappingError):
            alloc.moved("P0", 5)


class TestMapApplication:
    def test_builds_valid_psm(self, app):
        psm = map_application(
            app,
            Allocation.from_groups([["P0", "P1"], ["P2"]]),
            segment_frequencies_mhz=[91, 98],
            ca_frequency_mhz=111,
            package_size=36,
        )
        assert psm.platform.segment_count == 2
        assert psm.package_size == 36
        assert psm.placement() == {"P0": 1, "P1": 1, "P2": 2}

    def test_masters_and_slaves_by_flow_direction(self, app):
        psm = map_application(
            app,
            Allocation.from_groups([["P0", "P1"], ["P2"]]),
            segment_frequencies_mhz=[91, 98],
            ca_frequency_mhz=111,
        )
        p0 = psm.platform.fu_of_process("P0")
        p1 = psm.platform.fu_of_process("P1")
        p2 = psm.platform.fu_of_process("P2")
        assert p0.masters and not p0.slaves
        assert p1.masters and p1.slaves
        assert p2.slaves and not p2.masters

    def test_frequency_count_mismatch(self, app):
        with pytest.raises(MappingError):
            map_application(
                app,
                Allocation.from_groups([["P0", "P1"], ["P2"]]),
                segment_frequencies_mhz=[91],
                ca_frequency_mhz=111,
            )

    def test_unallocated_process_rejected(self, app):
        with pytest.raises(MappingError, match="P2"):
            map_application(
                app,
                Allocation.from_groups([["P0", "P1"]]),
                segment_frequencies_mhz=[91],
                ca_frequency_mhz=111,
            )

    def test_unknown_process_in_allocation_rejected(self, app):
        with pytest.raises(MappingError, match="P9"):
            map_application(
                app,
                Allocation.from_groups([["P0", "P1", "P9"], ["P2"]]),
                segment_frequencies_mhz=[91, 98],
                ca_frequency_mhz=111,
            )

    def test_empty_segment_fails_validation(self, app):
        with pytest.raises(Exception, match="SEG-FU-1"):
            map_application(
                app,
                Allocation.from_groups([["P0", "P1", "P2"], []]),
                segment_frequencies_mhz=[91, 98],
                ca_frequency_mhz=111,
            )

    def test_validate_false_skips_checks(self, app):
        psm = map_application(
            app,
            Allocation.from_groups([["P0", "P1", "P2"], []]),
            segment_frequencies_mhz=[91, 98],
            ca_frequency_mhz=111,
            validate=False,
        )
        assert psm.platform.segment_count == 2
