"""Platform diff tests."""

import pytest

from repro.apps.mp3 import paper_allocation, paper_platform
from repro.model.compare import diff_platforms


class TestIdentical:
    def test_same_platform_is_identical(self, platform_3seg):
        diff = diff_platforms(platform_3seg, platform_3seg)
        assert diff.identical
        assert diff.format() == "(identical configurations)"

    def test_fresh_builds_identical(self):
        assert diff_platforms(paper_platform(3), paper_platform(3)).identical


class TestParameterChanges:
    def test_package_size(self):
        diff = diff_platforms(paper_platform(3), paper_platform(3, package_size=18))
        changes = diff.of_kind("package_size")
        assert len(changes) == 1
        assert (changes[0].before, changes[0].after) == ("36", "18")

    def test_segment_count_and_structure(self):
        diff = diff_platforms(paper_platform(3), paper_platform(2))
        assert diff.of_kind("segment_count")
        # segment 3 disappears; many processes move
        removed = [c for c in diff.of_kind("segment") if c.after is None]
        assert removed and removed[0].subject == "Segment3"

    def test_placement_move(self):
        moved = paper_allocation(3).moved("P9", 3)
        diff = diff_platforms(
            paper_platform(3), paper_platform(3, allocation=moved)
        )
        assert diff.moved_processes() == ("P9",)
        change = diff.of_kind("placement")[0]
        assert change.before == "segment 1"
        assert change.after == "segment 3"

    def test_policy_change(self, mp3_graph):
        from repro.model.mapping import map_application

        a = paper_platform(3)
        psm = map_application(
            mp3_graph, paper_allocation(3),
            segment_frequencies_mhz=[91, 98, 89], ca_frequency_mhz=111,
        )
        b = psm.platform
        from repro.model.elements import SegmentArbiter

        b.segment(2).arbiter = SegmentArbiter("SA2", policy="fixed-priority")
        diff = diff_platforms(a, b)
        policy = diff.of_kind("sa_policy")
        assert len(policy) == 1
        assert policy[0].subject == "SA2"

    def test_clock_change(self, mp3_graph):
        from repro.model.mapping import map_application

        psm = map_application(
            mp3_graph, paper_allocation(3),
            segment_frequencies_mhz=[91, 98, 120], ca_frequency_mhz=133,
        )
        diff = diff_platforms(paper_platform(3), psm.platform)
        assert any(
            c.subject == "Segment3" and c.after == "120MHz"
            for c in diff.of_kind("segment_clock")
        )
        assert diff.of_kind("ca_clock")

    def test_format_readable(self):
        diff = diff_platforms(paper_platform(3), paper_platform(3, package_size=18))
        assert "package_size platform: 36 -> 18" in diff.format()
