"""Validation report and application cross-check tests."""

import pytest

from repro.errors import ConstraintViolation
from repro.model.builder import PlatformBuilder
from repro.model.validation import validate_platform, validated_placement
from repro.psdf.graph import PSDFGraph


@pytest.fixture
def app():
    return PSDFGraph.from_edges([("P0", "P1", 72, 1, 50)])


def platform_for(app, place_all=True):
    builder = (
        PlatformBuilder()
        .segment(frequency_mhz=91)
        .segment(frequency_mhz=98)
        .central_arbiter(frequency_mhz=111)
        .auto_border_units()
        .place("P0", 1)
    )
    if place_all:
        builder.place("P1", 2)
    platform = builder.build()
    platform.fu_of_process("P0").add_master()
    if place_all:
        platform.fu_of_process("P1").add_slave()
    return platform


def test_ok_report(app):
    report = validate_platform(platform_for(app), app)
    assert report.ok
    assert str(report).startswith("ValidationReport")


def test_raise_if_invalid_noop_when_ok(app):
    validate_platform(platform_for(app), app).raise_if_invalid()


def test_unmapped_process_detected(app):
    report = validate_platform(platform_for(app, place_all=False), app)
    assert any("MAP-2" in d and "'P1'" in d for d in report.diagnostics)


def test_stray_process_detected(app):
    platform = platform_for(app)
    from repro.model.elements import FunctionalUnit

    stray = FunctionalUnit("FU_P9", "P9")
    stray.add_slave()
    platform.segment(1).add_fu(stray)
    report = validate_platform(platform, app)
    assert any("MAP-3" in d and "'P9'" in d for d in report.diagnostics)


def test_raise_if_invalid_raises(app):
    report = validate_platform(platform_for(app, place_all=False), app)
    with pytest.raises(ConstraintViolation) as exc_info:
        report.raise_if_invalid()
    assert exc_info.value.diagnostics == report.diagnostics


def test_validated_placement_returns_mapping(app):
    report, placement = validated_placement(platform_for(app), app)
    assert report.ok
    assert placement == {"P0": 1, "P1": 2}


def test_validated_placement_raises_on_bad_model(app):
    with pytest.raises(ConstraintViolation):
        validated_placement(platform_for(app, place_all=False), app)


def test_paper_platform_validates(mp3_graph, platform_3seg):
    report = validate_platform(platform_3seg, mp3_graph)
    assert report.ok, report.diagnostics


class TestReportSerialization:
    """The machine-readable shape shared with the lint engine."""

    def test_clean_report_to_dict(self, app):
        data = validate_platform(platform_for(app), app).to_dict()
        assert data["ok"] is True
        assert data["findings"] == []
        assert data["counts"] == {"error": 0, "warning": 0, "info": 0}
        assert data["checked"] > 0

    def test_violation_findings_shape(self, app):
        report = validate_platform(platform_for(app, place_all=False), app)
        data = report.to_dict()
        assert data["ok"] is False
        assert data["counts"]["error"] == len(data["findings"])
        rules = {f["rule"] for f in data["findings"]}
        assert rules == {"SEG-FU-1", "MAP-2"}
        unmapped = [f for f in data["findings"] if f["rule"] == "MAP-2"][0]
        assert unmapped["severity"] == "error"
        assert unmapped["location"]["element"] == "P1"

    def test_to_json_round_trips(self, app):
        import json

        report = validate_platform(platform_for(app, place_all=False), app)
        assert json.loads(report.to_json()) == report.to_dict()

    def test_add_dedups_identical_records(self, app):
        from repro.model.validation import ValidationRecord

        report = validate_platform(platform_for(app), app)
        record = ValidationRecord(rule_id="X-1", message="m", element="P0")
        assert report.add(record)
        assert not report.add(
            ValidationRecord(rule_id="X-1", message="m", element="P0")
        )
        assert len(report.records) == 1

    def test_messages_name_offending_element(self, app):
        report = validate_platform(platform_for(app, place_all=False), app)
        assert not report.ok
        for record in report.records:
            assert record.element is not None
            assert record.element in record.message
