"""Platform element classes: composition rules and lookups."""

import pytest

from repro.errors import ModelError
from repro.model.elements import (
    BorderUnit,
    CentralArbiter,
    FunctionalUnit,
    Segment,
    SegmentArbiter,
    SegBusPlatform,
)
from repro.units import Frequency

F91 = Frequency.from_mhz(91)
F111 = Frequency.from_mhz(111)


class TestFunctionalUnit:
    def test_requires_process(self):
        with pytest.raises(ModelError):
            FunctionalUnit("FU_X", process="")

    def test_add_master_names(self):
        fu = FunctionalUnit("FU_P0", process="P0")
        m0 = fu.add_master()
        m1 = fu.add_master()
        assert m0.name != m1.name
        assert len(fu.masters) == 2

    def test_add_slave(self):
        fu = FunctionalUnit("FU_P0", process="P0")
        fu.add_slave("custom")
        assert fu.slaves[0].name == "custom"

    def test_library_tag(self):
        fu = FunctionalUnit("FU_P0", process="P0", library="dsp")
        assert fu.get_tag("library") == "dsp"


class TestSegmentArbiter:
    def test_default_policy(self):
        assert SegmentArbiter("SA1").policy == "round-robin"

    def test_fixed_priority(self):
        assert SegmentArbiter("SA1", policy="fixed-priority").policy == "fixed-priority"

    def test_rejects_unknown_policy(self):
        with pytest.raises(ModelError):
            SegmentArbiter("SA1", policy="random")


class TestBorderUnit:
    def test_default_name(self):
        assert BorderUnit(1, 2).name == "BU12"

    def test_bridges(self):
        bu = BorderUnit(2, 3)
        assert bu.bridges(2, 3)
        assert bu.bridges(3, 2)
        assert not bu.bridges(1, 2)

    def test_rejects_non_adjacent(self):
        with pytest.raises(ModelError):
            BorderUnit(1, 3)

    def test_rejects_bad_depth(self):
        with pytest.raises(ModelError):
            BorderUnit(1, 2, depth=0)


class TestSegment:
    def test_gets_arbiter(self):
        seg = Segment(1, F91)
        assert seg.arbiter.name == "SA1"

    def test_rejects_zero_index(self):
        with pytest.raises(ModelError):
            Segment(0, F91)

    def test_add_fu(self):
        seg = Segment(1, F91)
        seg.add_fu(FunctionalUnit("FU_P0", process="P0"))
        assert seg.processes == ("P0",)

    def test_rejects_duplicate_process(self):
        seg = Segment(1, F91)
        seg.add_fu(FunctionalUnit("FU_P0", process="P0"))
        with pytest.raises(ModelError):
            seg.add_fu(FunctionalUnit("FU_P0b", process="P0"))


class TestPlatform:
    def build(self):
        platform = SegBusPlatform("SBP", package_size=36)
        for i in (1, 2):
            seg = Segment(i, F91)
            seg.add_fu(FunctionalUnit(f"FU_P{i}", process=f"P{i}"))
            platform.add_segment(seg)
        platform.add_border_unit(BorderUnit(1, 2))
        platform.set_central_arbiter(CentralArbiter("CA", F111))
        return platform

    def test_segment_lookup(self):
        assert self.build().segment(2).index == 2

    def test_segment_lookup_missing(self):
        with pytest.raises(ModelError):
            self.build().segment(9)

    def test_border_unit_lookup(self):
        assert self.build().border_unit(1, 2).name == "BU12"

    def test_border_unit_missing(self):
        with pytest.raises(ModelError):
            self.build().border_unit(2, 3)

    def test_rejects_duplicate_segment_index(self):
        platform = self.build()
        with pytest.raises(ModelError):
            platform.add_segment(Segment(1, F91))

    def test_rejects_duplicate_bu(self):
        platform = self.build()
        with pytest.raises(ModelError):
            platform.add_border_unit(BorderUnit(1, 2))

    def test_rejects_second_ca(self):
        platform = self.build()
        with pytest.raises(ModelError, match="exactly one CA"):
            platform.set_central_arbiter(CentralArbiter("CA2", F111))

    def test_segment_of_process(self):
        assert self.build().segment_of_process("P2") == 2

    def test_segment_of_unmapped_process(self):
        with pytest.raises(ModelError):
            self.build().segment_of_process("P9")

    def test_process_placement(self):
        assert self.build().process_placement() == {"P1": 1, "P2": 2}

    def test_fu_of_process(self):
        assert self.build().fu_of_process("P1").process == "P1"

    def test_rejects_bad_package_size(self):
        with pytest.raises(ModelError):
            SegBusPlatform(package_size=0)

    def test_segments_sorted_by_index(self):
        platform = SegBusPlatform()
        platform.add_segment(Segment(2, F91))
        platform.add_segment(Segment(1, F91))
        assert [s.index for s in platform.segments] == [1, 2]
