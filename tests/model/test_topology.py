"""Linear topology routing tests."""

import pytest

from repro.errors import ModelError, RoutingError
from repro.model.topology import LinearTopology


class TestConstruction:
    def test_single_segment_has_no_bus(self):
        assert LinearTopology(1).bu_pairs == ()

    def test_bu_pairs(self):
        assert LinearTopology(4).bu_pairs == ((1, 2), (2, 3), (3, 4))

    def test_rejects_zero_segments(self):
        with pytest.raises(ModelError):
            LinearTopology(0)


class TestRouting:
    topo = LinearTopology(4)

    def test_hops(self):
        assert self.topo.hops(1, 4) == 3
        assert self.topo.hops(3, 3) == 0
        assert self.topo.hops(4, 2) == 2

    def test_path_rightward(self):
        assert self.topo.path(1, 3) == (1, 2, 3)

    def test_path_leftward(self):
        assert self.topo.path(4, 2) == (4, 3, 2)

    def test_path_local(self):
        assert self.topo.path(2, 2) == (2,)

    def test_bus_on_path_rightward(self):
        assert self.topo.bus_on_path(1, 3) == ((1, 2), (2, 3))

    def test_bus_on_path_leftward(self):
        assert self.topo.bus_on_path(3, 1) == ((2, 3), (1, 2))

    def test_bus_on_path_local(self):
        assert self.topo.bus_on_path(2, 2) == ()

    def test_direction(self):
        assert self.topo.direction(1, 3) == 1
        assert self.topo.direction(3, 1) == -1
        assert self.topo.direction(2, 2) == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(RoutingError):
            self.topo.path(0, 2)
        with pytest.raises(RoutingError):
            self.topo.hops(1, 5)

    def test_path_endpoints_consistent_with_hops(self):
        for a in range(1, 5):
            for b in range(1, 5):
                path = self.topo.path(a, b)
                assert len(path) - 1 == self.topo.hops(a, b)
                assert path[0] == a and path[-1] == b
