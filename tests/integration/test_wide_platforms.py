"""Wide-platform integration: many segments, double-digit BU names."""

import pytest

from repro.emulator.emulator import emulate
from repro.model.builder import PlatformBuilder
from repro.model.validation import validate_platform
from repro.psdf.generators import chain_psdf
from repro.xmlio.psm_parser import parse_psm_xml
from repro.xmlio.psm_writer import psm_to_xml


def wide_platform(segments, application):
    builder = PlatformBuilder("SBP", package_size=36)
    for i in range(segments):
        builder.segment(frequency_mhz=90 + i)
    builder.central_arbiter(frequency_mhz=120)
    builder.auto_border_units()
    names = list(application.process_names)
    for i, name in enumerate(names):
        builder.place(name, (i % segments) + 1)
    platform = builder.build()
    for name in names:
        fu = platform.fu_of_process(name)
        if application.outgoing(name):
            fu.add_master()
        if application.incoming(name):
            fu.add_slave()
    return platform


@pytest.fixture(scope="module")
def app12():
    return chain_psdf(12, items_per_stage=108, ticks_per_package=60)


class TestTwelveSegments:
    def test_platform_validates(self, app12):
        platform = wide_platform(12, app12)
        report = validate_platform(platform, app12)
        assert report.ok, report.diagnostics

    def test_double_digit_bu_names_roundtrip(self, app12):
        platform = wide_platform(12, app12)
        parsed = parse_psm_xml(psm_to_xml(platform))
        assert (9, 10) in parsed.bu_pairs
        assert (10, 11) in parsed.bu_pairs
        assert (11, 12) in parsed.bu_pairs
        assert parsed.segment_count == 12

    def test_emulates_clean(self, app12):
        platform = wide_platform(12, app12)
        report = emulate(app12, platform)
        assert report.execution_time_us > 0
        # the chain snakes across all twelve segments: every BU carries traffic
        assert all(b.input_packages > 0 for b in report.bu_results)
        assert len(report.bu_results) == 11

    def test_long_path_transfer(self, app12):
        # place the chain's ends at the extremes: a 11-hop circuit
        from repro.psdf.graph import PSDFGraph

        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 40)])
        builder = PlatformBuilder("SBP", package_size=36)
        for i in range(12):
            builder.segment(frequency_mhz=100)
        builder.central_arbiter(frequency_mhz=120)
        builder.auto_border_units()
        builder.place("A", 1).place("B", 12)
        platform = builder.build()
        platform.fu_of_process("A").add_master()
        platform.fu_of_process("B").add_slave()
        report = emulate(graph, platform)
        assert report.bu(11, 12).transferred_to_right == 1
        assert report.bu(1, 2).received_from_left == 1
