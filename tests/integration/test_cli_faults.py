"""The ``segbus faults`` subcommand and the CLI's error handling."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.kind == "package_corruption"
        assert args.seeds == 3
        assert args.on_exhaustion == "degrade"

    def test_debug_flag_is_global(self):
        args = build_parser().parse_args(["--debug", "faults"])
        assert args.debug is True

    def test_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--kind", "gremlins"])


class TestFaultsCommand:
    def test_sweep_prints_table(self, capsys):
        rc = main(["faults", "--rates", "0.0", "0.02", "--seeds", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "package_corruption sweep" in out
        assert "| rate |" in out
        assert out.count("\n| 0.0") >= 1

    def test_writes_csv_and_plan_xml(self, tmp_path, capsys):
        csv_path = tmp_path / "curve.csv"
        xml_path = tmp_path / "plan.xml"
        rc = main(
            [
                "faults",
                "--rates",
                "0.0",
                "0.02",
                "--seeds",
                "1",
                "--csv",
                str(csv_path),
                "--plan-xml",
                str(xml_path),
            ]
        )
        assert rc == 0
        assert csv_path.read_text(encoding="utf-8").startswith("rate,")
        from repro.xmlio.faults_xml import parse_fault_plan_xml

        plan = parse_fault_plan_xml(xml_path.read_text(encoding="utf-8"))
        assert plan.records[0].rate == 0.02

    def test_rejects_unknown_app(self, capsys):
        rc = main(["faults", "--app", "doom"])
        assert rc == 2


class TestErrorHandling:
    def test_segbus_error_exits_2_with_one_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<not-a-scheme/>", encoding="utf-8")
        rc = main(["emulate", str(bad), str(bad)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("segbus: error:")
        assert len(err.strip().splitlines()) == 1

    def test_missing_file_exits_2(self, tmp_path, capsys):
        rc = main(["emulate", str(tmp_path / "a.xml"), str(tmp_path / "b.xml")])
        assert rc == 2
        assert "segbus: error:" in capsys.readouterr().err

    def test_debug_reraises(self, tmp_path):
        bad = tmp_path / "bad.xml"
        bad.write_text("<not-a-scheme/>", encoding="utf-8")
        from repro.errors import XMLFormatError

        with pytest.raises(XMLFormatError):
            main(["--debug", "emulate", str(bad), str(bad)])
