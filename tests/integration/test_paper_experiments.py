"""Integration tests: the paper's section-4 experiments as shape criteria.

These encode the pass/fail conditions of DESIGN.md section 4: exact package
accounting, published-checkpoint proximity, and every directional trend the
paper reports.  They run the full flow (model -> XML -> emulator -> report).
"""

import pytest

from repro.apps.mp3 import (
    PAPER_3SEG_RESULTS,
    mp3_decoder_psdf,
    paper_allocation,
    paper_platform,
)
from repro.emulator.emulator import emulate
from repro.reference.accuracy import compare_estimate_to_reference


class TestE3ResultsListing:
    """The 3-segment, s=36 results listing."""

    def test_bu12_package_accounting_exact(self, report_3seg):
        bu12 = report_3seg.bu(1, 2)
        assert bu12.input_packages == 32
        assert bu12.output_packages == 32
        assert bu12.received_from_left == 32
        assert bu12.transferred_to_right == 32
        assert bu12.received_from_right == 0
        assert bu12.transferred_to_left == 0

    def test_bu23_package_accounting_exact(self, report_3seg):
        bu23 = report_3seg.bu(2, 3)
        assert bu23.input_packages == 2
        assert bu23.output_packages == 2
        assert bu23.received_from_left == 1
        assert bu23.received_from_right == 1
        assert bu23.transferred_to_left == 1
        assert bu23.transferred_to_right == 1

    def test_bu_tcts_exact(self, report_3seg):
        assert report_3seg.bu(1, 2).tct == PAPER_3SEG_RESULTS["bu12_tct"]  # 2336
        assert report_3seg.bu(2, 3).tct == PAPER_3SEG_RESULTS["bu23_tct"]  # 146

    def test_inter_segment_requests_exact(self, report_3seg):
        assert report_3seg.sa(1).inter_requests == 32
        assert report_3seg.sa(2).inter_requests == 0
        assert report_3seg.sa(3).inter_requests == 1
        assert report_3seg.ca_requests == 33

    def test_segment_packet_directions_exact(self, report_3seg):
        assert report_3seg.sa(1).packets_to_right == 32
        assert report_3seg.sa(1).packets_to_left == 0
        assert report_3seg.sa(2).packets_to_right == 0
        assert report_3seg.sa(2).packets_to_left == 0
        assert report_3seg.sa(3).packets_to_left == 1
        assert report_3seg.sa(3).packets_to_right == 0

    def test_sa3_has_no_local_traffic(self, report_3seg):
        # segment 3 hosts only P4: zero intra-segment requests (paper: 0)
        assert report_3seg.sa(3).intra_requests == 0

    def test_intra_requests_exceed_package_counts(self, report_3seg):
        # paper: 124 observed requests for 95 local packages on SA1,
        # 137 for 96 on SA2 — contention inflates observations
        assert report_3seg.sa(1).intra_requests >= 95
        assert report_3seg.sa(2).intra_requests >= 96

    def test_execution_time_within_15_percent_of_paper(self, report_3seg):
        paper = PAPER_3SEG_RESULTS["execution_time_us"]
        assert abs(report_3seg.execution_time_us - paper) / paper < 0.15

    def test_ca_dominates_execution_time(self, report_3seg):
        # the paper's max() resolves to the CA term
        assert report_3seg.execution_time_ps == report_3seg.ca_time_ps

    def test_ca_tct_within_15_percent(self, report_3seg):
        paper = PAPER_3SEG_RESULTS["ca_tct"]
        assert abs(report_3seg.ca_tct - paper) / paper < 0.15

    def test_sa2_busiest_arbiter(self, report_3seg):
        # paper: SA2's execution time (469.7 us) exceeds SA1 (382) and SA3 (403)
        times = {i: report_3seg.sa(i).execution_time_ps for i in (1, 2, 3)}
        assert times[2] > times[1]
        assert times[2] > times[3]


class TestE4Timeline:
    """Fig. 10 checkpoints."""

    def test_p0_start_exact(self, report_3seg):
        assert report_3seg.timeline.entry("P0").start_ps == 10_989

    def test_p0_end_close(self, report_3seg):
        paper = PAPER_3SEG_RESULTS["p0_end_ps"]
        measured = report_3seg.timeline.entry("P0").end_ps
        assert abs(measured - paper) / paper < 0.01

    def test_p8_end_close(self, report_3seg):
        paper = PAPER_3SEG_RESULTS["p8_end_ps"]
        measured = report_3seg.timeline.entry("P8").end_ps
        assert abs(measured - paper) / paper < 0.01

    def test_p7_start_close(self, report_3seg):
        paper = PAPER_3SEG_RESULTS["p7_start_ps"]
        measured = report_3seg.timeline.entry("P7").start_ps
        assert abs(measured - paper) / paper < 0.05

    def test_p14_last_package_close(self, report_3seg):
        paper = PAPER_3SEG_RESULTS["p14_last_package_ps"]
        measured = report_3seg.timeline.entry("P14").last_input_fs // 1000
        assert abs(measured - paper) / paper < 0.05

    def test_finishing_order_matches_pipeline(self, report_3seg):
        order = report_3seg.timeline.finishing_order()
        pos = {name: i for i, name in enumerate(order)}
        assert pos["P0"] < pos["P8"] < pos["P9"] < pos["P3"]
        assert pos["P3"] < pos["P5"] < pos["P6"] < pos["P7"]


class TestE6Accuracy:
    """The three estimated-vs-actual experiments."""

    @pytest.fixture(scope="class")
    def results(self, mp3_graph):
        out = {}
        for label, size, alloc in (
            ("s36", 36, None),
            ("s18", 18, None),
            ("p9_moved", 36, paper_allocation(3).moved("P9", 3)),
        ):
            platform = paper_platform(3, package_size=size, allocation=alloc)
            out[label] = compare_estimate_to_reference(
                mp3_graph, platform, label=label
            )
        return out

    def test_estimates_below_actuals(self, results):
        for result in results.values():
            assert result.estimated_us < result.actual_us

    def test_accuracies_in_published_band(self, results):
        # paper: 95 %, ~93 %, just below 95 %
        assert 0.93 <= results["s36"].accuracy <= 0.97
        assert 0.90 <= results["s18"].accuracy <= 0.95
        assert 0.93 <= results["p9_moved"].accuracy <= 0.97

    def test_smaller_package_size_hurts_accuracy(self, results):
        assert results["s18"].accuracy < results["s36"].accuracy

    def test_smaller_packages_slower(self, results):
        # paper: 560.16 vs 489.79 estimated (+14 %)
        ratio = results["s18"].estimated_us / results["s36"].estimated_us
        assert 1.05 < ratio < 1.30

    def test_moving_p9_hurts_both_estimate_and_actual(self, results):
        assert results["p9_moved"].estimated_us > results["s36"].estimated_us
        assert results["p9_moved"].actual_us > results["s36"].actual_us


class TestConfigurationComparison:
    """Fig. 9's three configurations all emulate cleanly."""

    @pytest.mark.parametrize("segments", [1, 2, 3])
    def test_all_paper_configurations_run(self, mp3_graph, segments):
        report = emulate(mp3_graph, paper_platform(segments))
        assert report.segment_count == segments
        assert report.execution_time_us > 0
        assert len(report.bu_results) == segments - 1

    def test_single_segment_has_no_inter_traffic(self, mp3_graph):
        report = emulate(mp3_graph, paper_platform(1))
        assert report.sa(1).inter_requests == 0
        assert report.ca_requests == 0

    def test_two_segment_crossings(self, mp3_graph):
        # Fig. 9 two-segment split: P3's four flows cross, P0/P8's stay
        report = emulate(mp3_graph, paper_platform(2))
        bu12 = report.bu(1, 2)
        # seg2={P0..P3,P8,P9}: crossing flows P3->P4(1), P3->P5(15),
        # P3->P10(1), P3->P11(15) = 32 packages seg2 -> seg1
        assert bu12.received_from_right == 32
        assert bu12.transferred_to_left == 32
