"""CLI tests (argparse wiring and end-to-end subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.segments == 3
        assert args.package_size == 36


class TestGenerate:
    def test_writes_schemes(self, tmp_path, capsys):
        rc = main(["generate", "--output-dir", str(tmp_path / "out")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "psdf.xml" in out and "psm.xml" in out
        assert (tmp_path / "out" / "psdf.xml").exists()

    def test_rejects_non_mp3_app(self, tmp_path, capsys):
        rc = main(
            ["generate", "--app", "chain4", "--output-dir", str(tmp_path)]
        )
        assert rc == 2


class TestEmulate:
    def test_emulates_generated_schemes(self, tmp_path, capsys):
        main(["generate", "--output-dir", str(tmp_path)])
        capsys.readouterr()
        rc = main(
            ["emulate", str(tmp_path / "psdf.xml"), str(tmp_path / "psm.xml")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "CA TCT =" in out
        assert "Total execution time" in out


class TestAccuracy:
    def test_prints_accuracy_row(self, capsys):
        rc = main(["accuracy", "--segments", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "estimated" in out and "accuracy" in out


class TestExplore:
    def test_ranks_configurations(self, capsys):
        rc = main(
            [
                "explore",
                "--segment-counts", "2",
                "--package-sizes", "36",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "placetool" in out

    def test_explore_synthetic_workload(self, capsys):
        rc = main(
            [
                "explore",
                "--app", "chain4",
                "--segment-counts", "2",
                "--package-sizes", "36",
            ]
        )
        assert rc == 0
        assert "placetool" in capsys.readouterr().out
