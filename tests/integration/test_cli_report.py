"""CLI report subcommand test."""

from repro.cli import main


def test_report_writes_markdown(capsys, tmp_path):
    target = tmp_path / "repro.md"
    rc = main(["report", "--output", str(target)])
    assert rc == 0
    assert "wrote" in capsys.readouterr().out
    text = target.read_text()
    assert "# SegBus reproduction report" in text
    assert "| BU12 TCT | 2336 | 2336 |" in text
