"""Acceptance tests for ``segbus lint`` and ``segbus emulate --strict``.

The four breakage scenarios the issue pins down must each exit 2 with a
stable rule id: a PSM whose segment lost its arbiter (SB405), a PSDF with
a transfer-order inversion (SB208), a statically deadlocked PSDF (SB207),
and a fault plan targeting a nonexistent element (SB303).
"""

import json
import re
from pathlib import Path

import pytest

from repro.apps.mp3 import PAPER_PACKAGE_SIZE, mp3_decoder_psdf, paper_platform
from repro.cli import main
from repro.errors import LintError
from repro.faults.model import FaultPlan, FaultRecord
from repro.xmlio.faults_xml import fault_plan_to_xml
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_writer import psm_to_xml
from repro.xmlio.schema_writer import ComplexType, SchemaDocument

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def clean_files(tmp_path):
    psdf = tmp_path / "psdf.xml"
    psm = tmp_path / "psm.xml"
    psdf.write_text(psdf_to_xml(mp3_decoder_psdf(), PAPER_PACKAGE_SIZE))
    psm.write_text(psm_to_xml(paper_platform(3)))
    return psdf, psm


def psdf_scheme(name, processes, transfers):
    """Hand-build a PSDF scheme in the writer's dialect.

    ``processes`` maps process name -> stereotype; ``transfers`` maps
    source name -> list of ``Target_D_T_C`` element names.  Bypasses
    PSDFGraph, which would reject the broken graphs these tests need.
    """
    doc = SchemaDocument()
    header = ComplexType(name=name)
    for pname, stereotype in processes.items():
        header.add(pname, stereotype)
    doc.add_complex_type(header)
    doc.add_top_level(name.lower(), name)
    for pname in processes:
        ctype = ComplexType(name=pname)
        for element_name in transfers.get(pname, []):
            ctype.add(element_name, "Transfer")
        doc.add_complex_type(ctype)
    return doc.to_xml()


def deadlock_psdf():
    """Three ProcessNodes feeding each other in a cycle: nothing can fire."""
    return psdf_scheme(
        "Loop",
        {"A": "ProcessNode", "B": "ProcessNode", "C": "ProcessNode"},
        {"A": ["B_36_1_50"], "B": ["C_36_2_50"], "C": ["A_36_3_50"]},
    )


def inversion_psdf():
    """P1 transmits at T=1 but only receives its input at T=2."""
    return psdf_scheme(
        "Chain",
        {"P0": "InitialNode", "P1": "ProcessNode", "P2": "FinalNode"},
        {"P0": ["P1_36_2_50"], "P1": ["P2_36_1_50"]},
    )


def lint_output(capsys):
    return capsys.readouterr().out


class TestCleanModel:
    def test_clean_mp3_exits_zero(self, clean_files, capsys):
        psdf, psm = clean_files
        rc = main(["lint", str(psdf), str(psm)])
        assert rc == 0
        assert "clean" in lint_output(capsys)

    def test_example_models_are_clean(self, capsys):
        models = sorted(str(p) for p in (REPO_ROOT / "examples" / "models").glob("*.xml"))
        assert len(models) == 4
        rc = main(["lint", *models])
        assert rc == 0


class TestBreakageScenarios:
    def test_missing_arbiter_is_sb405(self, clean_files, capsys):
        psdf, psm = clean_files
        text = psm.read_text()
        stripped = re.sub(
            r'\s*<xs:element name="arbiter" type="SA1" />', "", text
        )
        assert stripped != text
        psm.write_text(stripped)
        rc = main(["lint", str(psdf), str(psm)])
        assert rc == 2
        assert "SB405" in lint_output(capsys)

    def test_order_inversion_is_sb208(self, tmp_path, capsys):
        bad = tmp_path / "inversion.xml"
        bad.write_text(inversion_psdf())
        rc = main(["lint", str(bad)])
        assert rc == 2
        assert "SB208" in lint_output(capsys)

    def test_static_deadlock_is_sb207(self, tmp_path, capsys):
        bad = tmp_path / "deadlock.xml"
        bad.write_text(deadlock_psdf())
        rc = main(["lint", str(bad)])
        assert rc == 2
        out = lint_output(capsys)
        assert "SB207" in out
        assert "statically deadlocked" in out

    def test_bad_fault_site_is_sb303(self, clean_files, tmp_path, capsys):
        psdf, psm = clean_files
        plan = FaultPlan(
            seed=1,
            records=(
                FaultRecord(site="fu:NOPE", kind="fu_stall", rate=0.1, ticks=5),
            ),
        )
        faults = tmp_path / "faults.xml"
        faults.write_text(fault_plan_to_xml(plan))
        rc = main(["lint", str(psdf), str(psm), str(faults)])
        assert rc == 2
        assert "SB303" in lint_output(capsys)


class TestOutputFormats:
    def test_json(self, tmp_path, capsys):
        bad = tmp_path / "deadlock.xml"
        bad.write_text(deadlock_psdf())
        rc = main(["lint", "--format", "json", str(bad)])
        assert rc == 2
        data = json.loads(lint_output(capsys))
        assert data["exit_code"] == 2
        assert any(f["rule"] == "SB207" for f in data["findings"])

    def test_sarif(self, tmp_path, capsys):
        bad = tmp_path / "deadlock.xml"
        bad.write_text(deadlock_psdf())
        rc = main(["lint", "--format", "sarif", str(bad)])
        assert rc == 2
        sarif = json.loads(lint_output(capsys))
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "segbus-lint"
        assert any(r["ruleId"] == "SB207" for r in run["results"])
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "SB207" in rule_ids

    def test_disable_downgrades_exit(self, tmp_path, capsys):
        bad = tmp_path / "deadlock.xml"
        bad.write_text(deadlock_psdf())
        rc = main(["lint", str(bad), "--disable", "SB207", "SB208"])
        assert rc == 0

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = lint_output(capsys)
        for rule_id in ("SB101", "SB207", "SB303", "SB405", "SB999"):
            assert rule_id in out

    def test_no_paths_is_usage_error(self, capsys):
        rc = main(["lint"])
        assert rc == 2


class TestEmulateStrict:
    def test_strict_clean_model_emulates(self, clean_files, capsys):
        psdf, psm = clean_files
        rc = main(["emulate", "--strict", str(psdf), str(psm)])
        assert rc == 0

    def test_strict_refuses_bad_fault_plan(self, clean_files):
        from repro.emulator.emulator import SegBusEmulator

        psdf, psm = clean_files
        plan = FaultPlan(
            seed=1,
            records=(
                FaultRecord(site="fu:NOPE", kind="fu_stall", rate=0.1, ticks=5),
            ),
        )
        emulator = SegBusEmulator.from_files(psdf, psm, fault_plan=plan)
        with pytest.raises(LintError) as excinfo:
            emulator.run(strict=True)
        assert "SB303" in str(excinfo.value)
        assert excinfo.value.report is not None
        assert excinfo.value.report.exit_code == 2

    def test_lint_method_is_clean_for_paper_model(self, clean_files):
        from repro.emulator.emulator import SegBusEmulator

        psdf, psm = clean_files
        emulator = SegBusEmulator.from_files(psdf, psm)
        report = emulator.lint()
        assert report.ok
        # non-strict run is unaffected by lint state
        assert emulator.run().execution_time_us > 0
