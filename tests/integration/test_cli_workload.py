"""CLI ``--workload``: named scenarios on emulate and estimate."""

from repro.cli import main


class TestEmulateWorkload:
    def test_multimode_scenario_prints_phase_listing(self, capsys):
        rc = main(["emulate", "--workload", "mp3_jpeg_multimode"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Multi-mode application: mp3_jpeg_multimode" in out
        assert "mp3" in out and "jpeg" in out
        assert "Transition total:" in out
        assert "Total execution time:" in out

    def test_single_mode_scenario_prints_ordinary_listing(self, capsys):
        rc = main(["emulate", "--workload", "bursty"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Total execution time:" in out

    def test_engine_flag_applies(self, capsys):
        rc = main(
            ["emulate", "--workload", "mp3_jpeg_multimode", "--engine", "fast"]
        )
        assert rc == 0
        assert "engine: fast" in capsys.readouterr().out


class TestEstimateWorkload:
    def test_multimode_breakdown(self, capsys):
        rc = main(["estimate", "--workload", "mp3_jpeg_multimode"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "analytic lower bound:" in out
        assert "switch(es)" in out
        assert "expected TCT:" in out
        assert "emulated TCT" not in out

    def test_multimode_emulate_reports_signed_error(self, capsys):
        rc = main(
            ["estimate", "--workload", "mp3_jpeg_multimode", "--emulate"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "emulated TCT:" in out
        assert "estimate off by" in out

    def test_single_mode_scenario_uses_the_queue_table(self, capsys):
        rc = main(["estimate", "--workload", "long_tail"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical chain:" in out
        assert "resource" in out


class TestArgumentValidation:
    def test_neither_files_nor_workload_errors(self, capsys):
        assert main(["emulate"]) == 2
        assert "--workload" in capsys.readouterr().err

    def test_both_files_and_workload_errors(self, capsys, tmp_path):
        psdf = tmp_path / "a.xml"
        psm = tmp_path / "b.xml"
        psdf.write_text("<x/>")
        psm.write_text("<x/>")
        rc = main(
            ["estimate", str(psdf), str(psm), "--workload", "bursty"]
        )
        assert rc == 2
        assert "not both" in capsys.readouterr().err

    def test_files_only_path_still_works(self, capsys, tmp_path):
        from repro.apps.mp3 import (
            PAPER_PACKAGE_SIZE,
            mp3_decoder_psdf,
            paper_platform,
        )
        from repro.xmlio.psdf_writer import psdf_to_xml
        from repro.xmlio.psm_writer import psm_to_xml

        psdf = tmp_path / "app.xml"
        psm = tmp_path / "platform.xml"
        psdf.write_text(psdf_to_xml(mp3_decoder_psdf(), PAPER_PACKAGE_SIZE))
        psm.write_text(psm_to_xml(paper_platform(3)))
        assert main(["emulate", str(psdf), str(psm)]) == 0
        assert "Total execution time:" in capsys.readouterr().out
