"""CLI compare subcommand tests."""

from repro.apps.mp3 import paper_allocation, paper_platform
from repro.cli import main
from repro.xmlio.psm_writer import psm_to_xml


def write_psm(path, platform):
    path.write_text(psm_to_xml(platform), encoding="utf-8")
    return path


def test_identical_platforms_exit_zero(capsys, tmp_path):
    a = write_psm(tmp_path / "a.xml", paper_platform(3))
    b = write_psm(tmp_path / "b.xml", paper_platform(3))
    rc = main(["compare", str(a), str(b)])
    assert rc == 0
    assert "identical" in capsys.readouterr().out


def test_different_platforms_exit_one(capsys, tmp_path):
    a = write_psm(tmp_path / "a.xml", paper_platform(3))
    moved = paper_allocation(3).moved("P9", 3)
    b = write_psm(
        tmp_path / "b.xml", paper_platform(3, package_size=18, allocation=moved)
    )
    rc = main(["compare", str(a), str(b)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "package_size platform: 36 -> 18" in out
    assert "placement P9: segment 1 -> segment 3" in out
