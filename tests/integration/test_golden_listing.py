"""Golden-file regression pin for the headline experiment.

The 3-segment, s = 36 results listing is the paper's central artifact; this
test pins it byte-for-byte.  Any change to the kernel's timing semantics,
the MP3 calibration or the report formatting shows up here as a readable
diff.  If a change is *intentional*, regenerate the golden file:

    python -c "from repro import emulate, mp3_decoder_psdf, paper_platform;
    open('tests/integration/golden/mp3_3seg_s36_listing.txt','w').write(
    emulate(mp3_decoder_psdf(), paper_platform(3)).format_listing() + '\\n')"

and justify the new numbers against EXPERIMENTS.md.
"""

from pathlib import Path

GOLDEN = Path(__file__).parent / "golden" / "mp3_3seg_s36_listing.txt"


def test_listing_matches_golden(report_3seg):
    expected = GOLDEN.read_text()
    actual = report_3seg.format_listing() + "\n"
    assert actual == expected, (
        "the 3-segment results listing changed; if intentional, regenerate "
        f"{GOLDEN} (see module docstring) and update EXPERIMENTS.md"
    )


def test_golden_contains_paper_checkpoints():
    text = GOLDEN.read_text()
    # spot-check that the pinned artifact still matches the paper-exact rows
    assert "P0, Start Time = 10989ps" in text
    assert "Total input packages = 32," in text
    assert "TCT = 2336" in text
    assert "TCT = 146" in text
    assert "Total inter-segment requests = 1" in text
