"""CLI analytic subcommand test."""

from repro.cli import main


def test_analytic_prints_diagnosis(capsys):
    rc = main(["analytic", "--segments", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "analytic (contention-free)" in out
    assert "contention cost" in out


def test_analytic_one_segment(capsys):
    rc = main(["analytic", "--segments", "1", "--package-size", "18"])
    assert rc == 0
    assert "emulated" in capsys.readouterr().out
