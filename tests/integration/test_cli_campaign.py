"""CLI campaign subcommand tests."""

from repro.cli import main


def test_campaign_prints_table_and_best(capsys, tmp_path):
    csv_path = tmp_path / "results.csv"
    rc = main(
        [
            "campaign",
            "--app", "mp3",
            "--segments", "3",
            "--package-sizes", "18", "36",
            "--csv", str(csv_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "| name |" in out
    assert "best: s36" in out  # larger packages win on the MP3 workload
    assert csv_path.exists()
    assert "execution_time_us" in csv_path.read_text()


def test_campaign_jpeg(capsys):
    rc = main(["campaign", "--app", "jpeg", "--package-sizes", "36"])
    assert rc == 0
    assert "s36" in capsys.readouterr().out


def test_campaign_unknown_app(capsys):
    rc = main(["campaign", "--app", "doom"])
    assert rc == 2
