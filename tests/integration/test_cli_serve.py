"""CLI integration: ``segbus serve`` subprocess + ``segbus loadgen``."""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import urllib.request

import pytest

from repro.cli import main
from repro.testing.bench import scenario


@pytest.fixture(scope="module")
def serve_process():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    banner = process.stdout.readline().strip()
    match = re.match(r"serving on (http://[\d.]+:\d+)$", banner)
    assert match, f"unexpected serve banner: {banner!r}"
    yield process, match.group(1)
    process.send_signal(signal.SIGINT)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=30)


class TestServeSubprocess:
    def test_health_over_the_wire(self, serve_process):
        _, url = serve_process
        with urllib.request.urlopen(url + "/v1/health", timeout=30) as resp:
            body = json.loads(resp.read())
        assert body["ok"] is True

    def test_job_roundtrip(self, serve_process):
        _, url = serve_process
        request = urllib.request.Request(
            url + "/v1/jobs",
            data=json.dumps(
                {"kind": "emulate", "workload": "bursty"}
            ).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=120) as resp:
            body = json.loads(resp.read())
        assert body["kind"] == "emulate"
        assert body["digest"]

    def test_loadgen_smoke_with_verify_and_hit_rate(
        self, serve_process, capsys
    ):
        _, url = serve_process
        code = main(
            [
                "loadgen",
                "--url", url,
                "--requests", "15",
                "--models", "0",
                "--workload", "bursty",
                "--workload", "long_tail",
                "--repeat-ratio", "0.8",
                "--seed", "2",
                "--verify",
                "--expect-hit-rate", "0.25",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 error(s)" in out
        assert "0 divergence(s)" in out

    def test_loadgen_json_report(self, serve_process, capsys):
        _, url = serve_process
        code = main(
            [
                "loadgen",
                "--url", url,
                "--requests", "6",
                "--models", "0",
                "--workload", "bursty",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["requests"] == 6
        assert report["errors"] == 0

    def test_sigint_exits_cleanly(self, serve_process):
        # actual assertion happens in fixture teardown (exit must not
        # hang); here just confirm the process is still serving
        process, _ = serve_process
        assert process.poll() is None


class TestServeBenchWiring:
    def test_serve_throughput_is_registered(self):
        item = scenario("serve_throughput")
        assert item.prepare is not None
        assert item.service_metrics is not None
        assert item.cache_hit_rate_min == 0.9

    def test_models_per_round_mirrors_the_harness_constant(self):
        from repro.serve.bench import BENCH_REQUESTS

        assert scenario("serve_throughput").models_per_round == BENCH_REQUESTS

    def test_committed_baseline_meets_the_acceptance_bar(self):
        from repro.testing.bench import DEFAULT_BASELINE_DIR, load_baseline

        baseline = load_baseline("serve_throughput", DEFAULT_BASELINE_DIR)
        requests = baseline.ticks["requests"]
        reused = baseline.ticks["reused"]
        assert requests > 0
        assert reused / requests >= 0.9  # repeat-heavy load: >=90% reuse
        for engine, metrics in baseline.service.items():
            assert metrics["hit_rate"] >= 0.9
            assert metrics["throughput_rps"] > 0
            assert (
                metrics["latency_p50_ms"]
                <= metrics["latency_p90_ms"]
                <= metrics["latency_p99_ms"]
            )
