"""End-to-end flow tests: Fig. 3's design process on disk.

model -> code engineering sets -> XML schemes on disk -> emulator from
files -> report, then the same configuration through the object route;
both must agree bit-for-bit.
"""

import pytest

from repro.emulator.emulator import SegBusEmulator, emulate
from repro.xmlio.codegen import CodeEngineeringSet, generate_models


class TestXMLFileFlow:
    @pytest.fixture
    def scheme_files(self, mp3_graph, platform_3seg, tmp_path):
        return generate_models(
            [
                CodeEngineeringSet("psdf", mp3_graph, "psdf.xml", package_size=36),
                CodeEngineeringSet("psm", platform_3seg, "psm.xml"),
            ],
            tmp_path,
        )

    def test_emulate_from_generated_files(self, scheme_files):
        emulator = SegBusEmulator.from_files(*scheme_files)
        report = emulator.run()
        assert report.segment_count == 3
        assert report.bu(1, 2).input_packages == 32

    def test_file_route_matches_object_route(
        self, scheme_files, mp3_graph, platform_3seg
    ):
        # The file route flattens C to the s=36 values — identical to the
        # object route at package size 36.
        from_files = SegBusEmulator.from_files(*scheme_files).run()
        from_models = emulate(mp3_graph, platform_3seg)
        assert from_files.execution_time_fs == from_models.execution_time_fs
        assert from_files.ca_tct == from_models.ca_tct
        assert [s.tct for s in from_files.sa_results] == [
            s.tct for s in from_models.sa_results
        ]
        assert [b.tct for b in from_files.bu_results] == [
            b.tct for b in from_models.bu_results
        ]


class TestWorkloadsOnPlatforms:
    """Every catalog workload emulates cleanly on a generic platform."""

    @pytest.mark.parametrize(
        "name", ["chain4", "chain8", "fork_join4", "fork_join8",
                 "stereo3", "stereo5", "random12", "random20"]
    )
    def test_workload_runs_on_two_segments(self, name):
        from repro.apps.workloads import named_workload
        from repro.model.mapping import map_application
        from repro.placement.placetool import PlaceTool

        graph = named_workload(name)
        allocation = PlaceTool(anneal=False).solve(graph, 2).allocation()
        psm = map_application(
            graph,
            allocation,
            segment_frequencies_mhz=[100, 100],
            ca_frequency_mhz=120,
            package_size=36,
        )
        report = emulate(graph, psm.platform)
        assert report.execution_time_us > 0
        # conservation: every flow's packages delivered somewhere
        sent = sum(e.packages_sent for e in report.timeline)
        received = sum(e.packages_received for e in report.timeline)
        assert sent == received == graph.total_packages(36)
