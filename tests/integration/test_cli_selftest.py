"""CLI wiring tests for ``segbus selftest`` and ``segbus bench``."""

import json

from repro.cli import build_parser, main


class TestSelftestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["selftest"])
        assert args.count is None
        assert args.seed == 1
        assert not args.quick
        assert not args.update_golden

    def test_quick_flag(self):
        args = build_parser().parse_args(["selftest", "--quick"])
        assert args.quick


class TestSelftestCommand:
    def test_small_run_passes(self, capsys):
        rc = main(["selftest", "--count", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "selftest PASS" in out
        assert "3 random model(s)" in out
        assert "golden traces" in out

    def test_skip_golden(self, capsys):
        rc = main(["selftest", "--count", "1", "--skip-golden"])
        assert rc == 0
        assert "golden traces" not in capsys.readouterr().out

    def test_update_golden_into_tmp_store(self, tmp_path, capsys):
        store = tmp_path / "store.json"
        rc = main(
            [
                "selftest",
                "--count",
                "1",
                "--update-golden",
                "--golden-store",
                str(store),
            ]
        )
        assert rc == 0
        assert store.is_file()
        assert "re-pinned" in capsys.readouterr().out

    def test_missing_models_dir_is_cli_error(self, tmp_path, capsys):
        rc = main(
            [
                "selftest",
                "--count",
                "1",
                "--models-dir",
                str(tmp_path / "nope"),
            ]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestBenchCommand:
    def test_list(self, capsys):
        rc = main(["bench", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mp3_3seg_emulate" in out
        assert "random_oracle_batch" in out

    def test_run_without_check(self, capsys):
        rc = main(["bench", "mp3_3seg_analytic", "--repeats", "1"])
        assert rc == 0
        assert "execution_time_ps=" in capsys.readouterr().out

    def test_check_against_committed_baselines(self, capsys):
        rc = main(
            [
                "bench",
                "mp3_3seg_analytic",
                "mp3_3seg_emulate",
                "--repeats",
                "1",
                "--check",
                "--no-wall",
            ]
        )
        assert rc == 0
        assert "bench check" in capsys.readouterr().out

    def test_update_writes_baselines(self, tmp_path, capsys):
        rc = main(
            [
                "bench",
                "mp3_3seg_analytic",
                "--repeats",
                "1",
                "--update",
                "--baseline-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        path = tmp_path / "BENCH_mp3_3seg_analytic.json"
        assert path.is_file()
        data = json.loads(path.read_text())
        assert data["name"] == "mp3_3seg_analytic"
        assert data["ticks"]

    def test_injected_slowdown_fails_check(self, tmp_path, capsys):
        assert (
            main(
                [
                    "bench",
                    "mp3_3seg_analytic",
                    "--repeats",
                    "1",
                    "--update",
                    "--baseline-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        # a 20x injected slowdown against the 1.5x gate: the margin has
        # to dwarf single-repeat wall jitter on busy single-core hosts
        rc = main(
            [
                "bench",
                "mp3_3seg_analytic",
                "--repeats",
                "1",
                "--check",
                "--inject-slowdown",
                "20.0",
                "--baseline-dir",
                str(tmp_path),
            ]
        )
        assert rc == 1
        assert "perf regression" in capsys.readouterr().out

    def test_unknown_scenario_is_cli_error(self, capsys):
        rc = main(["bench", "warp_drive", "--repeats", "1"])
        assert rc == 2
        assert "unknown bench scenario" in capsys.readouterr().err
