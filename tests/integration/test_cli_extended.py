"""CLI tests for the power / codegen / trace subcommands."""

from repro.cli import main


class TestPower:
    def test_prints_energy_table(self, capsys):
        rc = main(["power", "--segments", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Segment1" in out
        assert "TOTAL" in out
        assert "average power" in out


class TestCodegen:
    def test_writes_vhdl_files(self, tmp_path, capsys):
        rc = main(
            ["codegen", "--segments", "3", "--output-dir", str(tmp_path / "rtl")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "central_arbiter.vhd" in out
        assert (tmp_path / "rtl" / "sa1_arbiter.vhd").exists()
        text = (tmp_path / "rtl" / "schedule_rom_pkg.vhd").read_text()
        assert "C_PROCESS_COUNT : natural := 15" in text


class TestTrace:
    def test_writes_vcd(self, tmp_path, capsys):
        target = tmp_path / "run.vcd"
        rc = main(["trace", "--segments", "3", "--output", str(target)])
        assert rc == 0
        assert target.exists()
        assert "$timescale" in target.read_text()
        assert "events" in capsys.readouterr().out

    def test_log_option_prints_events(self, tmp_path, capsys):
        target = tmp_path / "run.vcd"
        rc = main(
            ["trace", "--output", str(target), "--log", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fire" in out
