"""CLI estimate subcommand tests."""

import pytest

from repro.apps.mp3 import PAPER_PACKAGE_SIZE, mp3_decoder_psdf, paper_platform
from repro.cli import main
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_writer import psm_to_xml


@pytest.fixture()
def scheme_files(tmp_path):
    psdf = tmp_path / "app.xml"
    psm = tmp_path / "platform.xml"
    psdf.write_text(psdf_to_xml(mp3_decoder_psdf(), PAPER_PACKAGE_SIZE))
    psm.write_text(psm_to_xml(paper_platform(3)))
    return psdf, psm


def test_estimate_prints_the_breakdown(capsys, scheme_files):
    psdf, psm = scheme_files
    rc = main(["estimate", str(psdf), str(psm)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "analytic lower bound:" in out
    assert "predicted contention:" in out
    assert "expected TCT:" in out
    assert "critical chain:" in out
    # the per-resource queue table: three segments, the CA, and BUs
    for name in ("S1", "S2", "S3", "CA", "BU1-2", "BU2-3"):
        assert name in out
    # no emulation without --emulate
    assert "emulated TCT" not in out


def test_estimate_emulate_reports_signed_error(capsys, scheme_files):
    psdf, psm = scheme_files
    rc = main(["estimate", str(psdf), str(psm), "--emulate"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "emulated TCT:" in out
    assert "estimate off by" in out


def test_estimate_emulate_accepts_engine(capsys, scheme_files):
    psdf, psm = scheme_files
    rc = main(
        ["estimate", str(psdf), str(psm), "--emulate", "--engine", "fast"]
    )
    assert rc == 0
    assert "emulated TCT:" in capsys.readouterr().out
