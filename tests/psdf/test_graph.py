"""PSDF graph construction, queries and well-formedness validation."""

import pytest

from repro.errors import PSDFError
from repro.psdf.flow import FlowCost, PacketFlow
from repro.psdf.graph import PSDFGraph
from repro.psdf.process import Process, ProcessKind


def simple_graph():
    return PSDFGraph.from_edges(
        [
            ("A", "B", 72, 1, 100),
            ("A", "C", 36, 2, 100),
            ("B", "D", 72, 3, 100),
            ("C", "D", 36, 3, 100),
        ]
    )


class TestConstruction:
    def test_from_edges_infers_processes(self):
        g = simple_graph()
        assert set(g.process_names) == {"A", "B", "C", "D"}

    def test_from_edges_infers_stereotypes(self):
        g = simple_graph()
        assert g.process("A").kind is ProcessKind.INITIAL
        assert g.process("B").kind is ProcessKind.PROCESS
        assert g.process("D").kind is ProcessKind.FINAL

    def test_kinds_override(self):
        g = PSDFGraph.from_edges(
            [("A", "B", 36, 1, 10)], kinds={"B": ProcessKind.PROCESS}
        )
        assert g.process("B").kind is ProcessKind.PROCESS

    def test_flow_cost_objects_accepted(self):
        g = PSDFGraph.from_edges([("A", "B", 36, 1, FlowCost(c_fixed=10, c_item=2))])
        assert g.flow("A", "B").ticks_per_package(36) == 82

    def test_rejects_bad_edge_tuple(self):
        with pytest.raises(PSDFError):
            PSDFGraph.from_edges([("A", "B", 36, 1)])

    def test_rejects_duplicate_process(self):
        with pytest.raises(PSDFError):
            PSDFGraph(
                [Process("A"), Process("A")],
                [],
            )

    def test_rejects_undeclared_endpoint(self):
        with pytest.raises(PSDFError):
            PSDFGraph(
                [Process("A", ProcessKind.INITIAL)],
                [PacketFlow("A", "B", 36, 1, FlowCost.constant(10))],
            )

    def test_rejects_duplicate_flow_same_order(self):
        with pytest.raises(PSDFError):
            PSDFGraph.from_edges(
                [("A", "B", 36, 1, 10), ("A", "B", 72, 1, 10)]
            )

    def test_allows_parallel_flows_different_order(self):
        g = PSDFGraph.from_edges(
            [("A", "B", 36, 1, 10), ("A", "B", 72, 2, 10)]
        )
        assert len(g.flows) == 2

    def test_rejects_cycle(self):
        with pytest.raises(PSDFError, match="cycle"):
            PSDFGraph.from_edges(
                [("A", "B", 36, 1, 10), ("B", "C", 36, 2, 10), ("C", "A", 36, 3, 10)]
            )

    def test_rejects_disconnected_process(self):
        with pytest.raises(PSDFError, match="disconnected"):
            PSDFGraph(
                [Process("A", ProcessKind.INITIAL), Process("B", ProcessKind.FINAL),
                 Process("X")],
                [PacketFlow("A", "B", 36, 1, FlowCost.constant(10))],
            )

    def test_rejects_initial_with_inputs(self):
        with pytest.raises(PSDFError, match="InitialNode"):
            PSDFGraph(
                [Process("A", ProcessKind.INITIAL), Process("B", ProcessKind.INITIAL)],
                [PacketFlow("A", "B", 36, 1, FlowCost.constant(10))],
            )

    def test_rejects_final_with_outputs(self):
        with pytest.raises(PSDFError, match="FinalNode"):
            PSDFGraph(
                [Process("A", ProcessKind.FINAL), Process("B", ProcessKind.FINAL)],
                [PacketFlow("A", "B", 36, 1, FlowCost.constant(10))],
            )


class TestQueries:
    def test_len(self):
        assert len(simple_graph()) == 4

    def test_contains(self):
        g = simple_graph()
        assert "A" in g
        assert "Z" not in g

    def test_flow_lookup(self):
        assert simple_graph().flow("A", "B").data_items == 72

    def test_flow_lookup_missing(self):
        with pytest.raises(PSDFError):
            simple_graph().flow("A", "D")

    def test_flow_lookup_ambiguous(self):
        g = PSDFGraph.from_edges(
            [("A", "B", 36, 1, 10), ("A", "B", 72, 2, 10)]
        )
        with pytest.raises(PSDFError, match="order"):
            g.flow("A", "B")

    def test_outgoing_sorted_by_order(self):
        g = simple_graph()
        assert [f.target for f in g.outgoing("A")] == ["B", "C"]

    def test_incoming(self):
        g = simple_graph()
        assert {f.source for f in g.incoming("D")} == {"B", "C"}

    def test_unknown_process_raises(self):
        with pytest.raises(PSDFError):
            simple_graph().outgoing("Z")

    def test_initial_and_final(self):
        g = simple_graph()
        assert [p.name for p in g.initial_processes()] == ["A"]
        assert [p.name for p in g.final_processes()] == ["D"]

    def test_total_data_items(self):
        assert simple_graph().total_data_items() == 72 + 36 + 72 + 36

    def test_total_packages(self):
        assert simple_graph().total_packages(36) == 2 + 1 + 2 + 1

    def test_orders(self):
        assert simple_graph().orders() == (1, 2, 3)

    def test_topological_order_valid(self):
        g = simple_graph()
        order = g.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for flow in g.flows:
            assert position[flow.source] < position[flow.target]

    def test_topological_order_deterministic(self):
        g = simple_graph()
        assert g.topological_order() == g.topological_order()

    def test_depth(self):
        assert simple_graph().depth() == 2

    def test_depth_chain(self):
        g = PSDFGraph.from_edges(
            [("A", "B", 36, 1, 10), ("B", "C", 36, 2, 10), ("C", "D", 36, 3, 10)]
        )
        assert g.depth() == 3
