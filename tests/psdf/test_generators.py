"""Synthetic workload generator tests."""

import pytest

from repro.errors import PSDFError
from repro.psdf.generators import (
    chain_psdf,
    fork_join_psdf,
    random_dag_psdf,
    stereo_pipeline_psdf,
)
from repro.psdf.process import ProcessKind


class TestChain:
    def test_structure(self):
        g = chain_psdf(5)
        assert len(g) == 5
        assert len(g.flows) == 4
        assert g.depth() == 4

    def test_endpoints(self):
        g = chain_psdf(3)
        assert g.process("P0").kind is ProcessKind.INITIAL
        assert g.process("P2").kind is ProcessKind.FINAL

    def test_rejects_short_chain(self):
        with pytest.raises(PSDFError):
            chain_psdf(1)


class TestForkJoin:
    def test_structure(self):
        g = fork_join_psdf(4)
        assert len(g) == 6  # SRC + 4 workers + SINK
        assert len(g.flows) == 8

    def test_workers_are_parallel(self):
        g = fork_join_psdf(3)
        assert g.depth() == 2

    def test_single_worker(self):
        g = fork_join_psdf(1)
        assert len(g) == 3

    def test_rejects_zero_workers(self):
        with pytest.raises(PSDFError):
            fork_join_psdf(0)


class TestStereoPipeline:
    def test_structure(self):
        g = stereo_pipeline_psdf(3)
        # HEAD + 3 left + 3 right + TAIL
        assert len(g) == 8
        assert g.depth() == 4

    def test_symmetric_channels(self):
        g = stereo_pipeline_psdf(2)
        assert g.flow("HEAD", "L0").data_items == g.flow("HEAD", "R0").data_items

    def test_rejects_zero_stages(self):
        with pytest.raises(PSDFError):
            stereo_pipeline_psdf(0)


class TestRandomDag:
    def test_deterministic_for_seed(self):
        a = random_dag_psdf(10, seed=42)
        b = random_dag_psdf(10, seed=42)
        assert [
            (f.source, f.target, f.data_items, f.order) for f in a.flows
        ] == [(f.source, f.target, f.data_items, f.order) for f in b.flows]

    def test_different_seeds_differ(self):
        a = random_dag_psdf(10, seed=1)
        b = random_dag_psdf(10, seed=2)
        edges_a = [(f.source, f.target, f.data_items) for f in a.flows]
        edges_b = [(f.source, f.target, f.data_items) for f in b.flows]
        assert edges_a != edges_b

    def test_connected(self):
        g = random_dag_psdf(15, seed=3)
        # every non-initial process has at least one input
        for proc in g:
            if proc.kind is not ProcessKind.INITIAL:
                assert g.incoming(proc.name)

    def test_items_are_multiples_of_36(self):
        g = random_dag_psdf(12, seed=5)
        assert all(f.data_items % 36 == 0 for f in g.flows)

    def test_rejects_tiny(self):
        with pytest.raises(PSDFError):
            random_dag_psdf(1)

    def test_rejects_bad_probability(self):
        with pytest.raises(PSDFError):
            random_dag_psdf(5, edge_probability=1.5)

    @pytest.mark.parametrize("n", [2, 5, 10, 25])
    def test_valid_at_many_sizes(self, n):
        g = random_dag_psdf(n, seed=n)
        assert len(g) == n
        g.topological_order()  # must not raise
