"""Schedule extraction tests."""

import pytest

from repro.errors import ScheduleError
from repro.psdf.generators import fork_join_psdf
from repro.psdf.graph import PSDFGraph
from repro.psdf.schedule import extract_schedule


@pytest.fixture
def diamond():
    return PSDFGraph.from_edges(
        [
            ("A", "B", 72, 1, 100),
            ("A", "C", 72, 2, 100),
            ("B", "D", 36, 3, 100),
            ("C", "D", 36, 3, 100),
        ]
    )


class TestExtraction:
    def test_transfers_per_process(self, diamond):
        schedule = extract_schedule(diamond, 36)
        assert len(schedule.transfers_of["A"]) == 2
        assert len(schedule.transfers_of["B"]) == 1
        assert len(schedule.transfers_of["D"]) == 0

    def test_transfer_fields(self, diamond):
        schedule = extract_schedule(diamond, 36)
        transfer = schedule.transfers_of["A"][0]
        assert transfer.source == "A"
        assert transfer.target == "B"
        assert transfer.packages == 2
        assert transfer.ticks_per_package == 100

    def test_transfers_sorted_by_order(self, diamond):
        schedule = extract_schedule(diamond, 36)
        orders = [t.order for t in schedule.transfers_of["A"]]
        assert orders == sorted(orders)

    def test_inputs_of_counts_packages(self, diamond):
        schedule = extract_schedule(diamond, 36)
        assert schedule.inputs_of["A"] == 0
        assert schedule.inputs_of["B"] == 2
        assert schedule.inputs_of["D"] == 2

    def test_inputs_of_rounds_up(self):
        graph = PSDFGraph.from_edges([("A", "B", 37, 1, 10)])
        schedule = extract_schedule(graph, 36)
        assert schedule.inputs_of["B"] == 2

    def test_rejects_bad_package_size(self, diamond):
        with pytest.raises(ScheduleError):
            extract_schedule(diamond, 0)


class TestScheduleObject:
    def test_all_transfers_sorted(self, diamond):
        schedule = extract_schedule(diamond, 36)
        transfers = schedule.all_transfers()
        assert [t.order for t in transfers] == sorted(t.order for t in transfers)

    def test_total_packages(self, diamond):
        schedule = extract_schedule(diamond, 36)
        assert schedule.total_packages() == 2 + 2 + 1 + 1

    def test_concurrent_groups(self, diamond):
        schedule = extract_schedule(diamond, 36)
        groups = schedule.concurrent_groups()
        # orders 1, 2, 3 -> three groups; the last has the two same-T joins
        assert len(groups) == 3
        assert len(groups[-1]) == 2

    def test_fork_join_concurrency(self):
        graph = fork_join_psdf(4, items_per_worker=36)
        schedule = extract_schedule(graph, 36)
        groups = schedule.concurrent_groups()
        assert len(groups) == 2
        assert len(groups[0]) == 4  # all fan-out flows share T=1

    def test_package_size_changes_counts(self, diamond):
        s36 = extract_schedule(diamond, 36)
        s18 = extract_schedule(diamond, 18)
        assert s18.total_packages() == 2 * s36.total_packages()
