"""Communication matrix tests, anchored on the paper's Fig. 8."""

import numpy as np
import pytest

from repro.errors import PSDFError
from repro.psdf.graph import PSDFGraph
from repro.psdf.matrix import CommunicationMatrix, build_communication_matrix


@pytest.fixture
def small_matrix():
    graph = PSDFGraph.from_edges(
        [("A", "B", 100, 1, 10), ("B", "C", 50, 2, 10), ("A", "C", 25, 3, 10)]
    )
    return build_communication_matrix(graph)


class TestBuild:
    def test_entries(self, small_matrix):
        assert small_matrix["A", "B"] == 100
        assert small_matrix["B", "C"] == 50
        assert small_matrix["A", "C"] == 25
        assert small_matrix["C", "A"] == 0

    def test_parallel_flows_summed(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 100, 1, 10), ("A", "B", 50, 2, 10)]
        )
        assert build_communication_matrix(graph)["A", "B"] == 150

    def test_total_items(self, small_matrix):
        assert small_matrix.total_items() == 175

    def test_len(self, small_matrix):
        assert len(small_matrix) == 3


class TestValidation:
    def test_rejects_shape_mismatch(self):
        with pytest.raises(PSDFError):
            CommunicationMatrix(["A", "B"], np.zeros((3, 3), dtype=int))

    def test_rejects_negative(self):
        items = np.zeros((2, 2), dtype=int)
        items[0, 1] = -1
        with pytest.raises(PSDFError):
            CommunicationMatrix(["A", "B"], items)

    def test_rejects_nonzero_diagonal(self):
        items = np.zeros((2, 2), dtype=int)
        items[0, 0] = 5
        with pytest.raises(PSDFError):
            CommunicationMatrix(["A", "B"], items)

    def test_rejects_duplicate_names(self):
        with pytest.raises(PSDFError):
            CommunicationMatrix(["A", "A"], np.zeros((2, 2), dtype=int))

    def test_array_is_readonly(self, small_matrix):
        with pytest.raises(ValueError):
            small_matrix.array[0, 1] = 7


class TestQueries:
    def test_packages_between(self, small_matrix):
        assert small_matrix.packages_between("A", "B", 36) == 3
        assert small_matrix.packages_between("C", "A", 36) == 0

    def test_packages_between_rejects_bad_size(self, small_matrix):
        with pytest.raises(PSDFError):
            small_matrix.packages_between("A", "B", 0)

    def test_row(self, small_matrix):
        assert small_matrix.row("A") == {"B": 100, "C": 25}

    def test_column(self, small_matrix):
        assert small_matrix.column("C") == {"B": 50, "A": 25}

    def test_pairs(self, small_matrix):
        assert set(small_matrix.pairs()) == {
            ("A", "B", 100),
            ("B", "C", 50),
            ("A", "C", 25),
        }

    def test_cut_items(self, small_matrix):
        partition = {"A": 1, "B": 1, "C": 2}
        assert small_matrix.cut_items(partition) == 75

    def test_cut_items_all_together(self, small_matrix):
        assert small_matrix.cut_items({"A": 1, "B": 1, "C": 1}) == 0

    def test_equality(self, small_matrix):
        other = CommunicationMatrix(small_matrix.names, small_matrix.array.copy())
        assert small_matrix == other

    def test_to_table_contains_all_names(self, small_matrix):
        table = small_matrix.to_table()
        for name in small_matrix.names:
            assert name in table


class TestPaperFig8:
    """The MP3 decoder matrix must reproduce Fig. 8 cell by cell."""

    # Every non-zero cell of the published matrix.
    EXPECTED = {
        ("P0", "P1"): 576, ("P0", "P8"): 576,
        ("P1", "P2"): 540, ("P1", "P3"): 36,
        ("P2", "P3"): 540,
        ("P3", "P4"): 36, ("P3", "P5"): 540, ("P3", "P10"): 36, ("P3", "P11"): 540,
        ("P4", "P5"): 36,
        ("P5", "P6"): 576,
        ("P6", "P7"): 576,
        ("P7", "P14"): 576,
        ("P8", "P3"): 36, ("P8", "P9"): 540,
        ("P9", "P3"): 540,
        ("P10", "P11"): 36,
        ("P11", "P12"): 576,
        ("P12", "P13"): 576,
        ("P13", "P14"): 576,
    }

    def test_matrix_matches_fig8(self, mp3_graph):
        matrix = build_communication_matrix(mp3_graph)
        for source in matrix.names:
            for target in matrix.names:
                expected = self.EXPECTED.get((source, target), 0)
                assert matrix[source, target] == expected, (source, target)

    def test_p0_p1_is_16_packages(self, mp3_graph):
        # "the transaction between P0 and P1 consists of 576 data items,
        # packed into 16 packages"
        matrix = build_communication_matrix(mp3_graph)
        assert matrix.packages_between("P0", "P1", 36) == 16
