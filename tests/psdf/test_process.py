"""Process node tests."""

import pytest

from repro.errors import PSDFError
from repro.psdf.process import Process, ProcessKind


def test_default_kind_is_process_node():
    assert Process("P3").kind is ProcessKind.PROCESS


def test_stereotype_strings_match_profile():
    assert Process("P0", ProcessKind.INITIAL).stereotype == "InitialNode"
    assert Process("P3", ProcessKind.PROCESS).stereotype == "ProcessNode"
    assert Process("P14", ProcessKind.FINAL).stereotype == "FinalNode"


def test_description_is_free_text():
    proc = Process("P0", description="frame decoding")
    assert proc.description == "frame decoding"


@pytest.mark.parametrize("bad", ["", "0P", "P_1", "P 1", "P-1"])
def test_rejects_bad_names(bad):
    with pytest.raises(PSDFError):
        Process(bad)


@pytest.mark.parametrize("good", ["P0", "P14", "Source", "W12abc"])
def test_accepts_alnum_names(good):
    assert Process(good).name == good


def test_frozen():
    with pytest.raises(Exception):
        Process("P0").name = "P1"
