"""Multi-mode PSDF data model: specs, schedules, applications."""

import pytest

from repro.errors import ModeError, PSDFError
from repro.psdf.graph import PSDFGraph
from repro.psdf.modes import (
    ModePhase,
    ModeSchedule,
    MultiModeApplication,
    TransitionSpec,
    resolve_iterations,
)


def lo_graph():
    return PSDFGraph.from_edges(
        [("A", "B", 36, 1, 10), ("B", "C", 36, 2, 10)], name="lo"
    )


def hi_graph():
    return PSDFGraph.from_edges(
        [("A", "B", 72, 1, 20), ("B", "C", 72, 2, 20)], name="hi"
    )


def two_mode_app(phases=None, transition=TransitionSpec()):
    schedule = ModeSchedule(
        phases=phases
        or (ModePhase("lo", 2), ModePhase("hi", 1), ModePhase("lo", 1)),
        transition=transition,
    )
    return MultiModeApplication(
        name="toy2", modes={"lo": lo_graph(), "hi": hi_graph()},
        schedule=schedule,
    )


class TestTransitionSpec:
    def test_zero_by_default(self):
        assert TransitionSpec().is_zero
        assert TransitionSpec().delay_ticks(4) == 0

    def test_delay_linear_in_bu_count(self):
        spec = TransitionSpec(reconfig_ticks=10, flush_ticks_per_bu=3)
        assert not spec.is_zero
        assert spec.delay_ticks(0) == 10
        assert spec.delay_ticks(2) == 16

    @pytest.mark.parametrize(
        "kwargs",
        [{"reconfig_ticks": -1}, {"flush_ticks_per_bu": -2}],
    )
    def test_negative_values_raise(self, kwargs):
        with pytest.raises(ModeError, match="non-negative"):
            TransitionSpec(**kwargs)

    def test_negative_bu_count_raises(self):
        with pytest.raises(ModeError, match="bu_count"):
            TransitionSpec().delay_ticks(-1)


class TestModePhase:
    def test_default_single_iteration(self):
        phase = ModePhase("lo")
        assert phase.iterations == 1
        assert not phase.is_degenerate

    @pytest.mark.parametrize(
        "phase",
        [
            ModePhase("lo", iterations=0),
            ModePhase("lo", iterations=-1),
            ModePhase("lo", iterations=1, min_dwell_ticks=-5),
        ],
    )
    def test_degenerate_shapes(self, phase):
        assert phase.is_degenerate

    def test_zero_iterations_with_dwell_is_fine(self):
        assert not ModePhase("lo", iterations=0, min_dwell_ticks=8).is_degenerate


class TestResolveIterations:
    def test_fixed_iterations_pass_through(self):
        assert resolve_iterations(ModePhase("lo", 3), 1000, 10) == 3

    def test_dwell_covers_with_ceiling(self):
        # 25 ticks * 10 fs = 250 fs dwell over 100 fs iterations -> 3
        phase = ModePhase("lo", iterations=1, min_dwell_ticks=25)
        assert resolve_iterations(phase, 100, 10) == 3

    def test_dwell_never_undercuts_iterations(self):
        phase = ModePhase("lo", iterations=5, min_dwell_ticks=1)
        assert resolve_iterations(phase, 100, 10) == 5

    def test_degenerate_raises(self):
        with pytest.raises(ModeError, match="degenerate"):
            resolve_iterations(ModePhase("lo", 0), 100, 10)

    def test_nonpositive_iteration_time_raises(self):
        phase = ModePhase("lo", iterations=0, min_dwell_ticks=5)
        with pytest.raises(ModeError, match="non-positive iteration time"):
            resolve_iterations(phase, 0, 10)


class TestModeSchedule:
    def test_scheduled_modes_first_appearance_order(self):
        schedule = ModeSchedule(
            phases=(ModePhase("b"), ModePhase("a"), ModePhase("b"))
        )
        assert schedule.scheduled_modes() == ("b", "a")

    def test_switch_count_ignores_same_mode_neighbours(self):
        schedule = ModeSchedule(
            phases=(
                ModePhase("a"),
                ModePhase("a"),
                ModePhase("b"),
                ModePhase("a"),
            )
        )
        assert schedule.switch_count() == 2

    def test_seeded_is_deterministic(self):
        a = ModeSchedule.seeded(7, ("x", "y", "z"), phase_count=6)
        b = ModeSchedule.seeded(7, ("x", "y", "z"), phase_count=6)
        assert a == b
        assert len(a.phases) == 6

    def test_seeded_covers_every_mode(self):
        for seed in range(20):
            schedule = ModeSchedule.seeded(seed, ("x", "y", "z"))
            assert set(schedule.scheduled_modes()) == {"x", "y", "z"}

    def test_seeded_empty_mode_list_raises(self):
        with pytest.raises(ModeError, match="at least one mode"):
            ModeSchedule.seeded(1, ())

    def test_seeded_dwell_probability(self):
        schedule = ModeSchedule.seeded(
            3, ("x", "y"), phase_count=40, dwell_probability=1.0
        )
        assert all(p.min_dwell_ticks is not None for p in schedule.phases)


class TestMultiModeApplication:
    def test_mode_lookup_and_names(self):
        app = two_mode_app()
        assert app.mode_names == ("hi", "lo")
        assert app.mode("lo").name == "lo"
        with pytest.raises(ModeError, match="no mode named"):
            app.mode("ghost")

    def test_process_names_union_sorted(self):
        assert two_mode_app().process_names() == ("A", "B", "C")

    def test_unreachable_modes(self):
        app = two_mode_app(phases=(ModePhase("lo"),))
        assert app.unreachable_modes() == ("hi",)
        assert two_mode_app().unreachable_modes() == ()

    def test_validate_for_run_accepts_well_formed(self):
        two_mode_app().validate_for_run()

    def test_validate_empty_schedule_raises(self):
        app = MultiModeApplication(
            name="empty", modes={"lo": lo_graph()},
            schedule=ModeSchedule(phases=()),
        )
        with pytest.raises(ModeError, match="schedule is empty"):
            app.validate_for_run()

    def test_validate_undefined_mode_raises(self):
        app = two_mode_app(phases=(ModePhase("lo"), ModePhase("ghost")))
        with pytest.raises(ModeError, match="undefined mode"):
            app.validate_for_run()

    def test_validate_degenerate_phase_raises(self):
        app = two_mode_app(phases=(ModePhase("lo", iterations=0),))
        with pytest.raises(ModeError, match="degenerate"):
            app.validate_for_run()

    def test_validate_scheduled_empty_flow_set_raises(self):
        empty = PSDFGraph((), (), name="void")
        app = MultiModeApplication(
            name="hollow", modes={"void": empty},
            schedule=ModeSchedule(phases=(ModePhase("void"),)),
        )
        with pytest.raises(ModeError, match="empty flow set"):
            app.validate_for_run()

    def test_union_graph_rejects_overlapping_flow_keys(self):
        # the toy modes share (source, target, order) keys, so the union
        # must refuse — it is only defined for disjoint-enough flow sets
        with pytest.raises(PSDFError):
            two_mode_app().union_graph()

    def test_union_graph_of_disjoint_modes(self):
        left = PSDFGraph.from_edges([("A", "B", 36, 1, 10)], name="l")
        right = PSDFGraph.from_edges([("C", "D", 36, 1, 10)], name="r")
        app = MultiModeApplication(
            name="disjoint", modes={"l": left, "r": right},
            schedule=ModeSchedule(phases=(ModePhase("l"), ModePhase("r"))),
        )
        union = app.union_graph()
        assert set(union.process_names) == {"A", "B", "C", "D"}
        assert len(union.flows) == 2
