"""Workload metric tests."""

import pytest

from repro.psdf.generators import chain_psdf, fork_join_psdf
from repro.psdf.graph import PSDFGraph
from repro.psdf.metrics import (
    communication_to_computation,
    max_parallelism,
    parallelism_profile,
    summary,
    traffic_concentration,
)


class TestParallelism:
    def test_chain_is_width_one(self):
        graph = chain_psdf(5)
        assert parallelism_profile(graph) == (1, 1, 1, 1, 1)
        assert max_parallelism(graph) == 1

    def test_fork_join_width(self):
        graph = fork_join_psdf(4)
        assert parallelism_profile(graph) == (1, 4, 1)
        assert max_parallelism(graph) == 4

    def test_mp3_width(self, mp3_graph):
        # the stereo split gives at least two parallel channels
        assert max_parallelism(mp3_graph) >= 2

    def test_profile_sums_to_process_count(self, mp3_graph):
        assert sum(parallelism_profile(mp3_graph)) == len(mp3_graph)


class TestTrafficConcentration:
    def test_uniform_traffic_near_zero(self):
        graph = fork_join_psdf(4, items_per_worker=360)
        assert traffic_concentration(graph) == pytest.approx(0.0, abs=1e-9)

    def test_dominant_flow_high(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 10_000, 1, 10), ("B", "C", 10, 2, 10),
             ("C", "D", 10, 3, 10)]
        )
        assert traffic_concentration(graph) > 0.5

    def test_bounded(self, mp3_graph):
        gini = traffic_concentration(mp3_graph)
        assert 0.0 <= gini < 1.0


class TestCommToComp:
    def test_compute_bound_workload(self, mp3_graph):
        # C ~ 250-320 ticks per 36-slot package: clearly compute-bound
        ratio = communication_to_computation(mp3_graph, 36)
        assert ratio < 0.5

    def test_bus_bound_workload(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 720, 1, 1)]  # 1 tick of compute per 36-slot package
        )
        assert communication_to_computation(graph, 36) > 1.0

    def test_scales_with_package_size_for_fixed_costs(self):
        # constant C: halving s doubles packages, doubling compute share
        graph = PSDFGraph.from_edges([("A", "B", 720, 1, 100)])
        r36 = communication_to_computation(graph, 36)
        r18 = communication_to_computation(graph, 18)
        assert r18 == pytest.approx(r36 / 2 * 2 * 0.5 * 2, rel=0.01) or r18 < r36


class TestSummary:
    def test_mp3_summary(self, mp3_graph):
        s = summary(mp3_graph)
        assert s.name == "MP3Decoder"
        assert s.processes == 15
        assert s.flows == 20
        assert s.depth >= 6
        assert s.total_items == 8064
        assert 0 <= s.traffic_gini < 1
        assert s.comm_to_comp > 0
