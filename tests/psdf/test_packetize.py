"""Package arithmetic tests."""

import pytest

from repro.errors import PSDFError
from repro.psdf.packetize import Package, packages_for_items, split_into_packages


class TestPackagesForItems:
    @pytest.mark.parametrize(
        "items,size,expected",
        [(576, 36, 16), (540, 36, 15), (36, 36, 1), (37, 36, 2), (0, 36, 0),
         (576, 18, 32), (1, 36, 1)],
    )
    def test_counts(self, items, size, expected):
        assert packages_for_items(items, size) == expected

    def test_rejects_negative_items(self):
        with pytest.raises(PSDFError):
            packages_for_items(-1, 36)

    def test_rejects_bad_size(self):
        with pytest.raises(PSDFError):
            packages_for_items(36, 0)


class TestSplit:
    def test_exact_split(self):
        packages = split_into_packages("A", "B", 72, 36)
        assert len(packages) == 2
        assert all(p.payload_items == 36 for p in packages)
        assert [p.sequence for p in packages] == [0, 1]

    def test_remainder_package(self):
        packages = split_into_packages("A", "B", 40, 36)
        assert [p.payload_items for p in packages] == [36, 4]

    def test_payloads_sum_to_items(self):
        packages = split_into_packages("A", "B", 1234, 36)
        assert sum(p.payload_items for p in packages) == 1234

    def test_endpoints_propagated(self):
        packages = split_into_packages("P0", "P1", 36, 36)
        assert packages[0].source == "P0"
        assert packages[0].target == "P1"

    def test_empty_flow(self):
        assert split_into_packages("A", "B", 0, 36) == []


class TestPackage:
    def test_rejects_negative_sequence(self):
        with pytest.raises(PSDFError):
            Package("A", "B", -1, 36)

    def test_rejects_empty_payload(self):
        with pytest.raises(PSDFError):
            Package("A", "B", 0, 0)
