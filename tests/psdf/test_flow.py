"""Packet flow and cost-model tests."""

import pytest

from repro.errors import FlowError
from repro.psdf.flow import FlowCost, PacketFlow


class TestFlowCost:
    def test_ticks_two_part(self):
        assert FlowCost(c_fixed=34, c_item=6).ticks(36) == 250

    def test_ticks_scales_with_package_size(self):
        cost = FlowCost(c_fixed=34, c_item=6)
        assert cost.ticks(18) == 142
        assert cost.ticks(72) == 466

    def test_constant_cost_ignores_size(self):
        cost = FlowCost.constant(250)
        assert cost.ticks(18) == cost.ticks(36) == 250

    def test_calibrated_exact_at_anchor(self):
        for ticks in (50, 250, 333, 1000):
            for size in (9, 18, 36, 72):
                assert FlowCost.calibrated(ticks, size).ticks(size) == ticks

    def test_calibrated_fixed_fraction_bounds(self):
        with pytest.raises(FlowError):
            FlowCost.calibrated(250, 36, fixed_fraction=1.5)

    def test_calibrated_rejects_nonpositive(self):
        with pytest.raises(FlowError):
            FlowCost.calibrated(0, 36)

    def test_rejects_negative_components(self):
        with pytest.raises(FlowError):
            FlowCost(c_fixed=-1, c_item=0)

    def test_rejects_all_zero(self):
        with pytest.raises(FlowError):
            FlowCost(c_fixed=0, c_item=0)

    def test_ticks_rejects_bad_package_size(self):
        with pytest.raises(FlowError):
            FlowCost.constant(5).ticks(0)


class TestPacketFlow:
    def flow(self, **kwargs):
        defaults = dict(
            source="P0",
            target="P1",
            data_items=576,
            order=1,
            cost=FlowCost.constant(250),
        )
        defaults.update(kwargs)
        return PacketFlow(**defaults)

    def test_packages_divisible(self):
        assert self.flow().packages(36) == 16

    def test_packages_rounds_up(self):
        assert self.flow(data_items=37).packages(36) == 2

    def test_packages_small_flow(self):
        assert self.flow(data_items=36).packages(36) == 1

    def test_ticks_per_package(self):
        assert self.flow().ticks_per_package(36) == 250

    def test_element_name_matches_paper_format(self):
        # the paper's section 3.5 example: P1_576_1_250
        assert self.flow().element_name(36) == "P1_576_1_250"

    def test_element_name_roundtrip(self):
        original = self.flow()
        parsed = PacketFlow.from_element_name("P0", original.element_name(36))
        assert parsed.source == "P0"
        assert parsed.target == "P1"
        assert parsed.data_items == 576
        assert parsed.order == 1
        assert parsed.ticks_per_package(36) == 250

    def test_from_element_name_rejects_malformed(self):
        with pytest.raises(FlowError):
            PacketFlow.from_element_name("P0", "P1_576_1")

    def test_from_element_name_rejects_non_numeric(self):
        with pytest.raises(FlowError):
            PacketFlow.from_element_name("P0", "P1_x_1_250")

    def test_rejects_self_loop(self):
        with pytest.raises(FlowError):
            self.flow(target="P0")

    def test_rejects_zero_items(self):
        with pytest.raises(FlowError):
            self.flow(data_items=0)

    def test_rejects_zero_order(self):
        with pytest.raises(FlowError):
            self.flow(order=0)

    def test_rejects_empty_names(self):
        with pytest.raises(FlowError):
            self.flow(source="")

    def test_packages_rejects_bad_size(self):
        with pytest.raises(FlowError):
            self.flow().packages(-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            self.flow().data_items = 1
