"""Fuzzing the XML parsers: arbitrary input must fail cleanly.

The parsers' contract: any input either parses into a valid model or
raises :class:`~repro.errors.XMLFormatError` (or a PSDF validation error
for structurally broken applications) — never a bare ``KeyError``,
``IndexError`` or similar from half-parsed state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SegBusError
from repro.xmlio.psdf_parser import parse_psdf_xml
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_parser import parse_psm_xml
from repro.xmlio.psm_writer import psm_to_xml
from repro.psdf.generators import random_dag_psdf
from repro.xmlio.schema_writer import XS_NS


@given(st.text(max_size=400))
@settings(max_examples=120, deadline=None)
def test_psdf_parser_never_crashes_on_garbage(text):
    try:
        parse_psdf_xml(text)
    except SegBusError:
        pass  # the contract: library errors only


@given(st.text(max_size=400))
@settings(max_examples=120, deadline=None)
def test_psm_parser_never_crashes_on_garbage(text):
    try:
        parse_psm_xml(text)
    except SegBusError:
        pass


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["element", "complexType", "all"]),
            st.text(
                alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
                min_size=1,
                max_size=8,
            ),
        ),
        max_size=6,
    )
)
@settings(max_examples=80, deadline=None)
def test_structured_but_wrong_schemes_fail_cleanly(parts):
    """Well-formed XML with plausible-looking but wrong structure."""
    body = "".join(
        f'<xs:{tag} name="{name}" type="{name}"/>' for tag, name in parts
    )
    text = f'<xs:schema xmlns:xs="{XS_NS}">{body}</xs:schema>'
    for parse in (parse_psdf_xml, parse_psm_xml):
        try:
            parse(text)
        except SegBusError:
            pass


@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=5000),
    mutation=st.sampled_from(
        ["truncate_half", "drop_line", "duplicate_line", "strip_quotes"]
    ),
)
@settings(max_examples=60, deadline=None)
def test_mutated_valid_schemes_fail_cleanly(n, seed, mutation):
    """Corrupted versions of genuinely generated schemes."""
    graph = random_dag_psdf(n, seed=seed)
    text = psdf_to_xml(graph, 36)
    lines = text.splitlines()
    if mutation == "truncate_half":
        mutated = text[: len(text) // 2]
    elif mutation == "drop_line":
        mutated = "\n".join(lines[: len(lines) // 2] + lines[len(lines) // 2 + 1:])
    elif mutation == "duplicate_line":
        middle = len(lines) // 2
        mutated = "\n".join(lines[:middle] + [lines[middle]] + lines[middle:])
    else:
        mutated = text.replace('"', "", 4)
    try:
        parse_psdf_xml(mutated)
    except SegBusError:
        pass
