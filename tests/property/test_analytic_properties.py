"""Property test: the analytic estimate lower-bounds the emulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.analytic import analytic_estimate
from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.psdf.generators import random_dag_psdf


@st.composite
def scenario(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=9999))
    graph = random_dag_psdf(n, seed=seed, max_items=288, max_ticks=100)
    segments = draw(st.integers(min_value=1, max_value=3))
    placement = {
        name: draw(st.integers(min_value=1, max_value=segments))
        for name in graph.process_names
    }
    spec = PlatformSpec(
        package_size=draw(st.sampled_from([18, 36])),
        segment_frequencies_mhz={
            i: float(draw(st.sampled_from([89, 98, 100, 111])))
            for i in range(1, segments + 1)
        },
        ca_frequency_mhz=111.0,
        placement=placement,
    )
    config = draw(
        st.sampled_from([EmulationConfig.emulator(), EmulationConfig.reference()])
    )
    return graph, spec, config


@given(scenario())
@settings(max_examples=60, deadline=None)
def test_analytic_is_a_lower_bound_up_to_alignment(sc):
    graph, spec, config = sc
    estimate = analytic_estimate(graph, spec, config)
    emulated = Simulation(graph, spec, config).run()
    # The analytic walk charges inter-clock-domain alignment as a full tick
    # per BU crossing where the kernel's edge alignment is fractional, so
    # the bound holds up to one slowest-clock tick per crossing package-hop
    # (plus one CA tick of end rounding).
    slowest_period = max(
        segment.clock.period_fs for segment in emulated.segments.values()
    )
    crossings = sum(
        bu.counters.output_packages for bu in emulated.bus_units.values()
    )
    slack = crossings * slowest_period + 2 * emulated.ca.clock.period_fs
    assert estimate.execution_time_fs <= emulated.execution_time_fs() + slack


@given(scenario())
@settings(max_examples=40, deadline=None)
def test_analytic_deterministic_and_positive(sc):
    graph, spec, config = sc
    a = analytic_estimate(graph, spec, config)
    b = analytic_estimate(graph, spec, config)
    assert a.execution_time_fs == b.execution_time_fs
    assert a.execution_time_fs > 0
    assert set(a.completion_fs) == set(graph.process_names)
