"""Property-based guarantees of the fault-injection subsystem.

* a zero-rate :class:`FaultPlan` is an exact no-op: the run is
  bit-identical to the fault-free baseline regardless of the seed;
* a faulty run is deterministic: the same plan twice gives identical
  counters and timing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.kernel import PlatformSpec, Simulation
from repro.faults import FaultPlan, RetryPolicy
from repro.psdf.generators import random_dag_psdf


def _scenario(seed: int):
    graph = random_dag_psdf(6, seed=seed, max_items=216, max_ticks=90)
    placement = {
        name: 1 + (i % 2) for i, name in enumerate(graph.process_names)
    }
    spec = PlatformSpec(
        package_size=18,
        segment_frequencies_mhz={1: 91.0, 2: 98.0},
        ca_frequency_mhz=111.0,
        placement=placement,
    )
    return graph, spec


def _snapshot(sim: Simulation) -> tuple:
    return (
        sim.execution_time_fs(),
        sim.queue.executed,
        sim.global_end_fs,
        tuple(
            (
                s.counters.grants,
                s.counters.intra_requests,
                s.counters.inter_requests,
                s.counters.nacks,
                s.counters.retries,
            )
            for s in sim.segments.values()
        ),
        (
            sim.ca.counters.inter_requests,
            sim.ca.counters.grants,
            sim.ca.counters.nacks,
            sim.ca.counters.retries,
        ),
        tuple(
            (c.start_fs, c.end_fs, c.packages_sent, c.packages_received)
            for c in sim.process_counters.values()
        ),
        sim.degraded,
    )


@given(
    scenario_seed=st.integers(min_value=0, max_value=999),
    plan_seed=st.integers(min_value=0, max_value=2**32),
)
@settings(max_examples=25, deadline=None)
def test_zero_rate_plan_is_bit_identical_to_baseline(scenario_seed, plan_seed):
    graph, spec = _scenario(scenario_seed)
    baseline = Simulation(graph, spec).run()
    nulled = Simulation(
        graph, spec, fault_plan=FaultPlan.transient(seed=plan_seed)
    ).run()
    assert _snapshot(nulled) == _snapshot(baseline)


@given(
    scenario_seed=st.integers(min_value=0, max_value=999),
    plan_seed=st.integers(min_value=0, max_value=2**32),
    rate=st.sampled_from([0.01, 0.05, 0.1]),
)
@settings(max_examples=15, deadline=None)
def test_faulty_runs_are_deterministic(scenario_seed, plan_seed, rate):
    graph, spec = _scenario(scenario_seed)
    plan = FaultPlan.transient(seed=plan_seed, corruption_rate=rate)
    policy = RetryPolicy(max_attempts=10, on_exhaustion="degrade")
    a = Simulation(graph, spec, fault_plan=plan, retry_policy=policy).run()
    b = Simulation(graph, spec, fault_plan=plan, retry_policy=policy).run()
    assert _snapshot(a) == _snapshot(b)


@given(plan_seed=st.integers(min_value=0, max_value=2**32))
@settings(max_examples=20, deadline=None)
def test_zero_rate_report_listing_identical(plan_seed):
    graph, spec = _scenario(0)
    from repro.emulator.report import build_report

    baseline = build_report(Simulation(graph, spec).run())
    nulled = build_report(
        Simulation(
            graph, spec, fault_plan=FaultPlan.transient(seed=plan_seed)
        ).run()
    )
    assert nulled.to_json() == baseline.to_json()
    assert nulled.format_listing() == baseline.format_listing()
