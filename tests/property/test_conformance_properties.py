"""Property test: every random run conforms to the protocol invariants.

An independent observer (the conformance checker) validates what the kernel
did, over random applications, placements, clock plans, fidelity configs
and both inter-segment protocols.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.conformance import check_conformance
from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.trace import Tracer
from repro.psdf.generators import random_dag_psdf


@st.composite
def scenario(draw):
    n = draw(st.integers(min_value=2, max_value=9))
    seed = draw(st.integers(min_value=0, max_value=9999))
    graph = random_dag_psdf(n, seed=seed, max_items=288, max_ticks=90)
    segments = draw(st.integers(min_value=1, max_value=3))
    placement = {
        name: draw(st.integers(min_value=1, max_value=segments))
        for name in graph.process_names
    }
    spec = PlatformSpec(
        package_size=draw(st.sampled_from([18, 36])),
        segment_frequencies_mhz={
            i: float(draw(st.sampled_from([89, 91, 98, 111])))
            for i in range(1, segments + 1)
        },
        ca_frequency_mhz=111.0,
        placement=placement,
    )
    config = draw(
        st.sampled_from(
            [
                EmulationConfig.emulator(),
                EmulationConfig.reference(),
                EmulationConfig(inter_segment_protocol="store-and-forward"),
                EmulationConfig.reference().with_overrides(
                    inter_segment_protocol="store-and-forward"
                ),
            ]
        )
    )
    return graph, spec, config


@given(scenario())
@settings(max_examples=60, deadline=None)
def test_every_random_run_is_conformant(sc):
    graph, spec, config = sc
    tracer = Tracer()
    sim = Simulation(graph, spec, config=config, tracer=tracer).run()
    report = check_conformance(sim, tracer)
    assert report.ok, report.violations


@given(scenario())
@settings(max_examples=30, deadline=None)
def test_protocols_agree_on_package_accounting(sc):
    graph, spec, _ = sc
    circuit = Simulation(graph, spec, EmulationConfig.emulator()).run()
    snf = Simulation(
        graph, spec, EmulationConfig(inter_segment_protocol="store-and-forward")
    ).run()
    for pair in circuit.bus_units:
        assert (
            circuit.bus_units[pair].counters.input_packages
            == snf.bus_units[pair].counters.input_packages
        )
    for name in circuit.process_counters:
        assert (
            circuit.process_counters[name].packages_received
            == snf.process_counters[name].packages_received
        )
