"""Property-based tests: XML schemes round-trip arbitrary valid models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.mapping import Allocation, map_application
from repro.psdf.generators import random_dag_psdf
from repro.xmlio.roundtrip import psdf_roundtrip, psm_roundtrip


@given(
    n=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=9999),
    size=st.sampled_from([9, 18, 36, 72]),
)
@settings(max_examples=40, deadline=None)
def test_psdf_roundtrip_any_random_dag(n, seed, size):
    graph = random_dag_psdf(n, seed=seed)
    parsed = psdf_roundtrip(graph, size)  # raises on any fidelity loss
    assert parsed.process_count == n


@given(
    n=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=9999),
    segments=st.integers(min_value=1, max_value=3),
    size=st.sampled_from([18, 36]),
)
@settings(max_examples=40, deadline=None)
def test_psm_roundtrip_any_platform(n, seed, segments, size):
    segments = min(segments, n)  # every segment needs at least one FU
    graph = random_dag_psdf(n, seed=seed)
    names = list(graph.process_names)
    groups = [[] for _ in range(segments)]
    for i, name in enumerate(names):
        groups[i % segments].append(name)
    psm = map_application(
        graph,
        Allocation.from_groups(groups),
        segment_frequencies_mhz=[91 + 7 * i for i in range(segments)],
        ca_frequency_mhz=111,
        package_size=size,
    )
    parsed = psm_roundtrip(psm.platform)  # raises on any fidelity loss
    assert parsed.segment_count == segments
