"""Serving equivalence: served bytes == direct library bytes, per engine.

The ENG-1 contract lifted to the HTTP boundary: for every job kind and
every engine, the body a real server answers with must be byte-identical
to ``response_bytes(execute_job(parse_job(payload)))`` computed directly
in-process — digest for digest.  Emulate digests must additionally agree
*across* engines (tick-for-tick equivalence), while cache hits must
replay the very same bytes the miss produced.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.emulator.fastkernel import ENGINE_NAMES
from repro.serve.jobs import execute_job, parse_job, response_bytes
from repro.serve.loadgen import serving_corpus
from repro.serve.server import create_server
from repro.serve.service import SegbusService, ServiceConfig


@pytest.fixture(scope="module")
def equivalence_server():
    service = SegbusService(
        ServiceConfig(workers=1, batch_window_s=0.0, queue_depth=256)
    )
    server = create_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    service.stop()


def _post(server, payload):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        conn.request("POST", "/v1/jobs", body=json.dumps(payload))
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _corpus():
    # two generated lint-clean models (inline schemes) plus one curated
    # workload — enough shape diversity to exercise the loaders, the
    # workload path and the multimode path
    payloads = serving_corpus(generated=2, base_seed=31415)
    payloads.append({"kind": "emulate", "workload": "bursty"})
    return payloads


class TestServedEquivalence:
    @pytest.mark.parametrize("engine", ENGINE_NAMES)
    def test_emulate_bytes_match_direct_execution(
        self, equivalence_server, engine
    ):
        for payload in _corpus():
            stamped = {**payload, "engine": engine}
            status, served = _post(equivalence_server, stamped)
            assert status == 200
            expected = response_bytes(execute_job(parse_job(stamped)))
            assert served == expected

    def test_emulate_digests_agree_across_engines(self, equivalence_server):
        for payload in _corpus():
            digests = set()
            for engine in ENGINE_NAMES:
                status, served = _post(
                    equivalence_server, {**payload, "engine": engine}
                )
                assert status == 200
                digests.add(json.loads(served)["digest"])
            assert len(digests) == 1  # tick-for-tick across engines

    @pytest.mark.parametrize("kind", ("estimate", "lint"))
    def test_analysis_kinds_match_direct_execution(
        self, equivalence_server, kind
    ):
        payload = dict(_corpus()[0])
        payload["kind"] = kind
        status, served = _post(equivalence_server, payload)
        assert status == 200
        assert served == response_bytes(execute_job(parse_job(payload)))

    def test_selftest_matches_direct_execution(self, equivalence_server):
        payload = {"kind": "selftest", "count": 2, "seed": 11}
        status, served = _post(equivalence_server, payload)
        assert status == 200
        assert served == response_bytes(execute_job(parse_job(payload)))

    def test_cache_hits_replay_the_miss_bytes(self, equivalence_server):
        payload = {**_corpus()[0], "engine": "fast"}
        _, first = _post(equivalence_server, payload)
        _, second = _post(equivalence_server, payload)
        assert first == second

    def test_multimode_workload_served_equivalently(self, equivalence_server):
        payload = {"kind": "emulate", "workload": "mp3_jpeg_multimode"}
        digests = set()
        for engine in ENGINE_NAMES:
            stamped = {**payload, "engine": engine}
            status, served = _post(equivalence_server, stamped)
            assert status == 200
            assert served == response_bytes(execute_job(parse_job(stamped)))
            digests.add(json.loads(served)["digest"])
        assert len(digests) == 1
