"""Property-based tests on placement cost and solvers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placement.cost import balance_penalty, objective, placement_cost
from repro.placement.greedy import greedy_placement
from repro.placement.kernighan_lin import refine_placement
from repro.psdf.generators import random_dag_psdf
from repro.psdf.matrix import build_communication_matrix


@st.composite
def matrix_and_segments(draw):
    n = draw(st.integers(min_value=3, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=9999))
    segments = draw(st.integers(min_value=1, max_value=min(4, n)))
    return build_communication_matrix(random_dag_psdf(n, seed=seed)), segments


@given(matrix_and_segments())
@settings(max_examples=40, deadline=None)
def test_greedy_is_feasible(ms):
    matrix, segments = ms
    placement = greedy_placement(matrix, segments)
    assert set(placement) == set(matrix.names)
    assert set(placement.values()) == set(range(1, segments + 1))


@given(matrix_and_segments())
@settings(max_examples=40, deadline=None)
def test_single_segment_costs_nothing(ms):
    matrix, _ = ms
    placement = {name: 1 for name in matrix.names}
    assert placement_cost(matrix, placement, 1) == 0
    assert balance_penalty(placement, 1) == 0


@given(matrix_and_segments())
@settings(max_examples=40, deadline=None)
def test_refinement_never_worsens(ms):
    matrix, segments = ms
    start = greedy_placement(matrix, segments)
    refined = refine_placement(matrix, start, segments)
    assert objective(matrix, refined, segments) <= objective(
        matrix, start, segments
    )
    # feasibility preserved
    assert set(refined.values()) == set(range(1, segments + 1))


@given(matrix_and_segments())
@settings(max_examples=40, deadline=None)
def test_cost_equals_hop_weighted_cut(ms):
    matrix, segments = ms
    placement = greedy_placement(matrix, segments)
    expected = sum(
        items * abs(placement[a] - placement[b])
        for a, b, items in matrix.pairs()
    )
    assert placement_cost(matrix, placement, segments) == expected


@given(matrix_and_segments())
@settings(max_examples=40, deadline=None)
def test_cut_items_lower_bounds_hop_cost(ms):
    matrix, segments = ms
    placement = greedy_placement(matrix, segments)
    assert matrix.cut_items(placement) <= placement_cost(
        matrix, placement, segments
    )
