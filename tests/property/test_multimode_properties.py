"""Multi-mode properties: liveness, engine lift, zero-cost degeneration.

Three laws over random mode-switch schedules on lint-clean inputs:

* **liveness** — any seeded schedule over well-formed modes executes to
  completion (the kernels' end-of-iteration invariants are the drain, so
  no schedule can deadlock a switch);
* **engine lift** — the composed trace/timeline/report digests are
  byte-identical across the stepped, fast and batch kernels for every
  schedule (ENG-1 lifted to mode-switch traces);
* **zero-cost degeneration** — with a zero :class:`TransitionSpec` the
  composition collapses to the exact sum of per-mode runs, and the
  stochastic estimate stays inside the documented SAN-1 band.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stochastic import stochastic_estimate_multimode
from repro.emulator.fastkernel import ENGINE_NAMES
from repro.emulator.kernel import PlatformSpec
from repro.emulator.multimode import run_multimode
from repro.model.mapping import Allocation, map_application
from repro.psdf.graph import PSDFGraph
from repro.psdf.modes import (
    ModePhase,
    ModeSchedule,
    MultiModeApplication,
    TransitionSpec,
)

_MODES = {
    "lo": PSDFGraph.from_edges(
        [("A", "B", 36, 1, 10), ("B", "C", 36, 2, 10)], name="lo"
    ),
    "hi": PSDFGraph.from_edges(
        [("A", "B", 72, 1, 20), ("B", "C", 72, 2, 20)], name="hi"
    ),
    "burst": PSDFGraph.from_edges(
        [("A", "B", 108, 1, 5), ("B", "C", 36, 2, 15)], name="burst"
    ),
}

_SPEC = PlatformSpec.from_platform(
    map_application(
        _MODES["lo"],
        Allocation.from_groups([("A", "B"), ("C",)]),
        segment_frequencies_mhz=(100.0, 100.0),
        ca_frequency_mhz=120.0,
        package_size=36,
        name="PropToy",
    ).platform
)


def _app(seed, transition):
    schedule = ModeSchedule.seeded(
        seed,
        tuple(sorted(_MODES)),
        phase_count=5,
        transition=transition,
        dwell_probability=0.2,
        max_dwell_ticks=4096,
    )
    return MultiModeApplication(
        name=f"prop_{seed}", modes=_MODES, schedule=schedule
    )


transitions = st.builds(
    TransitionSpec,
    reconfig_ticks=st.integers(min_value=0, max_value=200),
    flush_ticks_per_bu=st.integers(min_value=0, max_value=20),
)


class TestLiveness:
    @given(seed=st.integers(min_value=0, max_value=10**6),
           transition=transitions)
    @settings(max_examples=20, deadline=None)
    def test_random_schedules_never_deadlock(self, seed, transition):
        composed = run_multimode(_app(seed, transition), _SPEC)
        assert composed.execution_time_fs > 0
        assert len(composed.phases) == 5
        assert all(p.iterations >= 1 for p in composed.phases)

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_transition_charges_match_switch_count(self, seed):
        transition = TransitionSpec(reconfig_ticks=7, flush_ticks_per_bu=1)
        composed = run_multimode(_app(seed, transition), _SPEC)
        charged = sum(1 for p in composed.phases if p.transition_after_fs)
        assert charged == composed.switch_count
        assert composed.switch_count <= len(composed.phases) - 1


class TestEngineLift:
    @given(seed=st.integers(min_value=0, max_value=10**6),
           transition=transitions)
    @settings(max_examples=10, deadline=None)
    def test_composed_digests_identical_across_engines(self, seed, transition):
        app = _app(seed, transition)
        observed = [
            run_multimode(app, _SPEC, engine=engine)
            for engine in ENGINE_NAMES
        ]
        reference = observed[0]
        for composed in observed[1:]:
            assert composed.trace_digest() == reference.trace_digest()
            assert composed.timeline_digest() == reference.timeline_digest()
            assert composed.report_digest() == reference.report_digest()
            assert composed.execution_time_fs == reference.execution_time_fs


class TestZeroCostDegeneration:
    @given(mode=st.sampled_from(sorted(_MODES)),
           count=st.integers(min_value=1, max_value=4))
    @settings(max_examples=12, deadline=None)
    def test_same_mode_phases_sum_exactly(self, mode, count):
        app = MultiModeApplication(
            name="flat",
            modes=_MODES,
            schedule=ModeSchedule(
                phases=tuple(ModePhase(mode) for _ in range(count)),
                transition=TransitionSpec(),
            ),
        )
        composed = run_multimode(app, _SPEC)
        single = composed.mode_runs[mode].iteration_fs
        assert composed.transition_total_fs == 0
        assert composed.execution_time_fs == count * single

    @given(seed=st.integers(min_value=1, max_value=50))
    @settings(max_examples=6, deadline=None)
    def test_stochastic_band_holds_with_zero_transition(self, seed):
        # SAN-1 on lint-clean *generated* applications: force the
        # transition to zero so the band is purely the per-mode estimator
        from repro.psdf.modes import MultiModeApplication as MMA
        from repro.testing.generators import generate_multimode_model

        model = generate_multimode_model(seed)
        app = MMA(
            name=model.application.name,
            modes=model.application.modes,
            schedule=ModeSchedule(
                phases=model.application.schedule.phases,
                transition=TransitionSpec(),
            ),
        )
        spec = PlatformSpec.from_platform(model.platform)
        composed = run_multimode(app, spec)
        estimate = stochastic_estimate_multimode(app, spec)
        error = abs(
            estimate.execution_time_fs - composed.execution_time_fs
        ) / composed.execution_time_fs
        assert error <= 0.15
        assert estimate.analytic_fs <= estimate.execution_time_fs
