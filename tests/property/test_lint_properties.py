"""Lint soundness properties: static acceptance implies dynamic health.

The contract between the static analyzer and the emulator, stated as a
property: any model that passes the full SB1xx–SB3xx rule registry with a
clean report must emulate to completion — no ``DeadlockError``, no
``StallError``, no watchdog trip — under the default emulation budgets.
The seeded random generator produces exactly such models, so Hypothesis
drives seeds (not raw structures) and the property checks the whole
pipeline: generate -> lint-clean -> emulate -> conformant.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.monitor import emulation_finished
from repro.lint import lint_models
from repro.testing.generators import GeneratorProfile, generate_model

seeds = st.integers(min_value=0, max_value=10_000_000)


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_lint_clean_models_emulate_without_deadlock(seed):
    model = generate_model(seed)
    # generation already verified lint-cleanliness; re-assert the premise
    # so a generator regression fails here with the seed in hand
    report = lint_models(
        application=model.application, platform=model.platform
    )
    assert report.exit_code == 0, report
    # default budgets: default EmulationConfig, default watchdog — a
    # DeadlockError/StallError would propagate and fail the test
    sim = Simulation(
        model.application, PlatformSpec.from_platform(model.platform)
    ).run()
    assert emulation_finished(sim)
    assert sim.execution_time_fs() > 0


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_generation_is_deterministic(seed):
    a = generate_model(seed)
    b = generate_model(seed)
    assert a.attempts == b.attempts
    assert a.application.flows == b.application.flows
    assert a.platform.package_size == b.platform.package_size
    assert a.platform.process_placement() == b.platform.process_placement()


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_wider_profile_still_lint_clean(seed):
    profile = GeneratorProfile(
        min_processes=6,
        max_processes=12,
        max_segments=4,
        package_sizes=(9, 18, 36, 72),
    )
    model = generate_model(seed, profile)
    assert (
        lint_models(
            application=model.application, platform=model.platform
        ).exit_code
        == 0
    )
    sim = Simulation(
        model.application, PlatformSpec.from_platform(model.platform)
    ).run()
    assert emulation_finished(sim)
