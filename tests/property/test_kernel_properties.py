"""Property-based tests on the emulator kernel's invariants.

For arbitrary well-formed applications, placements and clock plans the
kernel must satisfy:

* termination with all flags high and clean platform state;
* package conservation (sent == received == schedule total);
* BU flow balance (input == output per BU, TCT >= UP);
* monotonicity: higher-fidelity configs never make execution faster;
* determinism: identical inputs give identical counters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.monitor import emulation_finished
from repro.psdf.generators import random_dag_psdf


@st.composite
def scenario(draw):
    """A random (graph, spec) pair that is well-formed by construction."""
    n = draw(st.integers(min_value=2, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=9999))
    graph = random_dag_psdf(n, seed=seed, max_items=360, max_ticks=120)
    segments = draw(st.integers(min_value=1, max_value=4))
    placement = {
        name: draw(st.integers(min_value=1, max_value=segments))
        for name in graph.process_names
    }
    freqs = {
        i: float(draw(st.sampled_from([80, 91, 98, 100, 111, 125])))
        for i in range(1, segments + 1)
    }
    ca = float(draw(st.sampled_from([100, 111, 133])))
    package_size = draw(st.sampled_from([9, 18, 36]))
    spec = PlatformSpec(
        package_size=package_size,
        segment_frequencies_mhz=freqs,
        ca_frequency_mhz=ca,
        placement=placement,
    )
    return graph, spec


@given(scenario())
@settings(max_examples=50, deadline=None)
def test_terminates_clean(sc):
    graph, spec = sc
    sim = Simulation(graph, spec).run()
    assert emulation_finished(sim)


@given(scenario())
@settings(max_examples=50, deadline=None)
def test_package_conservation(sc):
    graph, spec = sc
    sim = Simulation(graph, spec).run()
    total = graph.total_packages(spec.package_size)
    sent = sum(c.packages_sent for c in sim.process_counters.values())
    received = sum(c.packages_received for c in sim.process_counters.values())
    assert sent == received == total


@given(scenario())
@settings(max_examples=50, deadline=None)
def test_bu_flow_balance(sc):
    graph, spec = sc
    sim = Simulation(graph, spec).run()
    for bu in sim.bus_units.values():
        c = bu.counters
        assert c.input_packages == c.output_packages
        assert c.received_from_left + c.received_from_right == c.input_packages
        assert c.transferred_to_left + c.transferred_to_right == c.output_packages
        # TCT >= UP: waiting periods are non-negative
        assert c.tct >= 2 * spec.package_size * c.output_packages


@given(scenario())
@settings(max_examples=30, deadline=None)
def test_reference_never_faster(sc):
    graph, spec = sc
    fast = Simulation(graph, spec, EmulationConfig.emulator()).run()
    slow = Simulation(graph, spec, EmulationConfig.reference()).run()
    assert slow.execution_time_fs() >= fast.execution_time_fs()


@given(scenario())
@settings(max_examples=30, deadline=None)
def test_deterministic(sc):
    graph, spec = sc
    a = Simulation(graph, spec).run()
    b = Simulation(graph, spec).run()
    assert a.execution_time_fs() == b.execution_time_fs()
    assert a.ca.counters.tct == b.ca.counters.tct
    for index in a.segments:
        assert a.segments[index].counters.intra_requests == \
            b.segments[index].counters.intra_requests


@given(scenario())
@settings(max_examples=30, deadline=None)
def test_execution_time_dominates_every_process_end(sc):
    graph, spec = sc
    sim = Simulation(graph, spec).run()
    exec_fs = sim.execution_time_fs()
    for counters in sim.process_counters.values():
        assert counters.end_fs is not None
        assert counters.end_fs <= exec_fs


@given(scenario())
@settings(max_examples=30, deadline=None)
def test_request_counters_bound_packages(sc):
    graph, spec = sc
    sim = Simulation(graph, spec).run()
    schedule_total = graph.total_packages(spec.package_size)
    intra = sum(s.counters.grants for s in sim.segments.values())
    inter = sum(s.counters.inter_requests for s in sim.segments.values())
    # every package is either one local grant or one inter-segment request
    assert intra + inter == schedule_total
    assert sim.ca.counters.inter_requests == inter
    assert sim.ca.counters.grants == inter
