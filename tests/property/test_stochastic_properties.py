"""Property suite for the stochastic contention estimator (SAN-1 band).

Two invariants, asserted across the random model generators:

- the stochastic estimate is never below the analytic lower bound
  (contention only ever adds time), and
- it lands within the SAN-1 error band of the *emulated* TCT — on every
  engine, which is trivially one check because the engines are
  digest-identical, but we assert it against each anyway so a future
  engine divergence cannot hide behind the estimator tolerance.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.analytic import analytic_estimate
from repro.analysis.stochastic import stochastic_estimate
from repro.emulator.batchkernel import BatchSimulation
from repro.emulator.config import EmulationConfig
from repro.emulator.fastkernel import FastSimulation
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.testing.generators import generate_model
from repro.testing.oracles import OracleTolerance

ENGINES = (Simulation, FastSimulation, BatchSimulation)

seeds = st.integers(min_value=1, max_value=50_000)


@given(seed=seeds)
@settings(max_examples=25, deadline=None)
def test_estimate_dominates_analytic_bound(seed):
    model = generate_model(seed)
    spec = PlatformSpec.from_platform(model.platform)
    config = EmulationConfig()
    estimate = stochastic_estimate(model.application, spec, config)
    analytic = analytic_estimate(model.application, spec, config)
    assert estimate.execution_time_fs >= analytic.execution_time_fs
    assert estimate.contention_fs >= 0
    assert estimate.contention_ratio >= 1.0


@given(seed=seeds)
@settings(max_examples=10, deadline=None)
def test_estimate_within_san1_band_of_every_engine(seed):
    model = generate_model(seed)
    spec = PlatformSpec.from_platform(model.platform)
    config = EmulationConfig()
    band = OracleTolerance().stochastic_error_max
    estimated = stochastic_estimate(
        model.application, spec, config
    ).execution_time_fs
    for engine_cls in ENGINES:
        emulated = engine_cls(
            model.application, spec, config
        ).run().execution_time_fs()
        error = abs(estimated - emulated) / emulated
        assert error <= band, (
            f"{model.label} vs {engine_cls.__name__}: err {error:.3f} "
            f"exceeds the SAN-1 band {band}"
        )


@given(seed=seeds)
@settings(max_examples=25, deadline=None)
def test_resource_models_are_internally_consistent(seed):
    model = generate_model(seed)
    spec = PlatformSpec.from_platform(model.platform)
    estimate = stochastic_estimate(model.application, spec)
    gauges = [estimate.ca, *estimate.segments.values(),
              *estimate.border_units.values()]
    for q in gauges:
        assert q.window_fs == estimate.analytic_fs
        assert q.utilization >= 0.0
        assert q.mean_wait_fs >= 0.0
        assert q.mean_queue_depth >= 0.0
        dist = q.occupancy_distribution()
        assert abs(sum(dist) - 1.0) < 1e-9
