"""Property-based tests on the PSDF data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.psdf.flow import FlowCost, PacketFlow
from repro.psdf.generators import random_dag_psdf
from repro.psdf.matrix import build_communication_matrix
from repro.psdf.packetize import packages_for_items, split_into_packages
from repro.psdf.schedule import extract_schedule

sizes = st.integers(min_value=1, max_value=256)
items = st.integers(min_value=0, max_value=100_000)


class TestPacketizationProperties:
    @given(items=items, size=sizes)
    def test_package_count_is_minimal_cover(self, items, size):
        count = packages_for_items(items, size)
        assert count * size >= items
        assert (count - 1) * size < items or count == 0

    @given(items=st.integers(min_value=1, max_value=10_000), size=sizes)
    def test_split_conserves_items(self, items, size):
        packages = split_into_packages("A", "B", items, size)
        assert sum(p.payload_items for p in packages) == items
        assert len(packages) == packages_for_items(items, size)

    @given(items=st.integers(min_value=1, max_value=10_000), size=sizes)
    def test_only_last_package_partial(self, items, size):
        packages = split_into_packages("A", "B", items, size)
        for package in packages[:-1]:
            assert package.payload_items == size
        assert 0 < packages[-1].payload_items <= size

    @given(
        c_fixed=st.integers(min_value=0, max_value=1000),
        c_item=st.integers(min_value=0, max_value=100),
        size=sizes,
    )
    def test_cost_monotone_in_package_size(self, c_fixed, c_item, size):
        if c_fixed == 0 and c_item == 0:
            return
        cost = FlowCost(c_fixed=c_fixed, c_item=c_item)
        assert cost.ticks(size + 1) >= cost.ticks(size)

    @given(
        ticks=st.integers(min_value=1, max_value=5000),
        size=st.integers(min_value=1, max_value=128),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_calibrated_cost_exact_at_anchor(self, ticks, size, fraction):
        assert FlowCost.calibrated(ticks, size, fraction).ticks(size) == ticks


class TestElementNameProperties:
    @given(
        items=st.integers(min_value=1, max_value=100_000),
        order=st.integers(min_value=1, max_value=1000),
        ticks=st.integers(min_value=1, max_value=100_000),
    )
    def test_element_name_codec_roundtrips(self, items, order, ticks):
        flow = PacketFlow(
            source="P0",
            target="P1",
            data_items=items,
            order=order,
            cost=FlowCost.constant(ticks),
        )
        parsed = PacketFlow.from_element_name("P0", flow.element_name(36))
        assert (parsed.target, parsed.data_items, parsed.order) == (
            "P1",
            items,
            order,
        )
        assert parsed.ticks_per_package(36) == ticks


class TestGraphProperties:
    @given(
        n=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_dag_always_valid(self, n, seed):
        graph = random_dag_psdf(n, seed=seed)
        order = graph.topological_order()
        assert len(order) == n
        position = {name: i for i, name in enumerate(order)}
        for flow in graph.flows:
            assert position[flow.source] < position[flow.target]

    @given(
        n=st.integers(min_value=2, max_value=15),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_matrix_totals_match_graph(self, n, seed):
        graph = random_dag_psdf(n, seed=seed)
        matrix = build_communication_matrix(graph)
        assert matrix.total_items() == graph.total_data_items()
        assert int(matrix.array.sum()) == graph.total_data_items()

    @given(
        n=st.integers(min_value=2, max_value=15),
        seed=st.integers(min_value=0, max_value=10_000),
        size=st.sampled_from([9, 18, 36, 72]),
    )
    @settings(max_examples=30, deadline=None)
    def test_schedule_conserves_packages(self, n, seed, size):
        graph = random_dag_psdf(n, seed=seed)
        schedule = extract_schedule(graph, size)
        # total inputs expected == total packages sent
        assert sum(schedule.inputs_of.values()) == schedule.total_packages()
        assert schedule.total_packages() == graph.total_packages(size)

    @given(
        n=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_cut_items_bounded_by_total(self, n, seed):
        graph = random_dag_psdf(n, seed=seed)
        matrix = build_communication_matrix(graph)
        rng = np.random.default_rng(seed)
        partition = {
            name: int(rng.integers(1, 4)) for name in graph.process_names
        }
        assert 0 <= matrix.cut_items(partition) <= matrix.total_items()
