"""Property tests on granularity transformations."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.granularity import merge_processes, split_process
from repro.errors import PSDFError
from repro.psdf.generators import random_dag_psdf


@st.composite
def graph_and_edge(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=9999))
    graph = random_dag_psdf(n, seed=seed)
    flow = draw(st.sampled_from(list(graph.flows)))
    return graph, flow


@given(graph_and_edge())
@settings(max_examples=60, deadline=None)
def test_merge_conserves_external_traffic(ge):
    graph, flow = ge
    try:
        merged = merge_processes(graph, flow.source, flow.target)
    except PSDFError:
        assume(False)  # cycle-creating merge: out of scope for this property
        return
    internal = sum(
        f.data_items
        for f in graph.flows
        if {f.source, f.target} == {flow.source, flow.target}
    )
    assert merged.total_data_items() == graph.total_data_items() - internal
    assert len(merged) == len(graph) - 1
    merged.topological_order()  # still a DAG


@given(graph_and_edge())
@settings(max_examples=60, deadline=None)
def test_split_conserves_and_adds_internal_flow(ge):
    graph, flow = ge
    source = flow.source
    outgoing = graph.outgoing(source)
    assume(len(outgoing) >= 2)
    moved = outgoing[-1].target
    split = split_process(graph, source, [moved])
    moved_items = graph.flow(source, moved).data_items
    # external traffic unchanged; one internal flow added
    assert split.total_data_items() == graph.total_data_items() + moved_items
    assert len(split) == len(graph) + 1
    split.topological_order()


@given(graph_and_edge())
@settings(max_examples=40, deadline=None)
def test_merge_never_invents_flows(ge):
    graph, flow = ge
    try:
        merged = merge_processes(graph, flow.source, flow.target, "M")
    except PSDFError:
        assume(False)
        return
    pair = {flow.source, flow.target}

    def external(name):
        return "M" if name in pair else name

    expected_pairs = {
        (external(f.source), external(f.target))
        for f in graph.flows
        if not ({f.source, f.target} == pair)
    }
    actual_pairs = {(f.source, f.target) for f in merged.flows}
    assert actual_pairs == expected_pairs
