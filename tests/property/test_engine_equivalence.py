"""Differential property suite: every derived engine mirrors the stepped one.

Every generated model — fault-free, under seeded transient fault plans,
with retry/timeout policies (including degraded outcomes), and under the
store-and-forward protocol — must produce *byte-identical* trace,
timeline and report digests and the same executed-event count across the
whole engine matrix: the cycle-stepped reference, the event-driven fast
kernel and the vectorized batch kernel.  This is the enforcement arm of
the engine equivalence contract (docs/PERFORMANCE.md): anything the
stepped kernel observes, the derived kernels must observe identically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.batchkernel import BatchSimulation
from repro.emulator.config import EmulationConfig
from repro.emulator.fastkernel import FastSimulation
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.report import build_report
from repro.emulator.trace import Tracer
from repro.faults import FaultPlan, RetryPolicy
from repro.testing.generators import generate_model

ENGINES = (Simulation, FastSimulation, BatchSimulation)


def _observe(engine_cls, application, spec, config=None, fault_plan=None,
             retry_policy=None):
    """Run one engine and collect everything the contract pins."""
    tracer = Tracer()
    sim = engine_cls(
        application,
        spec,
        config or EmulationConfig(),
        tracer=tracer,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    ).run()
    report = build_report(sim)
    return {
        "trace": tracer.digest(),
        "timeline": report.timeline.digest(),
        "report": report.digest(),
        "events": sim.queue.executed,
        "execution_time_fs": sim.execution_time_fs(),
        "degraded": sim.degraded,
        "failed_elements": tuple(sorted(sim.failed_elements)),
    }


def _assert_equivalent(application, spec, config=None, make_fault_plan=None,
                       retry_policy=None):
    """Every engine, fresh fault plans each (plans hold RNG state)."""
    observations = {
        engine_cls.__name__: _observe(
            engine_cls,
            application,
            spec,
            config=config,
            fault_plan=make_fault_plan() if make_fault_plan else None,
            retry_policy=retry_policy,
        )
        for engine_cls in ENGINES
    }
    reference_name = ENGINES[0].__name__
    reference = observations[reference_name]
    for name, observed in observations.items():
        assert observed == reference, (
            f"{name} diverged from {reference_name}: "
            + ", ".join(
                key for key in reference if reference[key] != observed[key]
            )
        )


class TestFaultFreeEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=50_000))
    def test_random_models_identical_digests(self, seed):
        model = generate_model(seed)
        spec = PlatformSpec.from_platform(model.platform)
        _assert_equivalent(model.application, spec)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=50_000))
    def test_reference_fidelity_config(self, seed):
        # the non-default timing knobs (grant latency, turnaround,
        # handshake, sync) exercise every f_* constant the fast engine
        # precomputes
        model = generate_model(seed)
        spec = PlatformSpec.from_platform(model.platform)
        _assert_equivalent(
            model.application, spec, config=EmulationConfig.reference()
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=1, max_value=50_000))
    def test_store_and_forward_protocol(self, seed):
        model = generate_model(seed)
        spec = PlatformSpec.from_platform(model.platform)
        _assert_equivalent(
            model.application,
            spec,
            config=EmulationConfig(
                inter_segment_protocol="store-and-forward"
            ),
        )


class TestFaultedEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=1, max_value=50_000),
        fault_seed=st.integers(min_value=1, max_value=10_000),
        corruption=st.sampled_from([0.0, 0.02, 0.08]),
        grant_loss=st.sampled_from([0.0, 0.05]),
    )
    def test_transient_faults_identical_digests(
        self, seed, fault_seed, corruption, grant_loss
    ):
        model = generate_model(seed)
        spec = PlatformSpec.from_platform(model.platform)
        _assert_equivalent(
            model.application,
            spec,
            make_fault_plan=lambda: FaultPlan.transient(
                seed=fault_seed,
                corruption_rate=corruption,
                grant_loss_rate=grant_loss,
                stall_rate=0.02,
                stall_ticks=7,
            ),
            retry_policy=RetryPolicy(max_attempts=5),
        )

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=1, max_value=50_000),
        fault_seed=st.integers(min_value=1, max_value=10_000),
    )
    def test_timeout_policy_identical_digests(self, seed, fault_seed):
        # timeout_ticks arms the CA wait bookkeeping — the one cold path
        # the fast engine guards behind its _has_timeout flag
        model = generate_model(seed)
        spec = PlatformSpec.from_platform(model.platform)
        _assert_equivalent(
            model.application,
            spec,
            make_fault_plan=lambda: FaultPlan.transient(
                seed=fault_seed, corruption_rate=0.05, bu_drop_rate=0.02
            ),
            retry_policy=RetryPolicy(
                max_attempts=6, timeout_ticks=400, on_exhaustion="degrade"
            ),
        )
