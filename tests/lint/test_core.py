"""Engine primitives: severities, findings, registry, report."""

import json

import pytest

from repro.lint.core import (
    Finding,
    LintReport,
    Rule,
    RuleRegistry,
    Severity,
    SourceLocation,
    merge_reports,
)


def make_rule(rule_id="SB900", name="test-rule", severity=Severity.ERROR):
    return Rule(
        id=rule_id,
        name=name,
        severity=severity,
        category="test",
        description="desc",
        rationale="because",
        example="example",
        check=lambda ctx: [],
        fix_hint="fix it",
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR >= Severity.ERROR
        assert max([Severity.INFO, Severity.ERROR, Severity.WARNING]) is Severity.ERROR

    def test_values_match_validation_report_strings(self):
        assert {s.value for s in Severity} == {"info", "warning", "error"}


class TestSourceLocation:
    def test_empty(self):
        loc = SourceLocation()
        assert loc.is_empty
        assert loc.to_dict() == {}
        assert str(loc) == ""

    def test_full_renders_all_parts(self):
        loc = SourceLocation(file="psm.xml", element="P3", segment=2)
        assert not loc.is_empty
        assert str(loc) == "psm.xml:segment 2:P3"
        assert loc.to_dict() == {"file": "psm.xml", "element": "P3", "segment": 2}


class TestFinding:
    def test_rule_finding_carries_defaults(self):
        rule = make_rule()
        finding = rule.finding("broken", element="P1", segment=1)
        assert finding.rule_id == "SB900"
        assert finding.severity is Severity.ERROR
        assert finding.fix_hint == "fix it"
        assert finding.location.element == "P1"

    def test_severity_override(self):
        rule = make_rule()
        finding = rule.finding("advice", severity=Severity.INFO)
        assert finding.severity is Severity.INFO

    def test_format_contains_id_severity_hint(self):
        finding = make_rule().finding("broken thing", file="m.xml")
        text = finding.format()
        assert "SB900" in text
        assert "error" in text
        assert "m.xml" in text
        assert "(hint: fix it)" in text

    def test_with_file_only_fills_blank(self):
        finding = make_rule().finding("x")
        anchored = finding.with_file("a.xml")
        assert anchored.location.file == "a.xml"
        assert anchored.with_file("b.xml").location.file == "a.xml"


class TestRegistry:
    def test_duplicate_id_rejected(self):
        registry = RuleRegistry()
        registry.register(make_rule())
        with pytest.raises(ValueError, match="duplicate lint rule id"):
            registry.register(make_rule(name="other-name"))

    def test_duplicate_name_rejected(self):
        registry = RuleRegistry()
        registry.register(make_rule())
        with pytest.raises(ValueError, match="duplicate lint rule name"):
            registry.register(make_rule(rule_id="SB901"))

    def test_iteration_in_id_order(self):
        registry = RuleRegistry()
        registry.register(make_rule(rule_id="SB902", name="b"))
        registry.register(make_rule(rule_id="SB901", name="a"))
        assert [r.id for r in registry] == ["SB901", "SB902"]

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="SB000"):
            RuleRegistry().get("SB000")

    def test_contains_and_len(self):
        registry = RuleRegistry()
        registry.register(make_rule())
        assert "SB900" in registry
        assert len(registry) == 1


class TestLintReport:
    def test_exit_codes(self):
        report = LintReport()
        assert report.exit_code == 0
        report.add(make_rule().finding("note", severity=Severity.INFO))
        assert report.exit_code == 0
        assert report.ok
        report.add(make_rule().finding("warn", severity=Severity.WARNING))
        assert report.exit_code == 1
        report.add(make_rule().finding("err"))
        assert report.exit_code == 2
        assert not report.ok

    def test_dedup(self):
        report = LintReport()
        finding = make_rule().finding("same", element="P1")
        assert report.add(finding)
        assert not report.add(make_rule().finding("same", element="P1"))
        assert len(report.findings) == 1

    def test_sorted_findings_severe_first(self):
        report = LintReport()
        report.add(make_rule().finding("a", severity=Severity.INFO))
        report.add(make_rule().finding("b", severity=Severity.ERROR))
        report.add(make_rule().finding("c", severity=Severity.WARNING))
        assert [f.severity for f in report.sorted_findings()] == [
            Severity.ERROR,
            Severity.WARNING,
            Severity.INFO,
        ]

    def test_to_dict_shape_matches_validation_report(self):
        report = LintReport(checked_rules=5, targets=["x.xml"])
        report.add(make_rule().finding("broken", element="P1", segment=2))
        data = json.loads(report.to_json())
        assert data["exit_code"] == 2
        assert data["counts"] == {"error": 1, "warning": 0, "info": 0}
        finding = data["findings"][0]
        assert finding["rule"] == "SB900"
        assert finding["severity"] == "error"
        assert finding["location"] == {"element": "P1", "segment": 2}

    def test_merge_reports_dedups_across(self):
        a, b = LintReport(targets=["a"]), LintReport(targets=["b"])
        a.add(make_rule().finding("x"))
        b.add(make_rule().finding("x"))
        b.add(make_rule().finding("y"))
        merged = merge_reports([a, b])
        assert len(merged.findings) == 2
        assert merged.targets == ["a", "b"]
