"""SB3xx: the pre-simulation hazard detector and fault-plan rules."""

import pytest

from repro.faults.model import FaultPlan, FaultRecord
from repro.lint import LintContext, default_registry, run_rules
from repro.model.builder import PlatformBuilder
from repro.psdf.flow import FlowCost, PacketFlow
from repro.psdf.process import Process, ProcessKind


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def flow(src, dst, order):
    return PacketFlow(
        source=src, target=dst, data_items=36, order=order,
        cost=FlowCost.constant(50),
    )


def three_segment_platform(placement):
    builder = PlatformBuilder("Hazard", package_size=36)
    for _ in range(3):
        builder.segment(frequency_mhz=100)
    builder.central_arbiter(frequency_mhz=100).auto_border_units()
    for name, segment in placement.items():
        builder.place(name, segment)
    platform = builder.build()
    for name in placement:
        platform.fu_of_process(name).add_master()
        platform.fu_of_process(name).add_slave()
    return platform


def lint(processes, flows, platform=None, fault_plan=None, registry=None):
    ctx = LintContext.from_models(platform=platform, fault_plan=fault_plan)
    ctx.processes = tuple(processes)
    ctx.flows = tuple(flows)
    return run_rules(ctx, registry=registry)


class TestDoubleGrant:
    def test_sb301_overlapping_paths_same_t_different_segments(self, registry):
        # seg1->seg2 and seg3->seg2 both at T=2: paths [1,2] and [2,3] overlap
        placement = {"A": 1, "B": 2, "C": 3, "D": 2}
        procs = [Process("A", ProcessKind.INITIAL), Process("C", ProcessKind.INITIAL),
                 Process("B", ProcessKind.FINAL), Process("D", ProcessKind.FINAL)]
        flows = [flow("A", "B", 2), flow("C", "D", 2)]
        report = lint(procs, flows, platform=three_segment_platform(placement),
                      registry=registry)
        assert "SB301" in report.rule_ids()

    def test_no_hazard_from_same_source_segment(self, registry):
        # equal T but both transfers issued by segment 1's SA: serialized
        placement = {"A": 1, "B": 2, "C": 1, "D": 2}
        procs = [Process("A", ProcessKind.INITIAL), Process("C", ProcessKind.INITIAL),
                 Process("B", ProcessKind.FINAL), Process("D", ProcessKind.FINAL)]
        flows = [flow("A", "B", 1), flow("C", "D", 1)]
        report = lint(procs, flows, platform=three_segment_platform(placement),
                      registry=registry)
        assert "SB301" not in report.rule_ids()

    def test_no_hazard_for_disjoint_paths(self, registry):
        # intra-segment transfers never reach the CA
        placement = {"A": 1, "B": 1, "C": 3, "D": 3}
        procs = [Process("A", ProcessKind.INITIAL), Process("C", ProcessKind.INITIAL),
                 Process("B", ProcessKind.FINAL), Process("D", ProcessKind.FINAL)]
        flows = [flow("A", "B", 1), flow("C", "D", 1)]
        report = lint(procs, flows, platform=three_segment_platform(placement),
                      registry=registry)
        assert "SB301" not in report.rule_ids()


class TestBuRace:
    def test_sb302_head_on_race(self, registry):
        # seg1->seg2 and seg3->seg1 at the same T both cross BU12,
        # in opposite directions
        placement = {"A": 1, "B": 2, "C": 3, "D": 1}
        procs = [Process("A", ProcessKind.INITIAL), Process("C", ProcessKind.INITIAL),
                 Process("B", ProcessKind.FINAL), Process("D", ProcessKind.FINAL)]
        flows = [flow("A", "B", 1), flow("C", "D", 1)]
        report = lint(procs, flows, platform=three_segment_platform(placement),
                      registry=registry)
        assert "SB302" in report.rule_ids()
        race = [f for f in report.warnings if f.rule_id == "SB302"]
        assert any("opposite directions" in f.message for f in race)


class TestFaultRules:
    def test_sb303_unknown_fu(self, registry, mp3_graph, platform_3seg):
        plan = FaultPlan(
            seed=1,
            records=(FaultRecord(site="fu:NOPE", kind="fu_stall", rate=0.1, ticks=5),),
        )
        ctx = LintContext.from_models(
            application=mp3_graph, platform=platform_3seg, fault_plan=plan
        )
        report = run_rules(ctx, registry=registry)
        assert "SB303" in report.rule_ids()
        assert report.exit_code == 2

    def test_sb303_unknown_segment_and_bu(self, registry, platform_3seg):
        plan = FaultPlan(
            seed=1,
            records=(
                FaultRecord(site="segment:9", kind="package_corruption", rate=0.1),
                FaultRecord(site="bu:7:8", kind="bu_drop", rate=0.1),
            ),
        )
        ctx = LintContext.from_models(platform=platform_3seg, fault_plan=plan)
        report = run_rules(ctx, registry=registry)
        sites = [f for f in report.errors if f.rule_id == "SB303"]
        assert len(sites) == 2

    def test_sb303_accepts_valid_sites(self, registry, platform_3seg):
        plan = FaultPlan(
            seed=1,
            records=(
                FaultRecord(site="*", kind="package_corruption", rate=0.1),
                FaultRecord(site="ca", kind="grant_loss", rate=0.1),
                FaultRecord(site="segment:1", kind="package_corruption", rate=0.1),
                FaultRecord(site="bu:1:2", kind="bu_drop", rate=0.1),
                FaultRecord(site="fu:P4", kind="fu_stall", rate=0.1, ticks=3),
            ),
        )
        ctx = LintContext.from_models(platform=platform_3seg, fault_plan=plan)
        report = run_rules(ctx, registry=registry)
        assert "SB303" not in report.rule_ids()

    def test_sb304_null_plan(self, registry):
        ctx = LintContext.from_models(fault_plan=FaultPlan(seed=1))
        report = run_rules(ctx, registry=registry)
        assert "SB304" in report.rule_ids()
        assert report.exit_code == 0  # info only

    def test_sb305_extreme_rate(self, registry):
        plan = FaultPlan(
            seed=1,
            records=(FaultRecord(site="*", kind="package_corruption", rate=0.9),),
        )
        ctx = LintContext.from_models(fault_plan=plan)
        report = run_rules(ctx, registry=registry)
        assert "SB305" in report.rule_ids()
        assert report.exit_code == 1

    def test_sb306_permanent_at_tick_zero(self, registry):
        plan = FaultPlan(
            seed=1,
            records=(
                FaultRecord(site="fu:P0", kind="permanent_failure", at_tick=0),
            ),
        )
        ctx = LintContext.from_models(fault_plan=plan)
        report = run_rules(ctx, registry=registry)
        assert "SB306" in report.rule_ids()

    def test_no_fault_findings_without_plan(self, registry, mp3_graph, platform_3seg):
        ctx = LintContext.from_models(application=mp3_graph, platform=platform_3seg)
        report = run_rules(ctx, registry=registry)
        assert not [f for f in report.findings if f.rule_id.startswith("SB30")]
