"""docs/LINTING.md must not drift from the registered rule catalogue."""

import re
from pathlib import Path

import pytest

from repro.lint import default_registry

LINTING_MD = Path(__file__).resolve().parents[2] / "docs" / "LINTING.md"


@pytest.fixture(scope="module")
def doc_text():
    return LINTING_MD.read_text()


def test_every_registered_rule_is_documented(doc_text):
    documented = set(re.findall(r"`(SB\d{3})`", doc_text))
    registered = {rule.id for rule in default_registry()}
    missing = registered - documented
    assert not missing, (
        f"rules missing from docs/LINTING.md: {sorted(missing)}"
    )


def test_no_ghost_rules_in_the_catalogue_table(doc_text):
    # table rows look like `| `SBxxx` | name | ...` — every row must be
    # a real rule; prose may mention IDs freely
    rows = set(re.findall(r"^\|\s*`(SB\d{3})`", doc_text, re.MULTILINE))
    registered = {rule.id for rule in default_registry()}
    ghosts = rows - registered
    assert not ghosts, f"documented but not registered: {sorted(ghosts)}"


def test_doc_quotes_the_catalogue_size(doc_text):
    checked = len(default_registry()) - 1  # SB999 is internal-only
    assert f"{checked} rule(s) checked" in doc_text
