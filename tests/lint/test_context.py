"""LintContext graph views: SCCs, reachability, platform access."""

from repro.lint.context import LintContext
from repro.psdf.flow import PacketFlow
from repro.psdf.process import Process, ProcessKind


def procs(*names, kind=ProcessKind.PROCESS):
    return tuple(Process(n, kind) for n in names)


def flow(src, dst, order=1, items=36):
    return PacketFlow(source=src, target=dst, data_items=items, order=order)


def ctx_of(processes, flows):
    return LintContext(processes=tuple(processes), flows=tuple(flows))


class TestGraphViews:
    def test_dag_has_no_sccs(self):
        ctx = ctx_of(procs("A", "B", "C"), [flow("A", "B"), flow("B", "C", 2)])
        assert ctx.is_dag()
        assert ctx.strongly_connected_components() == ()

    def test_cycle_detected_as_scc(self):
        ctx = ctx_of(
            procs("A", "B", "C"),
            [flow("A", "B"), flow("B", "C", 2), flow("C", "A", 3)],
        )
        assert not ctx.is_dag()
        assert ctx.strongly_connected_components() == (("A", "B", "C"),)

    def test_two_disjoint_cycles(self):
        ctx = ctx_of(
            procs("A", "B", "C", "D"),
            [flow("A", "B"), flow("B", "A", 2), flow("C", "D", 3), flow("D", "C", 4)],
        )
        assert ctx.strongly_connected_components() == (("A", "B"), ("C", "D"))

    def test_cycle_with_tail_reports_only_the_cycle(self):
        ctx = ctx_of(
            procs("A", "B", "C"),
            [flow("A", "B"), flow("B", "A", 2), flow("B", "C", 3)],
        )
        assert ctx.strongly_connected_components() == (("A", "B"),)

    def test_reachability_from_zero_indegree(self):
        ctx = ctx_of(
            procs("A", "B", "C", "D"),
            [flow("A", "B"), flow("C", "D", 2), flow("D", "C", 3)],
        )
        reachable = ctx.reachable_from_sources()
        assert "A" in reachable and "B" in reachable
        # the C/D cycle has no external producer: unreachable
        assert "C" not in reachable and "D" not in reachable

    def test_incoming_outgoing(self):
        ctx = ctx_of(procs("A", "B"), [flow("A", "B")])
        assert len(ctx.outgoing("A")) == 1
        assert len(ctx.incoming("B")) == 1
        assert ctx.incoming("A") == ()


class TestFromModels:
    def test_from_psdf_graph(self, mp3_graph):
        ctx = LintContext.from_models(application=mp3_graph)
        assert ctx.has_application
        assert len(ctx.processes) == 15
        assert ctx.application_name == mp3_graph.name
        assert ctx.is_dag()

    def test_platform_views(self, mp3_graph, platform_3seg):
        ctx = LintContext.from_models(
            application=mp3_graph, platform=platform_3seg
        )
        assert ctx.package_size() == 36
        assert ctx.bu_pairs() == ((1, 2), (2, 3))
        placement = ctx.placement()
        assert placement is not None and placement["P4"] == 3

    def test_empty_context_is_harmless(self):
        ctx = LintContext()
        assert not ctx.has_application
        assert ctx.placement() is None
        assert ctx.package_size() is None
        assert ctx.bu_pairs() == ()
        assert ctx.is_dag()
