"""SARIF output is pinned byte-for-byte against a committed snapshot.

The fixture scheme (tests/lint/data/hot_mesh_*.xml) is the hot-mesh
model from the stochastic-analyzer tests: it trips the SB5xx
performance band plus the SB22x frequency rules, so the snapshot locks
both the SARIF envelope and the estimator-derived messages. Regenerate
with `python tests/lint/data/regen_snapshot.py` after an intentional
rule change and commit the diff.
"""

import json
from pathlib import Path

import pytest

from repro.lint import default_registry, lint_paths
from repro.lint.output import format_sarif

DATA_DIR = Path(__file__).resolve().parent / "data"
SNAPSHOT = DATA_DIR / "hot_mesh_sarif.json"


@pytest.fixture()
def report(monkeypatch):
    # relative paths keep the artifact URIs in the snapshot stable
    monkeypatch.chdir(DATA_DIR)
    return lint_paths(
        ["hot_mesh_psdf.xml", "hot_mesh_psm.xml"], registry=default_registry()
    )


def test_sarif_matches_committed_snapshot(report):
    rendered = format_sarif(report, registry=default_registry()) + "\n"
    assert rendered == SNAPSHOT.read_text()


def test_snapshot_carries_the_performance_band(report):
    doc = json.loads(SNAPSHOT.read_text())
    run = doc["runs"][0]
    assert doc["version"] == "2.1.0"
    assert run["tool"]["driver"]["name"] == "segbus-lint"

    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    fired = {result["ruleId"] for result in run["results"]}
    assert {"SB501", "SB502", "SB503", "SB504"} <= fired
    # every fired rule carries its metadata, and ruleIndex points at it
    assert fired <= set(rule_ids)
    for result in run["results"]:
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]

    uris = {
        loc["physicalLocation"]["artifactLocation"]["uri"]
        for result in run["results"]
        for loc in result["locations"]
    }
    assert uris <= {"hot_mesh_psdf.xml", "hot_mesh_psm.xml"}


def test_snapshot_sb504_names_the_border_unit(report):
    doc = json.loads(SNAPSHOT.read_text())
    results = [
        r for r in doc["runs"][0]["results"] if r["ruleId"] == "SB504"
    ]
    assert results
    assert results[0]["properties"]["element"] == "BU12"
    assert results[0]["properties"]["fix_hint"]
