"""Engine assembly: default registry, disabling, crash containment."""

import pytest

from repro.apps.mp3 import PAPER_PACKAGE_SIZE, paper_platform
from repro.lint import INTERNAL_RULE_ID, default_registry, lint_models, lint_paths
from repro.lint.core import Rule, RuleRegistry, Severity
from repro.lint.engine import run_rules
from repro.lint.context import LintContext
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_writer import psm_to_xml


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestDefaultRegistry:
    def test_catalogue_size(self, registry):
        assert len(registry) == 49

    def test_every_band_is_present(self, registry):
        bands = {rule.id[:3] for rule in registry}
        assert bands == {"SB1", "SB2", "SB3", "SB4", "SB5", "SB9"}

    def test_ids_and_names_unique(self, registry):
        ids = [r.id for r in registry]
        names = [r.name for r in registry]
        assert len(ids) == len(set(ids))
        assert len(names) == len(set(names))

    def test_every_rule_documents_itself(self, registry):
        for rule in registry:
            assert rule.description, rule.id
            assert rule.rationale, rule.id
            assert rule.example, rule.id
            assert rule.fix_hint, rule.id

    def test_internal_rule_registered(self, registry):
        assert INTERNAL_RULE_ID in registry


class TestRunRules:
    def test_disable_suppresses_rule(self, registry, mp3_graph):
        from repro.model.builder import PlatformBuilder

        partial = (
            PlatformBuilder("Partial", package_size=36)
            .segment(frequency_mhz=100)
            .central_arbiter(frequency_mhz=100)
            .place("P0", 1)
            .build()
        )
        partial.fu_of_process("P0").add_master()
        baseline = lint_models(
            application=mp3_graph, platform=partial, registry=registry
        )
        assert len(baseline.findings) > 0
        noisy = baseline.rule_ids()
        silenced = lint_models(
            application=mp3_graph,
            platform=partial,
            registry=registry,
            disable=noisy,
        )
        assert silenced.findings == []
        assert silenced.checked_rules == len(registry) - 1 - len(noisy)

    def test_crashing_rule_reports_sb999(self):
        registry = RuleRegistry()

        def explode(ctx):
            raise RuntimeError("boom")

        registry.register(
            Rule(
                id="SB900", name="exploder", severity=Severity.ERROR,
                category="test", description="d", rationale="r", example="e",
                check=explode,
            )
        )
        registry.register(
            Rule(
                id=INTERNAL_RULE_ID, name="internal-error",
                severity=Severity.ERROR, category="engine", description="d",
                rationale="r", example="e", check=lambda ctx: [],
            )
        )
        report = run_rules(LintContext(), registry=registry)
        assert report.rule_ids() == (INTERNAL_RULE_ID,)
        assert "SB900" in report.errors[0].message
        assert "boom" in report.errors[0].message


class TestLintPaths:
    def test_targets_and_checked_rules(self, tmp_path, registry, mp3_graph):
        psdf = tmp_path / "app.xml"
        psm = tmp_path / "platform.xml"
        psdf.write_text(psdf_to_xml(mp3_graph, PAPER_PACKAGE_SIZE))
        psm.write_text(psm_to_xml(paper_platform(3)))
        report = lint_paths([psdf, psm], registry=registry)
        assert report.exit_code == 0
        assert report.targets == [str(psdf), str(psm)]
        assert report.checked_rules == len(registry) - 1

    def test_loader_findings_respect_disable(self, tmp_path, registry):
        bad = tmp_path / "bad.xml"
        bad.write_text("not xml")
        assert lint_paths([bad], registry=registry).exit_code == 2
        muted = lint_paths([bad], registry=registry, disable=["SB401"])
        assert muted.findings == []
