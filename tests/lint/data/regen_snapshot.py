"""Regenerate the SARIF snapshot fixtures in this directory.

Run from the repo root:

    PYTHONPATH=src:. python tests/lint/data/regen_snapshot.py

and commit the resulting diff together with the rule change that
motivated it.
"""

import os
from pathlib import Path

from repro.lint import default_registry, lint_paths
from repro.lint.output import format_sarif
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_writer import psm_to_xml

from tests.lint.test_rules_performance import hot_mesh_models


def main() -> None:
    data = Path(__file__).resolve().parent
    graph, platform = hot_mesh_models()
    (data / "hot_mesh_psdf.xml").write_text(
        psdf_to_xml(graph, platform.package_size)
    )
    (data / "hot_mesh_psm.xml").write_text(psm_to_xml(platform))

    os.chdir(data)
    registry = default_registry()
    report = lint_paths(
        ["hot_mesh_psdf.xml", "hot_mesh_psm.xml"], registry=registry
    )
    (data / "hot_mesh_sarif.json").write_text(
        format_sarif(report, registry=registry) + "\n"
    )
    print(f"wrote {len(report.findings)} findings to hot_mesh_sarif.json")


if __name__ == "__main__":
    main()
