"""SB1xx: the OCL constraints as lint rules, plus mapping cross-checks."""

import pytest

from repro.lint import LintContext, default_registry, run_rules
from repro.lint.rules_platform import CONSTRAINT_RULE_TABLE
from repro.model.builder import PlatformBuilder
from repro.model.constraints import STRUCTURAL_CONSTRAINTS
from repro.model.elements import FunctionalUnit, Segment, SegBusPlatform
from repro.units import Frequency


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def lint_platform(platform, application=None, registry=None):
    ctx = LintContext.from_models(application=application, platform=platform)
    return run_rules(ctx, registry=registry)


def test_every_constraint_is_migrated():
    assert set(CONSTRAINT_RULE_TABLE) == {
        c.identifier for c in STRUCTURAL_CONSTRAINTS
    }


def test_migrated_rules_share_constraint_rule_text(registry):
    for constraint in STRUCTURAL_CONSTRAINTS:
        rule_id = CONSTRAINT_RULE_TABLE[constraint.identifier][0]
        assert registry.get(rule_id).description == constraint.rule


def test_sb101_missing_ca(registry):
    platform = SegBusPlatform(name="NoCA")
    seg = Segment(1, Frequency.from_mhz(100))
    fu = FunctionalUnit("FU_P0", "P0")
    fu.add_master()
    seg.add_fu(fu)
    platform.add_segment(seg)
    report = lint_platform(platform, registry=registry)
    assert "SB101" in report.rule_ids()
    finding = [f for f in report.errors if f.rule_id == "SB101"][0]
    assert finding.location.element == "NoCA"  # names the offender


def test_sb104_segment_without_fu_names_segment(registry):
    platform = (
        PlatformBuilder("Empty", package_size=36)
        .segment(frequency_mhz=100)
        .central_arbiter(frequency_mhz=100)
        .build()
    )
    report = lint_platform(platform, registry=registry)
    assert "SB104" in report.rule_ids()
    finding = [f for f in report.errors if f.rule_id == "SB104"][0]
    assert finding.location.segment == 1


def test_sb111_unmapped_process(registry, mp3_graph):
    platform = (
        PlatformBuilder("Partial", package_size=36)
        .segment(frequency_mhz=100)
        .central_arbiter(frequency_mhz=100)
        .place("P0", 1)
        .build()
    )
    platform.fu_of_process("P0").add_master()
    report = lint_platform(platform, application=mp3_graph, registry=registry)
    assert "SB111" in report.rule_ids()
    unmapped = {f.location.element for f in report.errors if f.rule_id == "SB111"}
    assert "P14" in unmapped and "P0" not in unmapped


def test_sb112_stray_mapped_process(registry, mp3_graph, platform_3seg):
    from repro.apps.mp3 import paper_platform

    platform = paper_platform(3)
    segment = platform.segments[0]
    stray = FunctionalUnit("FU_P99", "P99")
    stray.add_master()
    segment.add_fu(stray)
    report = lint_platform(platform, application=mp3_graph, registry=registry)
    assert "SB112" in report.rule_ids()
    finding = [f for f in report.errors if f.rule_id == "SB112"][0]
    assert finding.location.element == "P99"
    assert finding.location.segment == 1


def test_clean_paper_platform_has_no_platform_findings(registry, mp3_graph, platform_3seg):
    report = lint_platform(platform_3seg, application=mp3_graph, registry=registry)
    assert not [f for f in report.findings if f.rule_id.startswith("SB1")]


def test_rules_skip_without_platform(registry):
    report = run_rules(LintContext(), registry=registry)
    assert not [f for f in report.findings if f.rule_id.startswith("SB1")]
