"""SB5xx: the stochastic-estimator-backed performance lint."""

import pytest

from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.lint import LintContext, default_registry, lint_models, run_rules
from repro.model.mapping import Allocation, map_application
from repro.psdf.flow import FlowCost, PacketFlow
from repro.psdf.graph import PSDFGraph
from repro.psdf.process import Process, ProcessKind

from tests.analysis.test_stochastic import (
    hot_mesh_model,
    misplaced_pipeline_model,
)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def psm_for(graph, groups, frequencies, ca_mhz=110.0, package_size=36):
    return map_application(
        graph,
        Allocation.from_groups(groups),
        segment_frequencies_mhz=frequencies,
        ca_frequency_mhz=ca_mhz,
        package_size=package_size,
        name="PerfLint",
    )


def hot_mesh_models():
    graph, _spec = hot_mesh_model()
    groups = [
        [f"X{i}" for i in range(6)] + [f"Z{i}" for i in range(6)],
        [f"Y{i}" for i in range(6)],
    ]
    return graph, psm_for(graph, groups, [90, 95]).platform


def misplaced_pipeline_models():
    graph, _spec = misplaced_pipeline_model()
    groups = [
        [f"X{i}" for i in range(5)] + [f"Y{i}" for i in range(5)] + ["B0"],
        ["A0", "C0"],
    ]
    return graph, psm_for(graph, groups, [90, 95]).platform


class TestHotMesh:
    @pytest.fixture(scope="class")
    def report(self, registry):
        graph, platform = hot_mesh_models()
        return lint_models(
            application=graph, platform=platform, registry=registry
        )

    def test_segment_saturation_fires_per_segment(self, report):
        findings = [f for f in report.findings if f.rule_id == "SB501"]
        assert {f.location.segment for f in findings} == {1, 2}
        assert all("offered load" in f.message for f in findings)

    def test_ca_saturation_fires(self, report):
        assert any(f.rule_id == "SB502" for f in report.findings)

    def test_contention_blowup_fires(self, report):
        findings = [f for f in report.findings if f.rule_id == "SB503"]
        assert findings and "ANA-2 ceiling" in findings[0].message

    def test_bu_queue_overflow_fires(self, report):
        findings = [f for f in report.findings if f.rule_id == "SB504"]
        assert findings
        assert findings[0].location.element == "BU12"

    def test_no_internal_errors(self, report):
        assert not any(f.rule_id == "SB999" for f in report.findings)

    def test_warnings_exit_code(self, report):
        assert report.exit_code == 1


class TestHotPlacement:
    def test_sb505_names_the_move(self, registry):
        graph, platform = misplaced_pipeline_models()
        report = lint_models(
            application=graph, platform=platform, registry=registry
        )
        findings = [f for f in report.findings if f.rule_id == "SB505"]
        assert findings
        finding = findings[0]
        assert finding.location.element == "B0"
        assert "segment 2" in finding.message
        assert "B0" in finding.fix_hint

    def test_sb505_quiet_when_no_segment_saturates(self, registry):
        graph = PSDFGraph.from_edges(
            [("A", "B", 72, 1, 50), ("B", "C", 72, 2, 50)]
        )
        psm = psm_for(graph, [["A", "B"], ["C"]], [91, 98])
        report = lint_models(
            application=graph, platform=psm.platform, registry=registry
        )
        assert not any(f.rule_id.startswith("SB5") for f in report.findings)


class TestCleanModels:
    def test_paper_mp3_is_performance_clean(self, registry):
        report = lint_models(
            application=mp3_decoder_psdf(),
            platform=paper_platform(3),
            registry=registry,
        )
        assert report.exit_code == 0
        assert not any(
            f.rule_id.startswith("SB5") for f in report.findings
        )


class TestGuards:
    def test_no_platform_means_no_sb5xx(self, registry):
        # performance lint needs a placement; without a platform the
        # rules must stay silent (and must not crash into SB999)
        ctx = LintContext.from_models()
        ctx.processes = (
            Process("A", ProcessKind.INITIAL),
            Process("B", ProcessKind.FINAL),
        )
        ctx.flows = (
            PacketFlow(source="A", target="B", data_items=36, order=1,
                       cost=FlowCost.constant(50)),
        )
        report = run_rules(ctx, registry=registry)
        assert not any(f.rule_id.startswith("SB5") for f in report.findings)
        assert not any(f.rule_id == "SB999" for f in report.findings)

    def test_cyclic_graph_means_no_sb5xx(self, registry):
        # the PSDF constructor rejects cycles, so the estimator cannot
        # run; SB207 owns the diagnosis and SB5xx must not crash
        graph, platform = hot_mesh_models()
        ctx = LintContext.from_models(platform=platform)
        ctx.processes = tuple(
            Process(n, ProcessKind.PROCESS) for n in ("A", "B")
        )
        ctx.flows = (
            PacketFlow(source="A", target="B", data_items=36, order=1,
                       cost=FlowCost.constant(50)),
            PacketFlow(source="B", target="A", data_items=36, order=2,
                       cost=FlowCost.constant(50)),
        )
        report = run_rules(ctx, registry=registry)
        assert not any(f.rule_id.startswith("SB5") for f in report.findings)
        assert not any(f.rule_id == "SB999" for f in report.findings)

    def test_estimation_is_cached_on_context(self, registry):
        graph, platform = hot_mesh_models()
        ctx = LintContext.from_models(platform=platform)
        ctx.processes = tuple(graph.processes)
        ctx.flows = tuple(graph.flows)
        run_rules(ctx, registry=registry)
        assert "_sb5xx_estimation" in ctx.__dict__
