"""SB23x: mode-consistency rules and the lint_multimode orchestration."""

import pytest

from repro.lint import (
    LintContext,
    default_registry,
    lint_multimode,
    run_rules,
)
from repro.psdf.graph import PSDFGraph
from repro.psdf.modes import (
    ModePhase,
    ModeSchedule,
    MultiModeApplication,
    TransitionSpec,
)


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def graph(name="lo", cost=10):
    return PSDFGraph.from_edges(
        [("A", "B", 36, 1, cost), ("B", "C", 36, 2, cost)], name=name
    )


def app(modes=None, phases=None, transition=TransitionSpec()):
    return MultiModeApplication(
        name="toy",
        modes=modes if modes is not None else {"lo": graph()},
        schedule=ModeSchedule(
            phases=phases or (ModePhase("lo", 2),), transition=transition
        ),
    )


def lint(multimode, registry):
    ctx = LintContext(multimode=multimode)
    return run_rules(ctx, registry=registry)


class TestRules:
    def test_clean_app_fires_nothing(self, registry):
        report = lint(app(), registry)
        assert not [f for f in report.findings if f.rule_id.startswith("SB23")]

    def test_sb230_undefined_mode_reference(self, registry):
        report = lint(
            app(phases=(ModePhase("lo"), ModePhase("ghost"))), registry
        )
        fired = [f for f in report.errors if f.rule_id == "SB230"]
        assert len(fired) == 1
        assert "ghost" in fired[0].message

    def test_sb231_scheduled_empty_flow_set(self, registry):
        empty = PSDFGraph((), (), name="idle")
        report = lint(
            app(
                modes={"lo": graph(), "idle": empty},
                phases=(ModePhase("lo"), ModePhase("idle")),
            ),
            registry,
        )
        assert [f.rule_id for f in report.errors] == ["SB231"]

    def test_sb231_quiet_for_unscheduled_empty_mode(self, registry):
        empty = PSDFGraph((), (), name="idle")
        report = lint(
            app(modes={"lo": graph(), "idle": empty}), registry
        )
        assert "SB231" not in report.rule_ids()
        # ... but SB232 flags it as unreachable instead
        assert "SB232" in report.rule_ids()

    def test_sb232_unreachable_mode(self, registry):
        report = lint(
            app(modes={"lo": graph(), "hi": graph("hi")}), registry
        )
        fired = [f for f in report.warnings if f.rule_id == "SB232"]
        assert len(fired) == 1
        assert "'hi'" in fired[0].message

    def test_sb233_transition_dwarfing_iteration_work(self, registry):
        report = lint(
            app(
                modes={"lo": graph(), "hi": graph("hi")},
                phases=(ModePhase("lo"), ModePhase("hi")),
                transition=TransitionSpec(reconfig_ticks=10**6),
            ),
            registry,
        )
        assert "SB233" in report.rule_ids()

    def test_sb233_quiet_without_switches(self, registry):
        report = lint(
            app(
                phases=(ModePhase("lo"), ModePhase("lo")),
                transition=TransitionSpec(reconfig_ticks=10**6),
            ),
            registry,
        )
        assert "SB233" not in report.rule_ids()

    def test_sb233_quiet_for_zero_cost(self, registry):
        report = lint(
            app(
                modes={"lo": graph(), "hi": graph("hi")},
                phases=(ModePhase("lo"), ModePhase("hi")),
            ),
            registry,
        )
        assert "SB233" not in report.rule_ids()

    def test_sb234_empty_schedule(self, registry):
        mm = MultiModeApplication(
            name="toy", modes={"lo": graph()},
            schedule=ModeSchedule(phases=()),
        )
        fired = [f for f in lint(mm, registry).errors if f.rule_id == "SB234"]
        assert len(fired) == 1
        assert "no phases" in fired[0].message

    def test_sb234_degenerate_phase(self, registry):
        report = lint(app(phases=(ModePhase("lo", iterations=0),)), registry)
        assert "SB234" in {f.rule_id for f in report.errors}

    def test_rules_quiet_without_multimode_context(self, registry):
        report = run_rules(LintContext(), registry=registry)
        assert not [f for f in report.findings if f.rule_id.startswith("SB23")]


class TestLintMultimode:
    def test_clean_app_exits_zero(self):
        report = lint_multimode(app())
        assert report.exit_code == 0, [
            (f.rule_id, f.message) for f in report.findings
        ]

    def test_per_mode_findings_are_folded_in(self):
        # a transfer-order gap (SB209) inside one mode must surface
        # through the orchestrated per-mode pass, not the composition pass
        bad = PSDFGraph.from_edges(
            [("A", "B", 36, 1, 10), ("B", "C", 36, 7, 10)], name="bad"
        )
        report = lint_multimode(
            app(
                modes={"lo": graph(), "bad": bad},
                phases=(ModePhase("lo"), ModePhase("bad")),
            )
        )
        assert report.exit_code != 0

    def test_composition_findings_surface(self):
        report = lint_multimode(app(phases=(ModePhase("ghost"),)))
        assert "SB230" in report.rule_ids()
        assert report.exit_code == 2

    def test_scenario_catalog_multimode_is_clean(self):
        from repro.apps.workloads import workload_model

        scenario = workload_model("mp3_jpeg_multimode")
        report = lint_multimode(
            scenario.application, platform=scenario.platform
        )
        assert report.exit_code == 0, [
            (f.rule_id, f.message) for f in report.findings
        ]
