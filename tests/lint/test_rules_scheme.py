"""SB4xx: XML scheme rules, classification, and the loader."""

import pytest

from repro.apps.mp3 import PAPER_PACKAGE_SIZE, paper_platform
from repro.faults.model import FaultPlan
from repro.lint import (
    KIND_FAULT_PLAN,
    KIND_PSDF,
    KIND_PSM,
    KIND_UNKNOWN,
    LintContext,
    SchemeFile,
    classify_scheme,
    default_registry,
    load_paths,
    run_rules,
)
from repro.xmlio.faults_xml import fault_plan_to_xml
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_writer import psm_to_xml
from repro.xmlio.schema_writer import SchemaDocument


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def psm_document():
    return SchemaDocument.from_xml(psm_to_xml(paper_platform(2)))


def lint_document(document, kind, registry, path="scheme.xml"):
    ctx = LintContext(documents=(SchemeFile(path, kind, document),))
    return run_rules(ctx, registry=registry)


class TestSchemeIntegrityRules:
    def test_clean_generated_psm_has_no_scheme_findings(self, registry):
        report = lint_document(psm_document(), KIND_PSM, registry)
        assert not [f for f in report.findings if f.rule_id.startswith("SB4")]

    def test_sb402_undefined_reference(self, registry):
        doc = psm_document()
        doc.complex_types = [t for t in doc.complex_types if t.name != "SA1"]
        report = lint_document(doc, KIND_PSM, registry)
        assert "SB402" in report.rule_ids()
        assert any("SA1" in f.message for f in report.errors)

    def test_sb403_orphan_type(self, registry):
        doc = psm_document()
        # detach Segment1 from the root: the type and its subtree orphan
        root = doc.complex_types[0]
        root.children = [c for c in root.children if c.type != "Segment1"]
        report = lint_document(doc, KIND_PSM, registry)
        assert "SB403" in report.rule_ids()
        orphans = {f.location.element for f in report.warnings
                   if f.rule_id == "SB403"}
        assert "Segment1" in orphans

    def test_sb404_duplicate_child_name(self, registry):
        doc = psm_document()
        segment = doc.complex_type("Segment1")
        first = segment.children[0]
        segment.add(first.name, first.type)
        report = lint_document(doc, KIND_PSM, registry)
        assert "SB404" in report.rule_ids()
        assert any(first.name in f.message for f in report.errors)

    def test_sb405_segment_without_arbiter(self, registry):
        doc = psm_document()
        segment = doc.complex_type("Segment1")
        segment.children = [
            c for c in segment.children if not c.type.startswith("SA")
        ]
        report = lint_document(doc, KIND_PSM, registry)
        assert "SB405" in report.rule_ids()
        finding = [f for f in report.errors if f.rule_id == "SB405"][0]
        assert finding.location.element == "Segment1"
        assert finding.location.segment == 1
        assert finding.location.file == "scheme.xml"

    def test_sb406_segment_without_process(self, registry):
        doc = psm_document()
        segment = doc.complex_type("Segment1")
        segment.children = [
            c for c in segment.children
            if c.type == "Parameter" or c.type.startswith(("SA", "BU"))
        ]
        report = lint_document(doc, KIND_PSM, registry)
        assert "SB406" in report.rule_ids()

    def test_psm_shape_rules_skip_non_psm_documents(self, registry, mp3_graph):
        doc = SchemaDocument.from_xml(psdf_to_xml(mp3_graph, PAPER_PACKAGE_SIZE))
        report = lint_document(doc, KIND_PSDF, registry)
        assert "SB405" not in report.rule_ids()
        assert "SB406" not in report.rule_ids()


class TestClassifyScheme:
    def test_psdf(self, mp3_graph):
        doc = SchemaDocument.from_xml(psdf_to_xml(mp3_graph, PAPER_PACKAGE_SIZE))
        assert classify_scheme(doc) == KIND_PSDF

    def test_psm(self):
        assert classify_scheme(psm_document()) == KIND_PSM

    def test_fault_plan(self):
        plan = FaultPlan.transient(seed=7, corruption_rate=0.01)
        doc = SchemaDocument.from_xml(fault_plan_to_xml(plan))
        assert classify_scheme(doc) == KIND_FAULT_PLAN

    def test_unknown(self):
        assert classify_scheme(SchemaDocument()) == KIND_UNKNOWN


class TestLoader:
    def test_loads_models_from_files(self, tmp_path, registry, mp3_graph):
        psdf = tmp_path / "app.xml"
        psm = tmp_path / "platform.xml"
        psdf.write_text(psdf_to_xml(mp3_graph, PAPER_PACKAGE_SIZE))
        psm.write_text(psm_to_xml(paper_platform(3)))
        ctx, findings = load_paths([psdf, psm], registry)
        assert findings == []
        assert len(ctx.processes) == 15
        assert ctx.platform is not None
        assert {s.kind for s in ctx.documents} == {KIND_PSDF, KIND_PSM}
        assert ctx.source_files[KIND_PSDF].endswith("app.xml")

    def test_missing_file_is_sb401(self, tmp_path, registry):
        ctx, findings = load_paths([tmp_path / "nope.xml"], registry)
        assert [f.rule_id for f in findings] == ["SB401"]
        assert ctx.documents == ()

    def test_garbage_file_is_sb401(self, tmp_path, registry):
        bad = tmp_path / "bad.xml"
        bad.write_text("this is not xml at all")
        ctx, findings = load_paths([bad], registry)
        assert [f.rule_id for f in findings] == ["SB401"]
        assert findings[0].location.file.endswith("bad.xml")

    def test_unparseable_model_still_yields_documents(self, tmp_path, registry):
        # a PSM whose arbiter is gone fails parse_psm_xml, but the raw
        # document must survive so SB405 can diagnose the cause
        doc = psm_document()
        segment = doc.complex_type("Segment1")
        segment.children = [
            c for c in segment.children if not c.type.startswith("SA")
        ]
        broken = tmp_path / "broken_psm.xml"
        broken.write_text(doc.to_xml())
        ctx, findings = load_paths([broken], registry)
        assert any(f.rule_id == "SB401" for f in findings)
        assert ctx.platform is None
        assert len(ctx.documents) == 1
        report = run_rules(ctx, registry=registry)
        assert "SB405" in report.rule_ids()
