"""SB2xx: the PSDF static verifier."""

import pytest

from repro.lint import LintContext, default_registry, run_rules
from repro.psdf.flow import FlowCost, PacketFlow
from repro.psdf.process import Process, ProcessKind


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def lint(processes, flows, platform=None, registry=None):
    ctx = LintContext(
        processes=tuple(processes), flows=tuple(flows), platform=platform
    )
    return run_rules(ctx, registry=registry)


def flow(src, dst, order=1, items=36, cost=50):
    return PacketFlow(
        source=src,
        target=dst,
        data_items=items,
        order=order,
        cost=FlowCost.constant(cost),
    )


def chain(*names):
    """INITIAL -> PROCESS... -> FINAL processes for the given names."""
    kinds = (
        [ProcessKind.INITIAL]
        + [ProcessKind.PROCESS] * (len(names) - 2)
        + [ProcessKind.FINAL]
    )
    return [Process(n, k) for n, k in zip(names, kinds)]


def ids(report):
    return report.rule_ids()


def test_clean_chain_has_no_findings(registry):
    report = lint(
        chain("A", "B", "C"), [flow("A", "B", 1), flow("B", "C", 2)],
        registry=registry,
    )
    assert report.exit_code == 0
    assert report.findings == []


def test_sb201_undeclared_endpoint(registry):
    report = lint(chain("A", "B", "C"), [flow("A", "B"), flow("B", "X", 2)],
                  registry=registry)
    assert "SB201" in ids(report)
    assert any("X" in f.message for f in report.errors)


def test_sb202_duplicate_flow(registry):
    report = lint(
        chain("A", "B", "C"),
        [flow("A", "B", 1), flow("A", "B", 1), flow("B", "C", 2)],
        registry=registry,
    )
    assert "SB202" in ids(report)


def test_sb203_orphan_process(registry):
    report = lint(
        chain("A", "B", "C") + [Process("Lonely")],
        [flow("A", "B"), flow("B", "C", 2)],
        registry=registry,
    )
    assert "SB203" in ids(report)
    assert any(f.location.element == "Lonely" for f in report.errors)


def test_sb204_unreachable_fed_by_cycle(registry):
    # C/D cycle feeds E: all starve, but only E is *unreachable* (C and D
    # are cycle members reported by SB207)
    report = lint(
        chain("A", "B") + [Process(n) for n in ("C", "D", "E")],
        [
            flow("A", "B", 1),
            flow("C", "D", 2),
            flow("D", "C", 3),
            flow("D", "E", 4),
        ],
        registry=registry,
    )
    assert "SB204" in ids(report)
    unreachable = [f for f in report.errors if f.rule_id == "SB204"]
    assert [f.location.element for f in unreachable] == ["E"]


def test_sb205_initial_with_inputs(registry):
    procs = [Process("A", ProcessKind.INITIAL), Process("B", ProcessKind.INITIAL)]
    report = lint(procs, [flow("A", "B")], registry=registry)
    assert "SB205" in ids(report)


def test_sb206_final_with_outputs(registry):
    procs = [Process("A", ProcessKind.FINAL), Process("B", ProcessKind.FINAL)]
    report = lint(procs, [flow("A", "B")], registry=registry)
    assert "SB206" in ids(report)


def test_sb207_static_deadlock_cycle(registry):
    report = lint(
        [Process(n) for n in ("A", "B", "C")],
        [flow("A", "B", 1), flow("B", "C", 2), flow("C", "A", 3)],
        registry=registry,
    )
    assert "SB207" in ids(report)
    deadlocks = [f for f in report.errors if f.rule_id == "SB207"]
    assert len(deadlocks) == 1
    assert "A, B, C" in deadlocks[0].message


def test_sb208_transfer_order_inversion(registry):
    # B transmits at T=1 but receives at T=2: the ROM contradicts the data
    report = lint(
        chain("A", "B", "C"), [flow("A", "B", 2), flow("B", "C", 1)],
        registry=registry,
    )
    assert "SB208" in ids(report)
    assert any(f.location.element == "B" for f in report.errors)


def test_sb209_transfer_order_gap(registry):
    report = lint(
        chain("A", "B", "C"), [flow("A", "B", 1), flow("B", "C", 5)],
        registry=registry,
    )
    assert "SB209" in ids(report)
    assert report.exit_code == 1  # warning only


def test_sb210_implicit_source(registry):
    procs = [Process("A"), Process("B", ProcessKind.FINAL)]
    report = lint(procs, [flow("A", "B")], registry=registry)
    assert "SB210" in ids(report)


def test_sb211_implicit_sink(registry):
    procs = [Process("A", ProcessKind.INITIAL), Process("B")]
    report = lint(procs, [flow("A", "B")], registry=registry)
    assert "SB211" in ids(report)


def test_sb212_package_padding(registry, platform_3seg):
    # D=100 does not divide into s=36 packages; placement must resolve, so
    # reuse MP3 process names mapped on the paper platform
    procs = [
        Process("P0", ProcessKind.INITIAL),
        Process("P1", ProcessKind.FINAL),
    ]
    report = lint(
        procs, [flow("P0", "P1", 1, items=100)], platform=platform_3seg,
        registry=registry,
    )
    assert "SB212" in ids(report)
    padding = [f for f in report.infos if f.rule_id == "SB212"]
    assert "carries only 28" in padding[0].message


def test_mp3_paper_model_is_clean(registry, mp3_graph, platform_3seg):
    ctx = LintContext.from_models(application=mp3_graph, platform=platform_3seg)
    report = run_rules(ctx, registry=registry)
    assert report.findings == []
    assert report.exit_code == 0


def test_sb220_segment_saturation(registry):
    # single heavy flow with tiny production cost crossing all segments of
    # the paper platform: bus occupancy dwarfs production time
    from repro.model.builder import PlatformBuilder

    builder = (
        PlatformBuilder("Sat", package_size=36)
        .segment(frequency_mhz=100)
        .segment(frequency_mhz=100)
        .central_arbiter(frequency_mhz=100)
        .auto_border_units()
        .place("A", 1)
        .place("B", 2)
    )
    platform = builder.build()
    platform.fu_of_process("A").add_master()
    platform.fu_of_process("B").add_slave()
    procs = [Process("A", ProcessKind.INITIAL), Process("B", ProcessKind.FINAL)]
    # 10 packages x 36 occupancy ticks each, but only 1 tick of production
    heavy = PacketFlow(
        source="A", target="B", data_items=360, order=1,
        cost=FlowCost.constant(1),
    )
    report = lint(procs, [heavy], platform=platform, registry=registry)
    assert "SB220" in ids(report)
    # both crossing segments are communication-bound... segment 2 has no
    # production at all, so only segment 1 (producer side) is flagged
    flagged = [f for f in report.warnings if f.rule_id == "SB220"]
    assert [f.location.segment for f in flagged] == [1]
    # the same crossing traffic also dominates both neighbours of BU12
    assert "SB221" in ids(report)


def test_sb221_not_fired_when_intra_dominates(registry, mp3_graph, platform_3seg):
    ctx = LintContext.from_models(application=mp3_graph, platform=platform_3seg)
    report = run_rules(ctx, registry=registry)
    assert "SB221" not in ids(report)
