"""Statistics helper tests."""

import pytest

from repro.analysis.stats import relative_error, summarize


def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0])
    assert summary.n == 3
    assert summary.mean == pytest.approx(2.0)
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0


def test_summarize_single_value():
    summary = summarize([5.0])
    assert summary.std == 0.0


def test_summarize_rejects_empty():
    with pytest.raises(ValueError):
        summarize([])


def test_relative_error():
    assert relative_error(95.0, 100.0) == pytest.approx(0.05)
    assert relative_error(105.0, 100.0) == pytest.approx(0.05)


def test_relative_error_rejects_zero_reference():
    with pytest.raises(ValueError):
        relative_error(1.0, 0.0)
