"""Frequency sweep tests."""

import pytest

from repro.analysis.sweep import frequency_sweep
from repro.apps.mp3 import (
    PAPER_CA_FREQUENCY_MHZ,
    paper_allocation,
    paper_segment_frequencies_mhz,
)


@pytest.fixture(scope="module")
def points(mp3_graph):
    return frequency_sweep(
        mp3_graph,
        allocation=paper_allocation(3),
        base_frequencies_mhz=paper_segment_frequencies_mhz(3),
        ca_frequency_mhz=PAPER_CA_FREQUENCY_MHZ,
        package_size=36,
        scales=[0.5, 1.0, 2.0],
    )


def test_parameter_is_scale_percent(points):
    assert [p.parameter for p in points] == [50, 100, 200]


def test_faster_clocks_reduce_time(points):
    times = [p.estimated_us for p in points]
    assert times[0] > times[1] > times[2]


def test_halving_clocks_roughly_doubles_time(points):
    by_scale = {p.parameter: p for p in points}
    ratio = by_scale[50].estimated_us / by_scale[100].estimated_us
    # compute scales linearly with the segment clocks (CA held constant)
    assert 1.8 < ratio < 2.1


def test_diminishing_returns_at_high_clocks(points):
    by_scale = {p.parameter: p for p in points}
    gain_up = by_scale[100].estimated_us / by_scale[200].estimated_us
    loss_down = by_scale[50].estimated_us / by_scale[100].estimated_us
    # doubling helps by at most as much as halving hurts
    assert gain_up <= loss_down + 1e-9


def test_estimates_below_actuals(points):
    for point in points:
        assert point.estimated_us < point.actual_us
