"""Per-flow latency analysis tests."""

import pytest

from repro.analysis.latency import measure_latencies
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.trace import Tracer
from repro.errors import SegBusError
from repro.psdf.graph import PSDFGraph


def traced(graph, placement, segments=1):
    spec = PlatformSpec(
        package_size=36,
        segment_frequencies_mhz={i: 100.0 for i in range(1, segments + 1)},
        ca_frequency_mhz=100.0,
        placement=placement,
    )
    tracer = Tracer()
    sim = Simulation(graph, spec, tracer=tracer).run()
    return sim, tracer


class TestLatencyMeasurement:
    def test_uncontended_intra_latency_is_transfer_time(self):
        graph = PSDFGraph.from_edges([("A", "B", 72, 1, 50)])
        sim, tracer = traced(graph, {"A": 1, "B": 1})
        report = measure_latencies(sim, tracer)
        flow = report.flow("A", "B")
        assert flow.packages == 2
        # grant at request instant, 36 ticks @ 100 MHz = 0.36 us
        assert flow.mean_us == pytest.approx(0.36, abs=1e-6)
        assert flow.min_us == flow.max_us  # no contention, no jitter

    def test_inter_segment_latency_larger(self):
        graph = PSDFGraph.from_edges([("A", "B", 72, 1, 50)])
        intra_sim, intra_tr = traced(graph, {"A": 1, "B": 1})
        inter_sim, inter_tr = traced(graph, {"A": 1, "B": 2}, segments=2)
        intra = measure_latencies(intra_sim, intra_tr).flow("A", "B")
        inter = measure_latencies(inter_sim, inter_tr).flow("A", "B")
        assert inter.mean_us > intra.mean_us

    def test_contention_creates_jitter(self):
        graph = PSDFGraph.from_edges(
            [("A", "C", 180, 1, 10), ("B", "C", 180, 1, 10)]
        )
        sim, tracer = traced(graph, {"A": 1, "B": 1, "C": 1})
        report = measure_latencies(sim, tracer)
        assert any(f.max_us > f.min_us for f in report.flows)
        assert report.worst().p95_us >= report.worst().p50_us

    def test_all_flows_measured(self, mp3_graph, platform_3seg):
        spec = PlatformSpec.from_platform(platform_3seg)
        tracer = Tracer()
        sim = Simulation(mp3_graph, spec, tracer=tracer).run()
        report = measure_latencies(sim, tracer)
        assert len(report.flows) == len(mp3_graph.flows)
        total = sum(f.packages for f in report.flows)
        assert total == mp3_graph.total_packages(36)

    def test_mp3_inter_segment_flows_slowest(self, mp3_graph, platform_3seg):
        spec = PlatformSpec.from_platform(platform_3seg)
        tracer = Tracer()
        sim = Simulation(mp3_graph, spec, tracer=tracer).run()
        report = measure_latencies(sim, tracer)
        # the worst p95 flow crosses a segment border (P3's or P4's flows)
        worst = report.worst()
        assert spec.placement[worst.source] != spec.placement[worst.target]

    def test_format_table(self, mp3_graph, platform_3seg):
        spec = PlatformSpec.from_platform(platform_3seg)
        tracer = Tracer()
        sim = Simulation(mp3_graph, spec, tracer=tracer).run()
        table = measure_latencies(sim, tracer).format_table()
        assert "P0->P1" in table
        assert "p95" in table

    def test_flow_lookup_missing(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        sim, tracer = traced(graph, {"A": 1, "B": 1})
        report = measure_latencies(sim, tracer)
        with pytest.raises(KeyError):
            report.flow("B", "A")

    def test_worst_on_empty_report(self):
        from repro.analysis.latency import LatencyReport

        with pytest.raises(SegBusError):
            LatencyReport(flows=()).worst()
