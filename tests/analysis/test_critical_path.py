"""Critical-path extraction tests."""

import pytest

from repro.analysis.analytic import analytic_estimate, critical_path
from repro.emulator.kernel import PlatformSpec
from repro.psdf.graph import PSDFGraph


def spec_for(placement, segments=1):
    return PlatformSpec(
        package_size=36,
        segment_frequencies_mhz={i: 100.0 for i in range(1, segments + 1)},
        ca_frequency_mhz=100.0,
        placement=placement,
    )


def test_chain_is_its_own_critical_path():
    graph = PSDFGraph.from_edges(
        [("A", "B", 72, 1, 50), ("B", "C", 72, 2, 50)]
    )
    estimate = analytic_estimate(graph, spec_for({"A": 1, "B": 1, "C": 1}))
    assert critical_path(graph, estimate) == ("A", "B", "C")


def test_unbalanced_fork_picks_heavy_branch():
    # HEAVY's own production dominates: the path must run through it
    graph = PSDFGraph.from_edges(
        [
            ("S", "HEAVY", 36, 1, 10),
            ("S", "LIGHT", 36, 2, 10),
            ("HEAVY", "T", 720, 3, 500),
            ("LIGHT", "T", 36, 3, 10),
        ]
    )
    placement = {"S": 1, "HEAVY": 1, "LIGHT": 1, "T": 1}
    estimate = analytic_estimate(graph, spec_for(placement))
    path = critical_path(graph, estimate)
    assert "HEAVY" in path
    assert "LIGHT" not in path
    assert path[0] == "S" and path[-1] == "T"


def test_mp3_critical_path_is_left_channel(mp3_graph, platform_3seg):
    estimate = analytic_estimate(
        mp3_graph, PlatformSpec.from_platform(platform_3seg)
    )
    path = critical_path(mp3_graph, estimate)
    # the left synthesis chain ... P5 -> P6 -> P7 -> P14 dominates (Fig. 10)
    assert path[0] == "P0"
    assert "P3" in path
    assert path[-3:] == ("P6", "P7", "P14")


def test_single_flow_path():
    graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
    estimate = analytic_estimate(graph, spec_for({"A": 1, "B": 1}))
    assert critical_path(graph, estimate) == ("A", "B")


def test_path_starts_at_an_initial_process(mp3_graph, platform_3seg):
    estimate = analytic_estimate(
        mp3_graph, PlatformSpec.from_platform(platform_3seg)
    )
    path = critical_path(mp3_graph, estimate)
    assert not mp3_graph.incoming(path[0])


def test_completion_times_monotone_along_path(mp3_graph, platform_3seg):
    # the path walks binding precedences, so completion times can never
    # decrease along it
    estimate = analytic_estimate(
        mp3_graph, PlatformSpec.from_platform(platform_3seg)
    )
    path = critical_path(mp3_graph, estimate)
    times = [estimate.completion_fs[p] for p in path]
    assert all(a <= b for a, b in zip(times, times[1:]))
    # and it ends at the globally last completion
    assert times[-1] == max(estimate.completion_fs.values())


def test_every_hop_is_a_real_flow(mp3_graph, platform_3seg):
    estimate = analytic_estimate(
        mp3_graph, PlatformSpec.from_platform(platform_3seg)
    )
    path = critical_path(mp3_graph, estimate)
    for source, target in zip(path, path[1:]):
        assert mp3_graph.flow(source, target) is not None
