"""Parameter sweep and design-space exploration tests."""

import pytest

from repro.analysis.dse import explore_design_space
from repro.analysis.sweep import package_size_sweep, segment_count_sweep
from repro.apps.mp3 import (
    PAPER_CA_FREQUENCY_MHZ,
    paper_allocation,
    paper_platform,
    paper_segment_frequencies_mhz,
)


class TestPackageSizeSweep:
    @pytest.fixture(scope="class")
    def points(self, mp3_graph):
        return package_size_sweep(
            mp3_graph,
            platform_factory=lambda s: paper_platform(3, package_size=s),
            package_sizes=[18, 36],
        )

    def test_one_point_per_size(self, points):
        assert [p.parameter for p in points] == [18, 36]

    def test_smaller_packages_slower(self, points):
        # the paper's experiment: s=18 -> 560 us vs s=36 -> 490 us
        by_size = {p.parameter: p for p in points}
        assert by_size[18].estimated_us > by_size[36].estimated_us

    def test_smaller_packages_less_accurate(self, points):
        # "the higher the data package, the less impact of these figures"
        by_size = {p.parameter: p for p in points}
        assert by_size[18].accuracy < by_size[36].accuracy

    def test_estimates_below_actuals(self, points):
        for point in points:
            assert point.estimated_us < point.actual_us


class TestSegmentCountSweep:
    def test_runs_paper_configurations(self, mp3_graph):
        points = segment_count_sweep(
            mp3_graph,
            allocations=[paper_allocation(n) for n in (1, 2, 3)],
            segment_frequencies_mhz=paper_segment_frequencies_mhz,
            ca_frequency_mhz=PAPER_CA_FREQUENCY_MHZ,
            package_size=36,
        )
        assert [p.parameter for p in points] == [1, 2, 3]
        for point in points:
            assert point.estimated_us > 0
            assert point.estimated_us < point.actual_us


class TestDSE:
    def test_explore_returns_sorted_points(self, mp3_graph):
        points = explore_design_space(
            mp3_graph,
            segment_counts=[2],
            package_sizes=[36, 72],
            segment_frequencies_mhz=paper_segment_frequencies_mhz,
            ca_frequency_mhz=PAPER_CA_FREQUENCY_MHZ,
            extra_allocations=[("paper", paper_allocation(2))],
        )
        # placetool(2) x 2 sizes + paper x 2 sizes
        assert len(points) == 4
        times = [p.execution_time_us for p in points]
        assert times == sorted(times)

    def test_points_labelled_by_source(self, mp3_graph):
        points = explore_design_space(
            mp3_graph,
            segment_counts=[2],
            package_sizes=[36],
            segment_frequencies_mhz=paper_segment_frequencies_mhz,
            ca_frequency_mhz=PAPER_CA_FREQUENCY_MHZ,
        )
        assert all("placetool" in p.allocation_source for p in points)


class TestEstimatorPrune:
    def explore(self, mp3_graph, **kwargs):
        return explore_design_space(
            mp3_graph,
            segment_counts=[2],
            package_sizes=[36, 72],
            segment_frequencies_mhz=paper_segment_frequencies_mhz,
            ca_frequency_mhz=PAPER_CA_FREQUENCY_MHZ,
            extra_allocations=[("paper", paper_allocation(2))],
            **kwargs,
        )

    def test_prune_narrows_the_grid(self, mp3_graph):
        full = self.explore(mp3_graph)
        pruned = self.explore(mp3_graph, estimator_prune=2)
        assert len(full) == 4
        assert len(pruned) == 2
        # the pre-estimate rides along on every surviving point
        assert all(p.estimated_us is not None and p.estimated_us > 0
                   for p in pruned)
        assert all(p.estimated_us is None for p in full)

    def test_prune_preserves_the_winner(self, mp3_graph):
        # the estimator ranks well enough that the emulated optimum
        # survives a half-width cut — the whole point of the inner loop
        full = self.explore(mp3_graph)
        pruned = self.explore(mp3_graph, estimator_prune=2)
        assert pruned[0].execution_time_us == full[0].execution_time_us
        assert pruned[0].package_size == full[0].package_size

    def test_prune_wider_than_grid_keeps_everything(self, mp3_graph):
        pruned = self.explore(mp3_graph, estimator_prune=100)
        assert len(pruned) == 4

    def test_prune_must_be_positive(self, mp3_graph):
        with pytest.raises(ValueError, match="estimator_prune"):
            self.explore(mp3_graph, estimator_prune=0)
