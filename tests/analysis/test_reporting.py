"""Generated experiment report tests."""

import pytest

from repro.analysis.reporting import generate_experiment_report, write_experiment_report


@pytest.fixture(scope="module")
def report_text():
    return generate_experiment_report()


def test_contains_all_sections(report_text):
    for heading in (
        "# SegBus reproduction report",
        "## Headline experiment",
        "## BU useful/waiting period",
        "## Accuracy experiments",
        "## Package-size sweep",
        "## Process timeline checkpoints",
    ):
        assert heading in report_text


def test_paper_exact_rows_present(report_text):
    assert "| BU12 TCT | 2336 | 2336 | +0.0% |" in report_text
    assert "2304 / 2336 / 1" in report_text  # paper UP/TCT/WP
    assert "| P0 start (ps) | 10989 | 10989 |" in report_text


def test_tables_well_formed(report_text):
    for line in report_text.splitlines():
        if line.startswith("|"):
            assert line.endswith("|")


def test_accuracy_rows(report_text):
    assert "s36" in report_text and "s18" in report_text
    assert "p9_moved" in report_text


def test_write_to_disk(tmp_path, report_text):
    target = write_experiment_report(tmp_path / "sub" / "report.md")
    assert target.exists()
    assert target.read_text() == report_text
