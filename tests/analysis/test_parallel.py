"""Parallel emulation batch tests."""

import pytest

from repro.analysis.parallel import EmulationJob, JobResult, parallel_emulate
from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec
from repro.psdf.generators import chain_psdf


def make_jobs():
    mp3 = mp3_decoder_psdf()
    jobs = []
    for size in (18, 36, 72):
        spec = PlatformSpec.from_platform(paper_platform(3, package_size=size))
        jobs.append(EmulationJob(label=f"s{size}", application=mp3, spec=spec))
    chain = chain_psdf(4, items_per_stage=144, ticks_per_package=60)
    jobs.append(
        EmulationJob(
            label="chain",
            application=chain,
            spec=PlatformSpec(
                package_size=36,
                segment_frequencies_mhz={1: 100.0},
                ca_frequency_mhz=100.0,
                placement={name: 1 for name in chain.process_names},
            ),
            config=EmulationConfig.reference(),
        )
    )
    return jobs


class TestParallelEmulate:
    def test_results_in_input_order(self):
        results = parallel_emulate(make_jobs(), workers=2)
        assert [r.label for r in results] == ["s18", "s36", "s72", "chain"]

    def test_parallel_equals_serial(self):
        jobs = make_jobs()
        serial = parallel_emulate(jobs, workers=1)
        parallel = parallel_emulate(jobs, workers=2)
        assert serial == parallel  # bit-identical summaries

    def test_small_batch_runs_serially(self):
        jobs = make_jobs()[:2]
        results = parallel_emulate(jobs, workers=4, serial_threshold=3)
        assert len(results) == 2  # no pool spun up; just works

    def test_result_contents(self):
        result = parallel_emulate(make_jobs()[:1], workers=1)[0]
        assert isinstance(result, JobResult)
        assert result.execution_time_us > 0
        assert result.packages_delivered > 0
        assert len(result.sa_tcts) == 3

    def test_empty_batch(self):
        assert parallel_emulate([], workers=2) == []


def make_broken_job(label="broken"):
    """A job whose worker must fail: the placement misses processes."""
    chain = chain_psdf(3, items_per_stage=72, ticks_per_package=40)
    return EmulationJob(
        label=label,
        application=chain,
        spec=PlatformSpec(
            package_size=36,
            segment_frequencies_mhz={1: 100.0},
            ca_frequency_mhz=100.0,
            placement={chain.process_names[0]: 1},  # others unplaced
        ),
    )


class TestWorkerFailure:
    def test_serial_failure_names_the_job(self):
        from repro.analysis.parallel import JobError

        with pytest.raises(JobError, match="broken"):
            parallel_emulate([make_broken_job()], workers=1)

    def test_parallel_failure_names_the_job(self):
        from repro.analysis.parallel import JobError

        jobs = make_jobs() + [make_broken_job()]
        with pytest.raises(JobError, match="broken"):
            parallel_emulate(jobs, workers=2)

    def test_multiple_failures_all_reported(self):
        from repro.analysis.parallel import JobError

        jobs = [make_broken_job("bad_a"), make_broken_job("bad_b")]
        with pytest.raises(JobError, match="bad_a.*bad_b"):
            parallel_emulate(jobs, workers=1)

    def test_failure_reports_counts(self):
        from repro.analysis.parallel import JobError

        jobs = make_jobs() + [make_broken_job()]
        with pytest.raises(JobError, match=r"1 of 5"):
            parallel_emulate(jobs, workers=2)

    def test_healthy_batch_unaffected_by_wrapping(self):
        results = parallel_emulate(make_jobs(), workers=2)
        assert all(isinstance(r, JobResult) for r in results)

    def test_job_error_keeps_partial_results_and_ledger(self):
        from repro.analysis.parallel import JobError, JobFailure

        jobs = make_jobs() + [make_broken_job()]
        with pytest.raises(JobError) as excinfo:
            parallel_emulate(jobs, workers=2)
        err = excinfo.value
        # the completed summaries are not discarded any more
        assert len(err.partial_results) == 4
        assert all(isinstance(r, JobResult) for r in err.partial_results)
        (failure,) = err.failures
        assert isinstance(failure, JobFailure)
        assert failure.label == "broken"
        assert failure.attempts >= 1
        assert failure.error  # exception class name
        assert failure.traceback_tail

    def test_emulate_batch_degrades_gracefully(self):
        from repro.analysis.parallel import emulate_batch

        jobs = make_jobs() + [make_broken_job()]
        batch = emulate_batch(jobs, workers=2)
        assert not batch.ok
        assert batch.results[-1] is None
        assert [r.label for r in batch.results[:-1]] == [
            "s18", "s36", "s72", "chain"
        ]
        assert batch.failures[0].label == "broken"


class TestCheckpointedEmulation:
    def test_resumed_digests_equal_clean_run(self, tmp_path):
        jobs = make_jobs()
        clean = parallel_emulate(jobs, workers=2)
        first = parallel_emulate(
            jobs,
            workers=2,
            checkpoint_dir=tmp_path,
            checkpoint_name="emu",
        )
        resumed = parallel_emulate(
            jobs,
            workers=2,
            checkpoint_dir=tmp_path,
            checkpoint_name="emu",
            resume=True,
        )
        assert clean == first == resumed  # bit-identical summaries


class TestVectorizedBatchPath:
    """All-``batch`` jobs collapse into one lockstep run (no pool)."""

    def _as_engine(self, engine):
        return [
            EmulationJob(
                label=job.label,
                application=job.application,
                spec=job.spec,
                config=job.config,
                engine=engine,
            )
            for job in make_jobs()
        ]

    def test_vectorized_results_equal_executor_path(self):
        from repro.analysis.parallel import emulate_batch

        fast = emulate_batch(self._as_engine("fast"), workers=1)
        batch = emulate_batch(self._as_engine("batch"), workers=1)
        assert fast.ok and batch.ok
        assert tuple(fast.results) == tuple(batch.results)
        assert batch.stats.attempts == len(fast.results)

    def test_mixed_engines_use_the_executor_path(self):
        from repro.analysis.parallel import emulate_batch

        jobs = self._as_engine("batch")
        jobs[0] = EmulationJob(
            label=jobs[0].label,
            application=jobs[0].application,
            spec=jobs[0].spec,
            config=jobs[0].config,
            engine="fast",
        )
        # one non-batch job disables the vectorized collapse; results
        # are identical anyway because the engines are equivalent
        mixed = emulate_batch(jobs, workers=1)
        pure = emulate_batch(self._as_engine("fast"), workers=1)
        assert tuple(mixed.results) == tuple(pure.results)

    def test_checkpointing_keeps_the_supervised_path(self, tmp_path):
        from repro.analysis.parallel import emulate_batch

        jobs = self._as_engine("batch")
        journaled = emulate_batch(jobs, workers=1, checkpoint_dir=tmp_path)
        direct = emulate_batch(jobs, workers=1)
        assert tuple(journaled.results) == tuple(direct.results)
        assert list(tmp_path.iterdir()), "checkpoint journal was not written"
