"""BU useful/waiting-period analysis tests (paper section 4 Discussion)."""

import pytest

from repro.analysis.bu_utilization import bu_utilization


class TestMP3BUAnalysis:
    def test_bu12_matches_paper_exactly(self, report_3seg):
        util = {u.name: u for u in bu_utilization(report_3seg)}
        bu12 = util["BU12"]
        # UP12 = 2304, TCT12 = 2336, W̄P12 = 1 — the paper's exact numbers
        assert bu12.useful_period == 2304
        assert bu12.tct == 2336
        assert bu12.mean_waiting_period == pytest.approx(1.0)

    def test_bu23_matches_paper_exactly(self, report_3seg):
        util = {u.name: u for u in bu_utilization(report_3seg)}
        bu23 = util["BU23"]
        # UP23 = 144, TCT23 = 146, W̄P23 = 1
        assert bu23.useful_period == 144
        assert bu23.tct == 146
        assert bu23.mean_waiting_period == pytest.approx(1.0)

    def test_tct_never_below_up(self, report_3seg):
        for util in bu_utilization(report_3seg):
            assert util.tct >= util.useful_period

    def test_waiting_total(self, report_3seg):
        util = {u.name: u for u in bu_utilization(report_3seg)}
        assert util["BU12"].waiting_total == 32
        assert util["BU23"].waiting_total == 2

    def test_not_congested_in_paper_config(self, report_3seg):
        for util in bu_utilization(report_3seg):
            assert not util.congested

    def test_idle_bu_zero_wp(self):
        from repro.emulator.report import BUResult

        idle = BUResult(
            left=1, right=2, input_packages=0, output_packages=0,
            received_from_left=0, received_from_right=0,
            transferred_to_left=0, transferred_to_right=0,
            tct=0, waiting_ticks=0,
        )
        from repro.analysis.bu_utilization import _analyze

        util = _analyze(idle, 36)
        assert util.mean_waiting_period == 0.0
        assert util.useful_period == 0
