"""Analytical estimator tests: exactness without contention, lower bound with."""

import pytest

from repro.analysis.analytic import (
    ContentionDiagnosis,
    analytic_estimate,
    diagnose_contention,
)
from repro.emulator.config import EmulationConfig
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.psdf.graph import PSDFGraph

NS = 1_000_000


def spec_for(placement, segments=1, package_size=36):
    return PlatformSpec(
        package_size=package_size,
        segment_frequencies_mhz={i: 100.0 for i in range(1, segments + 1)},
        ca_frequency_mhz=100.0,
        placement=placement,
    )


class TestContentionFreeExactness:
    """On contention-free scenarios the analytic walk equals the emulator."""

    def test_single_flow_exact(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        spec = spec_for({"A": 1, "B": 1})
        estimate = analytic_estimate(graph, spec)
        emulated = Simulation(graph, spec).run()
        assert estimate.execution_time_fs == emulated.execution_time_fs()
        assert estimate.completion_fs["A"] == 870 * NS

    def test_chain_exact(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 72, 1, 50), ("B", "C", 72, 2, 40)]
        )
        spec = spec_for({"A": 1, "B": 1, "C": 1})
        estimate = analytic_estimate(graph, spec)
        emulated = Simulation(graph, spec).run()
        assert estimate.execution_time_fs == emulated.execution_time_fs()

    def test_inter_segment_exact(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        spec = spec_for({"A": 1, "B": 2}, segments=2)
        estimate = analytic_estimate(graph, spec)
        emulated = Simulation(graph, spec).run()
        assert estimate.execution_time_fs == emulated.execution_time_fs()

    def test_transit_exact(self):
        graph = PSDFGraph.from_edges([("A", "B", 72, 1, 50)])
        spec = spec_for({"A": 1, "B": 3}, segments=3)
        estimate = analytic_estimate(graph, spec)
        emulated = Simulation(graph, spec).run()
        assert estimate.execution_time_fs == emulated.execution_time_fs()

    def test_reference_config_exact_without_contention(self):
        graph = PSDFGraph.from_edges([("A", "B", 72, 1, 50)])
        spec = spec_for({"A": 1, "B": 2}, segments=2)
        config = EmulationConfig.reference()
        estimate = analytic_estimate(graph, spec, config)
        emulated = Simulation(graph, spec, config).run()
        assert estimate.execution_time_fs == emulated.execution_time_fs()


class TestLowerBound:
    def test_contention_makes_emulated_slower(self):
        graph = PSDFGraph.from_edges(
            [("A", "C", 180, 1, 10), ("B", "C", 180, 1, 10)]
        )
        spec = spec_for({"A": 1, "B": 1, "C": 1})
        diagnosis = diagnose_contention(graph, spec)
        assert diagnosis.analytic_us < diagnosis.emulated_us
        assert diagnosis.contention_us > 0
        assert 0 < diagnosis.contention_share < 1

    def test_mp3_lower_bound_and_proximity(self, mp3_graph, platform_3seg):
        spec = PlatformSpec.from_platform(platform_3seg)
        diagnosis = diagnose_contention(mp3_graph, spec)
        assert diagnosis.analytic_us <= diagnosis.emulated_us
        # the MP3 app is lightly contended: analytic within 10 %
        assert diagnosis.contention_share < 0.10


class TestDiagnosisArithmetic:
    def test_contention_fields_are_derived(self):
        diagnosis = ContentionDiagnosis(analytic_us=80.0, emulated_us=100.0)
        assert diagnosis.contention_us == pytest.approx(20.0)
        assert diagnosis.contention_share == pytest.approx(0.2)

    def test_zero_emulated_time_has_zero_share(self):
        diagnosis = ContentionDiagnosis(analytic_us=0.0, emulated_us=0.0)
        assert diagnosis.contention_share == 0.0

    def test_contention_free_model_diagnoses_clean(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        diagnosis = diagnose_contention(graph, spec_for({"A": 1, "B": 1}))
        assert diagnosis.contention_us == pytest.approx(0.0)
        assert diagnosis.contention_share == pytest.approx(0.0)

    def test_diagnosis_respects_config(self):
        # the reference config adds grant/turnaround overheads to both
        # sides; the bound must still hold and both times must grow
        graph = PSDFGraph.from_edges(
            [("A", "C", 180, 1, 10), ("B", "C", 180, 1, 10)]
        )
        spec = spec_for({"A": 1, "B": 1, "C": 1})
        default = diagnose_contention(graph, spec)
        reference = diagnose_contention(
            graph, spec, EmulationConfig.reference()
        )
        assert reference.analytic_us >= default.analytic_us
        assert reference.emulated_us >= default.emulated_us
        assert reference.analytic_us <= reference.emulated_us


class TestEstimateObject:
    def test_completion_us(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        estimate = analytic_estimate(graph, spec_for({"A": 1, "B": 1}))
        assert estimate.completion_us("A") == pytest.approx(0.87)
