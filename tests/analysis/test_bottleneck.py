"""Bottleneck analysis tests."""

import pytest

from repro.analysis.bottleneck import find_bottlenecks


@pytest.fixture
def bottlenecks(sim_3seg, report_3seg):
    return find_bottlenecks(sim_3seg, report_3seg)


def test_ranking_ordered_by_waiting(bottlenecks):
    waits = [u.waiting_total for u in bottlenecks.bu_ranking]
    assert waits == sorted(waits, reverse=True)


def test_worst_bu_is_bu12(bottlenecks):
    # BU12 carries 32 packages vs BU23's 2: more accumulated waiting
    assert bottlenecks.worst_bu.name == "BU12"


def test_segment_loads_bounded(bottlenecks):
    for load in bottlenecks.segment_loads:
        assert 0.0 <= load.utilization <= 1.0


def test_hottest_segment_is_a_real_segment(bottlenecks):
    assert bottlenecks.hottest_segment.index in (1, 2, 3)


def test_segment1_hotter_than_segment3(bottlenecks):
    loads = {l.index: l.utilization for l in bottlenecks.segment_loads}
    # segment 3 hosts only P4 (one package each way): nearly idle
    assert loads[1] > loads[3]


def test_advice_mentions_congested_bu_and_hot_segment(bottlenecks):
    advice = bottlenecks.advice()
    assert "BU12" in advice
    assert "busiest" in advice
