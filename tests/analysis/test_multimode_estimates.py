"""Multi-mode estimate composition: transition charges, dwell, SAN band."""

from repro.analysis.analytic import (
    analytic_estimate,
    analytic_estimate_multimode,
    mode_analytic_estimates,
    platform_clocks,
    resolved_phase_iterations,
    transition_delay_fs,
)
from repro.analysis.stochastic import (
    stochastic_estimate,
    stochastic_estimate_multimode,
)
from repro.emulator.kernel import PlatformSpec
from repro.emulator.multimode import run_multimode
from repro.model.mapping import Allocation, map_application
from repro.psdf.graph import PSDFGraph
from repro.psdf.modes import (
    ModePhase,
    ModeSchedule,
    MultiModeApplication,
    TransitionSpec,
)

TRANSITION = TransitionSpec(reconfig_ticks=12, flush_ticks_per_bu=3)


def _graphs():
    lo = PSDFGraph.from_edges(
        [("A", "B", 36, 1, 10), ("B", "C", 36, 2, 10)], name="lo"
    )
    hi = PSDFGraph.from_edges(
        [("A", "B", 72, 1, 20), ("B", "C", 72, 2, 20)], name="hi"
    )
    return lo, hi


def toy_app(phases=None, transition=TRANSITION):
    lo, hi = _graphs()
    schedule = ModeSchedule(
        phases=phases
        or (ModePhase("lo", 2), ModePhase("hi", 1), ModePhase("lo", 1)),
        transition=transition,
    )
    return MultiModeApplication(
        name="toy2", modes={"lo": lo, "hi": hi}, schedule=schedule
    )


def toy_spec():
    lo, _ = _graphs()
    psm = map_application(
        lo,
        Allocation.from_groups([("A", "B"), ("C",)]),
        segment_frequencies_mhz=(100.0, 100.0),
        ca_frequency_mhz=120.0,
        package_size=36,
        name="Toy2",
    )
    return PlatformSpec.from_platform(psm.platform)


class TestTransitionDelay:
    def test_delay_is_ca_ticks_times_bu_count(self):
        app = toy_app()
        spec = toy_spec()
        _, ca_clock = platform_clocks(spec)
        # two segments -> one BU: 12 + 3 * 1 = 15 CA ticks
        assert transition_delay_fs(app, spec) == ca_clock.ticks_to_fs(15)

    def test_zero_spec_charges_nothing(self):
        app = toy_app(transition=TransitionSpec())
        assert transition_delay_fs(app, toy_spec()) == 0


class TestAnalyticComposition:
    def test_same_mode_phases_scale_linearly(self):
        app = toy_app(
            phases=(ModePhase("lo", 2), ModePhase("lo", 3)),
            transition=TRANSITION,
        )
        spec = toy_spec()
        single = analytic_estimate(app.modes["lo"], spec)
        composed = analytic_estimate_multimode(app, spec)
        # no mode change -> no transition charge, pure linear scaling
        assert composed.transition_total_fs == 0
        assert composed.execution_time_fs == 5 * single.execution_time_fs

    def test_switches_charge_transition_total(self):
        app = toy_app()
        spec = toy_spec()
        composed = analytic_estimate_multimode(app, spec)
        per_mode = mode_analytic_estimates(app, spec)
        switch_fs = transition_delay_fs(app, spec)
        assert composed.switch_count == 2
        assert composed.transition_total_fs == 2 * switch_fs
        assert composed.execution_time_fs == (
            3 * per_mode["lo"].execution_time_fs
            + per_mode["hi"].execution_time_fs
            + 2 * switch_fs
        )

    def test_dwell_resolution_matches_covering_count(self):
        spec = toy_spec()
        lo, _ = _graphs()
        single = analytic_estimate(lo, spec)
        _, ca_clock = platform_clocks(spec)
        # a dwell of three iterations' worth of CA ticks resolves to 3
        dwell_ticks = -(
            -3 * single.execution_time_fs // ca_clock.period_fs
        )
        app = toy_app(
            phases=(ModePhase("lo", 1, min_dwell_ticks=int(dwell_ticks)),),
            transition=TransitionSpec(),
        )
        assert resolved_phase_iterations(app, spec) == (3,)

    def test_composition_matches_emulated_structure(self):
        # the analytic composition law is the emulator's: same iteration
        # counts, same switch charges, per-mode analytic <= per-mode emulated
        app = toy_app()
        spec = toy_spec()
        composed = run_multimode(app, spec)
        estimate = analytic_estimate_multimode(app, spec)
        assert [
            (p.mode, p.iterations) for p in composed.phases
        ] == list(estimate.phases)
        assert composed.transition_total_fs == estimate.transition_total_fs


class TestStochasticComposition:
    def test_composes_per_mode_estimates_exactly(self):
        app = toy_app()
        spec = toy_spec()
        estimate = stochastic_estimate_multimode(app, spec)
        expected = estimate.analytic.transition_total_fs + sum(
            count * stochastic_estimate(app.modes[mode], spec).execution_time_fs
            for mode, count in estimate.analytic.phases
        )
        assert estimate.execution_time_fs == expected
        assert estimate.contention_fs == (
            estimate.execution_time_fs - estimate.analytic.execution_time_fs
        )

    def test_stochastic_at_least_analytic(self):
        app = toy_app()
        spec = toy_spec()
        estimate = stochastic_estimate_multimode(app, spec)
        assert estimate.execution_time_fs >= estimate.analytic_fs
        assert estimate.contention_fs >= 0

    def test_near_emulation_on_the_toy(self):
        app = toy_app()
        spec = toy_spec()
        emulated = run_multimode(app, spec).execution_time_fs
        estimated = stochastic_estimate_multimode(app, spec).execution_time_fs
        assert abs(estimated - emulated) / emulated < 0.15
