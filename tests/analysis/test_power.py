"""Power/energy model tests."""

import pytest

from repro.analysis.power import PowerCoefficients, estimate_power
from repro.emulator.emulator import SegBusEmulator


@pytest.fixture(scope="module")
def power_3seg(sim_3seg):
    return estimate_power(sim_3seg)


class TestStructure:
    def test_all_elements_present(self, power_3seg):
        names = set(power_3seg.elements)
        assert {"Segment1", "Segment2", "Segment3", "SA1", "SA2", "SA3",
                "CA", "BU12", "BU23", "FUs"} == names

    def test_totals_consistent(self, power_3seg):
        assert power_3seg.total_energy == pytest.approx(
            power_3seg.dynamic_energy + power_3seg.static_energy
        )
        assert power_3seg.total_energy == pytest.approx(
            sum(e.total for e in power_3seg.elements.values())
        )

    def test_energies_positive(self, power_3seg):
        assert power_3seg.total_energy > 0
        for element in power_3seg.elements.values():
            assert element.dynamic >= 0
            assert element.static >= 0

    def test_average_power(self, power_3seg):
        assert power_3seg.average_power == pytest.approx(
            power_3seg.total_energy / power_3seg.runtime_us
        )

    def test_format_table(self, power_3seg):
        table = power_3seg.format_table()
        assert "Segment1" in table and "TOTAL" in table


class TestPhysicalSanity:
    def test_bu12_burns_more_than_bu23(self, power_3seg):
        # 32 packages vs 2 packages
        assert power_3seg.element("BU12").total > power_3seg.element("BU23").total

    def test_segment1_more_dynamic_than_segment3(self, power_3seg):
        # segment 3 hosts only P4's two transfers
        assert (
            power_3seg.element("Segment1").dynamic
            > power_3seg.element("Segment3").dynamic
        )

    def test_fu_compute_dominates(self, power_3seg):
        # the MP3 app is compute-bound: FU energy above any single bus
        assert power_3seg.element("FUs").total > power_3seg.element("Segment1").total

    def test_coefficient_scaling_scales_energy(self, sim_3seg):
        base = estimate_power(sim_3seg)
        double = estimate_power(sim_3seg, PowerCoefficients().scaled(2.0))
        assert double.total_energy == pytest.approx(2 * base.total_energy)

    def test_zero_coefficients_zero_energy(self, sim_3seg):
        zero = estimate_power(sim_3seg, PowerCoefficients().scaled(0.0))
        assert zero.total_energy == 0.0


class TestConfigurationComparison:
    def test_smaller_packages_cost_more_bu_energy(self, mp3_graph):
        from repro.apps.mp3 import paper_platform

        def bu_energy(package_size):
            emulator = SegBusEmulator.from_models(
                mp3_graph, paper_platform(3, package_size=package_size)
            )
            emulator.run()
            report = estimate_power(emulator.simulation)
            return report.element("BU12").total + report.element("BU23").total

        # halving the package size doubles the crossings -> more BU energy
        assert bu_energy(18) > bu_energy(36)

    def test_longer_run_more_static_energy(self, mp3_graph):
        from repro.apps.mp3 import paper_platform
        from repro.emulator.config import EmulationConfig

        fast = SegBusEmulator.from_models(mp3_graph, paper_platform(3))
        fast.run()
        slow = SegBusEmulator.from_models(
            mp3_graph, paper_platform(3), config=EmulationConfig.reference()
        )
        slow.run()
        assert (
            estimate_power(slow.simulation).static_energy
            > estimate_power(fast.simulation).static_energy
        )
