"""Supervisor tests: crash recovery, timeouts, retries, checkpoint/resume.

The worker-death paths use :class:`repro.testing.chaos.ProbeJob` — a tiny
deterministic job — plus pinned :class:`ChaosPlan` hazards so each test
exercises exactly one failure mode.  The machine running CI may have a
single CPU, so every parallel-path test pins ``workers`` explicitly.
"""

from __future__ import annotations

import logging

import pytest

from repro.analysis.executor import (
    BatchResult,
    CampaignExecutor,
    CheckpointError,
    CheckpointJournal,
    ExecutorInterrupted,
    ExecutorPolicy,
    JobError,
    JobFailure,
    canonical_digest,
    execute_batch,
)
from repro.testing.chaos import ChaosPlan, ChaosPoisonError, ProbeJob, run_probe

PARALLEL = dict(workers=2, serial_threshold=1)


def probe_jobs(count: int):
    return [ProbeJob(label=f"j{i}", value=i) for i in range(count)]


def expected(count: int):
    return [run_probe(job) for job in probe_jobs(count)]


class TestHappyPath:
    def test_parallel_results_in_input_order(self):
        batch = execute_batch(probe_jobs(8), run_probe, **PARALLEL)
        assert batch.ok
        assert list(batch.results) == expected(8)
        assert batch.failures == ()

    def test_serial_matches_parallel(self):
        serial = execute_batch(probe_jobs(6), run_probe, workers=1)
        parallel = execute_batch(probe_jobs(6), run_probe, **PARALLEL)
        assert list(serial.results) == list(parallel.results)

    def test_empty_batch(self):
        batch = execute_batch([], run_probe, **PARALLEL)
        assert batch.ok and batch.results == ()

    def test_decision_debug_lines(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.analysis.executor"):
            execute_batch(probe_jobs(2), run_probe, workers=1)
            execute_batch(probe_jobs(6), run_probe, **PARALLEL)
        text = caplog.text
        assert "serial path" in text
        assert "parallel path with 2 worker(s)" in text
        assert "chunksize" in text

    def test_explicit_chunksize_respected(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.analysis.executor"):
            batch = execute_batch(
                probe_jobs(8), run_probe, chunksize=3, **PARALLEL
            )
        assert batch.ok
        assert "chunksize 3" in caplog.text


class TestFailurePaths:
    def test_retry_exhaustion_lands_in_ledger(self):
        jobs = [ProbeJob("good", value=1), ProbeJob("bad", fail=True)]
        batch = execute_batch(
            jobs,
            run_probe,
            policy=ExecutorPolicy(max_attempts=2, backoff_base_s=0.0),
            workers=1,
        )
        assert not batch.ok
        assert batch.results[0] == run_probe(jobs[0])
        assert batch.results[1] is None
        (failure,) = batch.failures
        assert isinstance(failure, JobFailure)
        assert failure.label == "bad"
        assert failure.attempts == 2
        assert failure.kind == "error"
        assert failure.error == "ValueError"
        assert "always fails" in failure.message
        assert failure.traceback_tail

    def test_job_error_carries_structure(self):
        jobs = [ProbeJob("ok"), ProbeJob("bad_a", fail=True), ProbeJob("bad_b", fail=True)]
        batch = execute_batch(
            jobs,
            run_probe,
            policy=ExecutorPolicy(max_attempts=1),
            workers=1,
        )
        with pytest.raises(JobError) as excinfo:
            batch.raise_on_failure(what="probe")
        err = excinfo.value
        assert "2 of 3" in str(err)
        assert "bad_a" in str(err) and "bad_b" in str(err)
        assert [f.label for f in err.failures] == ["bad_a", "bad_b"]
        assert err.partial_results == [run_probe(jobs[0])]

    def test_worker_crash_recovery(self):
        # j2's first attempt SIGKILLs its worker; the supervisor must
        # respawn and the retry must produce the same results as a calm run
        plan = ChaosPlan(kill_on=("j2:1",))
        batch = execute_batch(
            probe_jobs(6), run_probe, chaos=plan, **PARALLEL
        )
        assert batch.ok
        assert list(batch.results) == expected(6)
        assert batch.stats.crashes == 1
        assert batch.stats.respawned_workers >= 1
        assert batch.stats.retries >= 1

    def test_per_job_timeout_expiry(self):
        # j1 stalls on attempt 1; the per-job timeout kills the worker and
        # the retry (no stall pinned for attempt 2) succeeds
        plan = ChaosPlan(stall_on=("j1:1",), stall_s=30.0)
        batch = execute_batch(
            probe_jobs(4),
            run_probe,
            policy=ExecutorPolicy(timeout_s=0.5, backoff_base_s=0.0),
            chaos=plan,
            **PARALLEL,
        )
        assert batch.ok
        assert list(batch.results) == expected(4)
        assert batch.stats.timeouts == 1

    def test_timeout_exhaustion_is_a_failure_not_a_hang(self):
        plan = ChaosPlan(stall_on=("j0:1", "j0:2"), stall_s=30.0)
        batch = execute_batch(
            probe_jobs(2),
            run_probe,
            policy=ExecutorPolicy(
                max_attempts=2, timeout_s=0.4, backoff_base_s=0.0
            ),
            chaos=plan,
            **PARALLEL,
        )
        assert not batch.ok
        (failure,) = batch.failures
        assert failure.label == "j0"
        assert failure.kind == "timeout"
        assert batch.results[1] == run_probe(ProbeJob("j1", value=1))

    def test_crash_exhaustion_reports_crash_kind(self):
        plan = ChaosPlan(kill_on=("j0:1", "j0:2"))
        batch = execute_batch(
            probe_jobs(2),
            run_probe,
            policy=ExecutorPolicy(max_attempts=2, backoff_base_s=0.0),
            chaos=plan,
            **PARALLEL,
        )
        assert not batch.ok
        (failure,) = batch.failures
        assert failure.kind == "crash"
        assert failure.attempts == 2


class TestBackoffDeterminism:
    def test_delay_schedule_is_reproducible(self):
        policy = ExecutorPolicy(seed=7)
        a = [policy.delay_s("job", k) for k in range(1, 4)]
        b = [policy.delay_s("job", k) for k in range(1, 4)]
        assert a == b
        assert a[0] <= a[1] <= a[2] or max(a) <= policy.backoff_max_s

    def test_different_seeds_jitter_differently(self):
        a = ExecutorPolicy(seed=1).delay_s("job", 1)
        b = ExecutorPolicy(seed=2).delay_s("job", 1)
        assert a != b

    def test_delay_capped(self):
        policy = ExecutorPolicy(backoff_base_s=1.0, backoff_max_s=1.5, jitter=0.0)
        assert policy.delay_s("job", 10) <= 1.5


class TestCheckpointResume:
    def test_resume_equivalence(self, tmp_path):
        jobs = probe_jobs(8)
        clean = execute_batch(jobs, run_probe, **PARALLEL)

        # interrupted run: SIGTERM after 3 completions
        with pytest.raises(ExecutorInterrupted):
            execute_batch(
                jobs,
                run_probe,
                checkpoint_dir=tmp_path,
                checkpoint_name="camp",
                chaos=ChaosPlan(interrupt_after=3),
                **PARALLEL,
            )
        journal = CheckpointJournal(tmp_path, "camp")
        journaled = journal.load()
        assert 0 < len(journaled) < len(jobs)

        resumed = execute_batch(
            jobs,
            run_probe,
            checkpoint_dir=tmp_path,
            checkpoint_name="camp",
            resume=True,
            **PARALLEL,
        )
        assert resumed.ok
        assert list(resumed.results) == list(clean.results)
        assert resumed.stats.replayed == len(journaled)
        # the finished batch is consolidated atomically
        assert journal.done_path.is_file()
        assert not journal.path.is_file()

    def test_resume_digest_keyed_not_position_keyed(self, tmp_path):
        jobs = probe_jobs(4)
        with pytest.raises(ExecutorInterrupted):
            execute_batch(
                jobs,
                run_probe,
                checkpoint_dir=tmp_path,
                checkpoint_name="k",
                chaos=ChaosPlan(interrupt_after=2),
                **PARALLEL,
            )
        # same digests in a different order still replay
        resumed = execute_batch(
            list(reversed(jobs)),
            run_probe,
            checkpoint_dir=tmp_path,
            checkpoint_name="k",
            resume=True,
            **PARALLEL,
        )
        assert resumed.ok
        assert list(resumed.results) == list(reversed(expected(4)))
        assert resumed.stats.replayed >= 2

    def test_torn_trailing_record_tolerated(self, tmp_path):
        jobs = probe_jobs(4)
        with pytest.raises(ExecutorInterrupted):
            execute_batch(
                jobs,
                run_probe,
                checkpoint_dir=tmp_path,
                checkpoint_name="torn",
                chaos=ChaosPlan(interrupt_after=2),
                **PARALLEL,
            )
        journal = CheckpointJournal(tmp_path, "torn")
        before = len(journal.load())
        with open(journal.path, "ab") as fh:
            fh.write(b'{"v": 1, "digest": "abc", "payl')  # torn mid-write
        assert len(journal.load()) == before  # dropped, not fatal
        resumed = execute_batch(
            jobs,
            run_probe,
            checkpoint_dir=tmp_path,
            checkpoint_name="torn",
            resume=True,
            **PARALLEL,
        )
        assert resumed.ok and list(resumed.results) == expected(4)

    def test_corrupt_middle_record_rejected(self, tmp_path):
        journal = CheckpointJournal(tmp_path, "bad")
        journal.open(fresh=True)
        journal.record("d1", "a", {"x": 1})
        journal.record("d2", "b", {"x": 2})
        journal.close()
        lines = journal.path.read_bytes().splitlines()
        lines[0] = b"not json at all"
        journal.path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(CheckpointError, match="corrupt checkpoint"):
            journal.load()

    def test_failed_batch_keeps_live_journal_for_retry(self, tmp_path):
        jobs = [ProbeJob("ok", value=3), ProbeJob("bad", fail=True)]
        batch = execute_batch(
            jobs,
            run_probe,
            policy=ExecutorPolicy(max_attempts=1),
            checkpoint_dir=tmp_path,
            checkpoint_name="partial",
            workers=1,
        )
        assert not batch.ok
        journal = CheckpointJournal(tmp_path, "partial")
        assert journal.path.is_file()          # live journal kept
        assert not journal.done_path.is_file() # no premature finalize
        # a resume replays the good job and retries only the bad one
        resumed = execute_batch(
            jobs,
            run_probe,
            policy=ExecutorPolicy(max_attempts=1),
            checkpoint_dir=tmp_path,
            checkpoint_name="partial",
            resume=True,
            workers=1,
        )
        assert resumed.stats.replayed == 1
        assert resumed.results[0] == run_probe(jobs[0])


class TestCanonicalDigest:
    def test_stable_across_processes(self):
        # xdist/hash-seed independence: pure function of the values
        assert canonical_digest("a", 1) == canonical_digest("a", 1)
        assert canonical_digest("a", 1) != canonical_digest("a", 2)

    def test_emulation_job_digest_covers_config(self):
        from repro.analysis.parallel import EmulationJob
        from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
        from repro.emulator.config import EmulationConfig
        from repro.emulator.kernel import PlatformSpec

        app = mp3_decoder_psdf()
        spec = PlatformSpec.from_platform(paper_platform(2))
        a = EmulationJob("x", app, spec)
        b = EmulationJob(
            "x", app, spec, config=EmulationConfig(bu_sync_ticks=5)
        )
        c = EmulationJob("x", app, spec, engine="stepped")
        assert a.digest() != b.digest()
        assert a.digest() != c.digest()
        assert a.digest() == EmulationJob("x", app, spec).digest()

    def test_emulation_job_default_config_is_per_instance(self):
        # satellite: field(default_factory=...) — no shared default object
        from repro.analysis.parallel import EmulationJob
        import dataclasses

        fields = {f.name: f for f in dataclasses.fields(EmulationJob)}
        config_field = fields["config"]
        assert config_field.default is dataclasses.MISSING
        assert config_field.default_factory is not dataclasses.MISSING


class TestBatchResult:
    def test_completed_counts(self):
        batch = BatchResult(
            results=(1, None, 3),
            failures=(
                JobFailure(
                    label="x",
                    attempts=1,
                    kind="error",
                    error="ValueError",
                    message="m",
                    traceback_tail="",
                ),
            ),
            stats=None,
        )
        assert batch.completed == [1, 3]
        assert not batch.ok


class TestWiredLayers:
    def test_campaign_parallel_matches_serial(self):
        from repro.analysis.campaign import Campaign
        from repro.apps.mp3 import mp3_decoder_psdf, paper_platform

        app = mp3_decoder_psdf()
        serial = (
            Campaign("t")
            .add("a", app, paper_platform(2))
            .add("b", app, paper_platform(3))
            .run(workers=1)
        )
        parallel = (
            Campaign("t")
            .add("a", app, paper_platform(2))
            .add("b", app, paper_platform(3))
            .run(workers=2)
        )
        assert serial == parallel

    def test_dse_accepts_executor_params(self, tmp_path):
        from repro.analysis.dse import explore_design_space
        from repro.apps.mp3 import mp3_decoder_psdf

        points = explore_design_space(
            mp3_decoder_psdf(),
            segment_counts=[2],
            package_sizes=[18, 36],
            segment_frequencies_mhz=lambda n: [200.0] * n,
            ca_frequency_mhz=400.0,
            workers=2,
            checkpoint_dir=tmp_path,
            checkpoint_name="dse",
        )
        assert len(points) == 2
        again = explore_design_space(
            mp3_decoder_psdf(),
            segment_counts=[2],
            package_sizes=[18, 36],
            segment_frequencies_mhz=lambda n: [200.0] * n,
            ca_frequency_mhz=400.0,
            workers=2,
            checkpoint_dir=tmp_path,
            checkpoint_name="dse",
            resume=True,
        )
        assert [p.execution_time_us for p in again] == [
            p.execution_time_us for p in points
        ]
