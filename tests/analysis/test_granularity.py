"""Granularity transformation tests: merge, split, rebalance."""

import pytest

from repro.analysis.granularity import (
    merge_processes,
    split_process,
    suggest_rebalance,
)
from repro.errors import PSDFError
from repro.psdf.flow import FlowCost
from repro.psdf.graph import PSDFGraph


@pytest.fixture
def pipeline():
    return PSDFGraph.from_edges(
        [
            ("A", "B", 72, 1, 50),
            ("B", "C", 72, 2, 60),
            ("C", "D", 72, 3, 70),
        ]
    )


class TestMerge:
    def test_internalizes_mutual_flow(self, pipeline):
        merged = merge_processes(pipeline, "B", "C")
        assert "BC" in merged
        assert "B" not in merged and "C" not in merged
        # A->BC and BC->D remain; B->C vanished
        assert merged.flow("A", "BC").data_items == 72
        assert merged.flow("BC", "D").data_items == 72
        assert len(merged.flows) == 2

    def test_merged_name_override(self, pipeline):
        merged = merge_processes(pipeline, "B", "C", merged_name="Fused")
        assert "Fused" in merged

    def test_traffic_reduction(self, pipeline):
        merged = merge_processes(pipeline, "B", "C")
        assert merged.total_data_items() == pipeline.total_data_items() - 72

    def test_rejects_cycle_creating_merge(self):
        # A -> B -> C and A -> C: merging A and C would create a cycle via B
        graph = PSDFGraph.from_edges(
            [("A", "B", 36, 1, 10), ("B", "C", 36, 2, 10), ("A", "C", 36, 3, 10)]
        )
        with pytest.raises(PSDFError, match="cycle"):
            merge_processes(graph, "A", "C")

    def test_direct_edge_merge_allowed_with_parallel_edge(self):
        graph = PSDFGraph.from_edges(
            [("A", "B", 36, 1, 10), ("A", "B", 72, 2, 10), ("B", "C", 36, 3, 10)]
        )
        merged = merge_processes(graph, "A", "B")
        assert merged.flow("AB", "C").data_items == 36

    def test_aggregates_parallel_flows_after_repoint(self):
        # X feeds both halves with the same T: flows must be aggregated
        graph = PSDFGraph.from_edges(
            [
                ("X", "B", 36, 1, 10),
                ("X", "C", 72, 1, 10),
                ("B", "C", 36, 2, 10),
                ("C", "Y", 36, 3, 10),
            ]
        )
        merged = merge_processes(graph, "B", "C")
        assert merged.flow("X", "BC").data_items == 108

    def test_rejects_self_merge(self, pipeline):
        with pytest.raises(PSDFError):
            merge_processes(pipeline, "B", "B")

    def test_rejects_unknown_process(self, pipeline):
        with pytest.raises(PSDFError):
            merge_processes(pipeline, "B", "Z")


class TestSplit:
    @pytest.fixture
    def hub(self):
        return PSDFGraph.from_edges(
            [
                ("A", "H", 72, 1, 50),
                ("H", "X", 72, 2, 60),
                ("H", "Y", 144, 3, 60),
                ("X", "Z", 36, 4, 10),
                ("Y", "Z", 36, 4, 10),
            ]
        )

    def test_moves_selected_flows(self, hub):
        split = split_process(hub, "H", moved_targets=["Y"])
        assert "Ha" in split and "Hb" in split
        assert split.flow("Ha", "X").data_items == 72
        assert split.flow("Hb", "Y").data_items == 144
        # internal flow carries the moved traffic
        assert split.flow("Ha", "Hb").data_items == 144

    def test_inputs_stay_on_stage1(self, hub):
        split = split_process(hub, "H", moved_targets=["Y"])
        assert split.flow("A", "Ha").data_items == 72

    def test_custom_names_and_cost(self, hub):
        split = split_process(
            hub, "H", ["Y"],
            stage_names=("Front", "Back"),
            internal_cost=FlowCost.constant(5),
        )
        assert split.flow("Front", "Back").ticks_per_package(36) == 5

    def test_rejects_moving_everything(self, hub):
        with pytest.raises(PSDFError, match="every output"):
            split_process(hub, "H", ["X", "Y"])

    def test_rejects_nothing_moved(self, hub):
        with pytest.raises(PSDFError):
            split_process(hub, "H", [])

    def test_rejects_unknown_target(self, hub):
        with pytest.raises(PSDFError, match="no flows to"):
            split_process(hub, "H", ["Q"])

    def test_split_graph_is_valid(self, hub):
        split = split_process(hub, "H", ["Y"])
        split.topological_order()  # must not raise


class TestRebalance:
    def test_suggests_merge_across_congested_bu(self):
        # heavy flow B->C crosses the segment border
        graph = PSDFGraph.from_edges(
            [
                ("A", "B", 36, 1, 30),
                ("B", "C", 720, 2, 30),
                ("C", "D", 36, 3, 30),
            ]
        )
        placement = {"A": 1, "B": 1, "C": 2, "D": 2}
        suggestion = suggest_rebalance(
            graph, placement,
            segment_frequencies_mhz=[100, 100],
            ca_frequency_mhz=120,
            package_size=36,
        )
        assert suggestion is not None
        assert suggestion.congested_bu == "BU12"
        assert (suggestion.flow_source, suggestion.flow_target) == ("B", "C")
        assert suggestion.flow_items == 720
        assert "BC" in suggestion.merged_graph
        # removing 20 crossings must help
        assert suggestion.rebalanced_us < suggestion.baseline_us
        assert suggestion.improvement > 0

    def test_no_crossing_traffic_returns_none(self):
        graph = PSDFGraph.from_edges([("A", "B", 72, 1, 30), ("C", "D", 72, 1, 30)])
        placement = {"A": 1, "B": 1, "C": 2, "D": 2}
        assert (
            suggest_rebalance(
                graph, placement,
                segment_frequencies_mhz=[100, 100],
                ca_frequency_mhz=120,
                package_size=36,
            )
            is None
        )

    def test_skips_merge_that_would_empty_a_segment(self):
        graph = PSDFGraph.from_edges([("A", "B", 720, 1, 30)])
        placement = {"A": 1, "B": 2}
        # merging A and B would leave segment 2 empty -> no legal candidate
        assert (
            suggest_rebalance(
                graph, placement,
                segment_frequencies_mhz=[100, 100],
                ca_frequency_mhz=120,
                package_size=36,
            )
            is None
        )
