"""Campaign runner and export tests."""

import csv
import io
import json

import pytest

from repro.analysis.campaign import COLUMNS, Campaign
from repro.apps.mp3 import paper_platform
from repro.emulator.config import EmulationConfig
from repro.errors import SegBusError


@pytest.fixture(scope="module")
def campaign(mp3_graph):
    c = Campaign("demo")
    c.add("3seg_s36", mp3_graph, paper_platform(3))
    c.add("3seg_s18", mp3_graph, paper_platform(3, package_size=18))
    c.add(
        "3seg_ref",
        mp3_graph,
        paper_platform(3),
        config=EmulationConfig.reference(),
    )
    return c


class TestRun:
    def test_one_result_per_variant(self, campaign):
        results = campaign.run()
        assert [r.name for r in results] == ["3seg_s36", "3seg_s18", "3seg_ref"]

    def test_results_cached(self, campaign):
        assert campaign.run() == campaign.run()

    def test_known_relationships(self, campaign):
        by_name = {r.name: r for r in campaign.run()}
        assert by_name["3seg_s18"].execution_time_us > \
            by_name["3seg_s36"].execution_time_us
        assert by_name["3seg_ref"].execution_time_us > \
            by_name["3seg_s36"].execution_time_us
        assert by_name["3seg_s18"].inter_segment_packages == \
            2 * by_name["3seg_s36"].inter_segment_packages

    def test_best(self, campaign):
        assert campaign.best().name == "3seg_s36"
        assert campaign.best("total_events").name in campaign.variant_names

    def test_best_rejects_unknown_key(self, campaign):
        with pytest.raises(SegBusError):
            campaign.best("prettiness")

    def test_empty_campaign_rejected(self):
        with pytest.raises(SegBusError):
            Campaign("empty").run()

    def test_duplicate_variant_rejected(self, mp3_graph):
        c = Campaign("dup")
        c.add("x", mp3_graph, paper_platform(3))
        with pytest.raises(SegBusError):
            c.add("x", mp3_graph, paper_platform(3))

    def test_add_grid(self, mp3_graph):
        c = Campaign("grid")
        c.add_grid(
            mp3_graph,
            platform_factory=lambda s: paper_platform(3, package_size=s),
            package_sizes=[18, 36],
        )
        assert c.variant_names == ["s18", "s36"]


class TestExports:
    def test_csv(self, campaign, tmp_path):
        target = tmp_path / "out.csv"
        text = campaign.to_csv(target)
        assert target.read_text() == text
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 3
        assert set(rows[0]) == set(COLUMNS)
        assert float(rows[0]["execution_time_us"]) > 0

    def test_markdown(self, campaign):
        table = campaign.to_markdown()
        lines = table.splitlines()
        assert lines[0].startswith("| name |")
        assert len(lines) == 2 + 3  # header + rule + rows

    def test_json(self, campaign, tmp_path):
        target = tmp_path / "out.json"
        payload = json.loads(campaign.to_json(target))
        assert payload["campaign"] == "demo"
        assert len(payload["results"]) == 3
        assert json.loads(target.read_text()) == payload


class TestSweepPaths:
    def test_add_invalidates_cached_results(self, mp3_graph):
        c = Campaign("inval")
        c.add("a", mp3_graph, paper_platform(3))
        first = c.run()
        c.add("b", mp3_graph, paper_platform(2))
        second = c.run()
        assert [r.name for r in first] == ["a"]
        assert [r.name for r in second] == ["a", "b"]

    def test_add_grid_custom_label(self, mp3_graph):
        c = Campaign("labels")
        c.add_grid(
            mp3_graph,
            platform_factory=lambda s: paper_platform(3, package_size=s),
            package_sizes=[36],
            label="pkg",
        )
        assert c.variant_names == ["pkg36"]

    def test_fault_variant_rides_along(self, mp3_graph):
        from repro.faults.model import KIND_BU_DROP, FaultPlan, FaultRecord

        c = Campaign("faulty")
        c.add("clean", mp3_graph, paper_platform(3))
        c.add(
            "faulted",
            mp3_graph,
            paper_platform(3),
            fault_plan=FaultPlan(
                seed=3,
                records=(
                    FaultRecord(site="bu:1:2", kind=KIND_BU_DROP, rate=0.02),
                ),
            ),
        )
        by_name = {r.name: r for r in c.run()}
        assert by_name["faulted"].execution_time_us >= \
            by_name["clean"].execution_time_us

    def test_segment_sweep_prefers_parallelism(self, mp3_graph):
        c = Campaign("segments")
        for n in (1, 2, 3):
            c.add(f"{n}seg", mp3_graph, paper_platform(n))
        best = c.best()
        assert best.name in {"2seg", "3seg"}
        markdown = c.to_markdown()
        assert markdown.count("\n") == 1 + 3  # header+rule+3 rows

    def test_to_json_without_path(self, campaign):
        payload = json.loads(campaign.to_json())
        assert len(payload["results"]) == 3
