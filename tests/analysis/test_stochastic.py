"""Stochastic contention analyzer tests: queue math, bounds, accuracy."""

import pytest

from repro.analysis.analytic import (
    analytic_estimate,
    path_timing,
    platform_clocks,
    schedule_for,
)
from repro.analysis.stochastic import (
    CONTENTION_CEILING,
    RHO_CAP,
    UTILIZATION_KNEE,
    QueueModel,
    stochastic_estimate,
    suggest_placement_move,
)
from repro.emulator.config import EmulationConfig
from repro.emulator.fastkernel import make_simulation
from repro.emulator.kernel import PlatformSpec
from repro.model.topology import LinearTopology
from repro.psdf.flow import FlowCost, PacketFlow
from repro.psdf.graph import PSDFGraph
from repro.psdf.process import Process, ProcessKind
from repro.testing.generators import generate_models
from repro.testing.oracles import OracleTolerance


def spec_for(placement, segments=1, package_size=36):
    return PlatformSpec(
        package_size=package_size,
        segment_frequencies_mhz={i: 100.0 for i in range(1, segments + 1)},
        ca_frequency_mhz=100.0,
        placement=placement,
    )


def hot_mesh_model():
    """Six parallel cross-segment chains saturating both buses and the BU.

    The shape the SB5xx family exists for: every chain crosses the
    segment border twice, all at the same transfer orders, so segment,
    CA and BU loads all blow past the knee.
    """
    processes, flows = [], []
    for i in range(6):
        x, y, z = f"X{i}", f"Y{i}", f"Z{i}"
        processes += [
            Process(x, ProcessKind.INITIAL),
            Process(y, ProcessKind.PROCESS),
            Process(z, ProcessKind.FINAL),
        ]
        flows += [
            PacketFlow(source=x, target=y, data_items=3600, order=1,
                       cost=FlowCost.constant(1)),
            PacketFlow(source=y, target=z, data_items=3600, order=2,
                       cost=FlowCost.constant(1)),
        ]
    graph = PSDFGraph(processes, flows, name="HotMesh")
    placement = {}
    for i in range(6):
        placement[f"X{i}"] = 1
        placement[f"Z{i}"] = 1
        placement[f"Y{i}"] = 2
    spec = PlatformSpec(
        package_size=36,
        segment_frequencies_mhz={1: 90.0, 2: 95.0},
        ca_frequency_mhz=110.0,
        placement=placement,
    )
    return graph, spec


def misplaced_pipeline_model():
    """Independent pairs crowding segment 1 plus a chain whose middle
    stage sits on the wrong (hot) segment — one move fixes it."""
    processes, flows = [], []
    for i in range(5):
        x, y = f"X{i}", f"Y{i}"
        processes += [
            Process(x, ProcessKind.INITIAL),
            Process(y, ProcessKind.FINAL),
        ]
        flows.append(
            PacketFlow(source=x, target=y, data_items=3600, order=1 + i,
                       cost=FlowCost.constant(1))
        )
    processes += [
        Process("A0", ProcessKind.INITIAL),
        Process("B0", ProcessKind.PROCESS),
        Process("C0", ProcessKind.FINAL),
    ]
    flows += [
        PacketFlow(source="A0", target="B0", data_items=3600, order=6,
                   cost=FlowCost.constant(1)),
        PacketFlow(source="B0", target="C0", data_items=3600, order=7,
                   cost=FlowCost.constant(1)),
    ]
    graph = PSDFGraph(processes, flows, name="MisplacedPipeline")
    placement = {"A0": 2, "B0": 1, "C0": 2}
    for i in range(5):
        placement[f"X{i}"] = 1
        placement[f"Y{i}"] = 1
    spec = PlatformSpec(
        package_size=36,
        segment_frequencies_mhz={1: 90.0, 2: 95.0},
        ca_frequency_mhz=110.0,
        placement=placement,
    )
    return graph, spec


class TestQueueModel:
    def test_idle_resource_has_no_wait(self):
        q = QueueModel(name="S1", arrivals=0, busy_fs=0, window_fs=1000)
        assert q.utilization == 0.0
        assert q.mean_wait_fs == 0.0
        assert q.mean_queue_depth == 0.0
        assert q.occupancy_distribution() == (1.0,) + (0.0,) * 8

    def test_md1_wait_formula(self):
        # rho = 0.5, D = 100 -> Wq = 0.5 * 100 / (2 * 0.5) = 50
        q = QueueModel(name="S1", arrivals=5, busy_fs=500, window_fs=1000)
        assert q.utilization == pytest.approx(0.5)
        assert q.mean_service_fs == pytest.approx(100.0)
        assert q.mean_wait_fs == pytest.approx(50.0)
        # Little: Lq = lambda * Wq = (5/1000) * 50 = 0.25
        assert q.mean_queue_depth == pytest.approx(0.25)

    def test_overload_is_capped_not_infinite(self):
        q = QueueModel(name="S1", arrivals=100, busy_fs=5000, window_fs=1000)
        assert q.utilization == pytest.approx(5.0)  # uncapped, reported
        capped = RHO_CAP * q.mean_service_fs / (2.0 * (1.0 - RHO_CAP))
        assert q.mean_wait_fs == pytest.approx(capped)

    def test_occupancy_distribution_sums_to_one(self):
        q = QueueModel(name="S1", arrivals=8, busy_fs=700, window_fs=1000)
        dist = q.occupancy_distribution(max_occupancy=6)
        assert len(dist) == 7
        assert sum(dist) == pytest.approx(1.0)
        # geometric surrogate: strictly decreasing head
        assert dist[0] > dist[1] > dist[2]

    def test_saturation_probability_monotone_in_depth(self):
        q = QueueModel(name="S1", arrivals=8, busy_fs=700, window_fs=1000)
        probs = [q.saturation_probability(d) for d in range(5)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))
        assert q.saturation_probability(-1) == 1.0

    def test_occupancy_requires_positive_depth(self):
        q = QueueModel(name="S1", arrivals=1, busy_fs=1, window_fs=10)
        with pytest.raises(ValueError):
            q.occupancy_distribution(max_occupancy=0)


class TestEstimateStructure:
    def test_estimate_never_below_analytic(self, mp3_graph, platform_3seg):
        spec = PlatformSpec.from_platform(platform_3seg)
        estimate = stochastic_estimate(mp3_graph, spec)
        analytic = analytic_estimate(mp3_graph, spec)
        assert estimate.execution_time_fs >= analytic.execution_time_fs
        assert estimate.analytic_fs == analytic.execution_time_fs
        assert estimate.contention_ratio >= 1.0

    def test_resources_cover_the_platform(self, mp3_graph, platform_3seg):
        spec = PlatformSpec.from_platform(platform_3seg)
        estimate = stochastic_estimate(mp3_graph, spec)
        assert set(estimate.segments) == {1, 2, 3}
        assert estimate.ca.arrivals > 0  # MP3 has inter-segment flows
        assert estimate.border_units  # and at least one BU carries them
        for model in estimate.segments.values():
            assert model.window_fs == estimate.analytic_fs

    def test_critical_chain_is_recorded(self, mp3_graph, platform_3seg):
        spec = PlatformSpec.from_platform(platform_3seg)
        estimate = stochastic_estimate(mp3_graph, spec)
        assert estimate.critical_chain
        assert estimate.critical_chain[0] == "P0"

    def test_single_flow_has_no_contention(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        estimate = stochastic_estimate(graph, spec_for({"A": 1, "B": 1}))
        assert estimate.contention_fs == 0
        assert estimate.contention_ratio == 1.0

    def test_hottest_segment_none_when_idle(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        estimate = stochastic_estimate(graph, spec_for({"A": 1, "B": 1}))
        # segment 1 carries the one flow, so it is the hottest
        assert estimate.hottest_segment() == 1

    def test_hot_mesh_blows_every_gauge(self):
        graph, spec = hot_mesh_model()
        estimate = stochastic_estimate(graph, spec)
        assert estimate.segments[1].utilization > UTILIZATION_KNEE
        assert estimate.segments[2].utilization > UTILIZATION_KNEE
        assert estimate.ca.utilization > UTILIZATION_KNEE
        assert estimate.contention_ratio >= CONTENTION_CEILING
        bu = estimate.border_units[(1, 2)]
        assert bu.mean_queue_depth > 1.0


class TestAccuracy:
    """The SAN-1 claim, asserted directly on a generated corpus."""

    def test_corpus_error_band(self):
        band = OracleTolerance().stochastic_error_max
        errors = []
        for model in generate_models(40, base_seed=500):
            spec = PlatformSpec.from_platform(model.platform)
            config = EmulationConfig()
            estimate = stochastic_estimate(model.application, spec, config)
            analytic = analytic_estimate(model.application, spec, config)
            assert estimate.execution_time_fs >= analytic.execution_time_fs
            emulated = make_simulation(
                model.application, spec, config
            ).run().execution_time_fs()
            error = abs(estimate.execution_time_fs - emulated) / emulated
            assert error <= band, f"{model.label}: err {error:.3f}"
            errors.append(error)
        assert sum(errors) / len(errors) <= 0.05  # corpus MAE, see docs

    def test_mp3_estimate_close_to_emulation(self, mp3_graph, platform_3seg):
        spec = PlatformSpec.from_platform(platform_3seg)
        estimate = stochastic_estimate(mp3_graph, spec)
        emulated = make_simulation(mp3_graph, spec).run().execution_time_fs()
        assert abs(estimate.execution_time_fs - emulated) / emulated < 0.05


class TestPlacementMove:
    def test_misplaced_pipeline_move_found(self):
        graph, spec = misplaced_pipeline_model()
        move = suggest_placement_move(graph, spec)
        assert move is not None
        assert move.process == "B0"
        assert move.from_segment == 1
        assert move.to_segment == 2
        assert move.predicted_saving_fs > 0
        # the move must actually improve the estimate it was derived from
        base = stochastic_estimate(graph, spec)
        assert move.predicted_saving_us < base.execution_time_us

    def test_single_segment_has_no_move(self):
        graph = PSDFGraph.from_edges([("A", "B", 36, 1, 50)])
        assert suggest_placement_move(graph, spec_for({"A": 1, "B": 1})) is None

    def test_balanced_platform_needs_no_move(self, mp3_graph, platform_3seg):
        # the paper's placement is already good: any suggested move must
        # be a genuine predicted improvement, not noise
        spec = PlatformSpec.from_platform(platform_3seg)
        move = suggest_placement_move(mp3_graph, spec)
        if move is not None:
            assert move.predicted_saving_fs > 0


class TestSchedulingCache:
    def test_schedule_for_is_memoized_by_identity(self, mp3_graph):
        assert schedule_for(mp3_graph, 36) is schedule_for(mp3_graph, 36)
        assert schedule_for(mp3_graph, 36) is not schedule_for(mp3_graph, 18)

    def test_path_timing_matches_analytic_duration(self):
        spec = spec_for({"A": 1, "B": 3}, segments=3)
        clocks, ca_clock = platform_clocks(spec)
        topology = LinearTopology(3)
        config = EmulationConfig()
        timing = path_timing(1, 3, clocks, ca_clock, topology, 36, config)
        assert timing.path == (1, 2, 3)
        assert [seg for seg, _ in timing.legs] == [1, 2, 3]
        assert timing.duration_fs == (
            timing.ca_overhead_fs + sum(fs for _, fs in timing.legs)
        )

    def test_platform_clocks_share_domains(self):
        spec = spec_for({"A": 1}, segments=2)
        clocks_a, ca_a = platform_clocks(spec)
        clocks_b, ca_b = platform_clocks(spec)
        assert ca_a is ca_b
        assert clocks_a[1] is clocks_b[1]
