"""Visualization exporter tests (DOT, Gantt, CSV)."""

import csv
import io

import pytest

from repro.analysis.visualize import activity_to_csv, psdf_to_dot, timeline_to_gantt
from repro.emulator.activity import activity_series
from repro.emulator.timeline import ProcessTimeline


class TestDot:
    def test_contains_all_nodes_and_edges(self, mp3_graph):
        dot = psdf_to_dot(mp3_graph)
        for name in mp3_graph.process_names:
            assert f'"{name}"' in dot
        assert '"P0" -> "P1"' in dot
        assert dot.startswith('digraph "MP3Decoder"')
        assert dot.rstrip().endswith("}")

    def test_placement_creates_clusters(self, mp3_graph, platform_3seg):
        dot = psdf_to_dot(mp3_graph, placement=platform_3seg.process_placement())
        assert "cluster_segment1" in dot
        assert "cluster_segment3" in dot
        # crossing edges highlighted
        assert "color=\"red\"" in dot

    def test_package_labels(self, mp3_graph):
        dot = psdf_to_dot(mp3_graph, package_size=36)
        assert "16 pkg" in dot  # P0 -> P1: 576/36

    def test_item_labels_by_default(self, mp3_graph):
        assert "576 (T=1)" in psdf_to_dot(mp3_graph)

    def test_balanced_braces(self, mp3_graph, platform_3seg):
        dot = psdf_to_dot(mp3_graph, placement=platform_3seg.process_placement())
        assert dot.count("{") == dot.count("}")


class TestGantt:
    def test_ascii_rows(self, report_3seg):
        chart = timeline_to_gantt(report_3seg.timeline, width=40)
        lines = chart.splitlines()
        assert len(lines) == 15
        assert all("#" in line for line in lines)
        assert "P0" in chart and "us" in chart

    def test_later_processes_start_further_right(self, report_3seg):
        chart = timeline_to_gantt(report_3seg.timeline, width=60)
        by_name = {line.split()[0]: line for line in chart.splitlines()}
        p0_start = by_name["P0"].index("#")
        p7_start = by_name["P7"].index("#")
        assert p7_start > p0_start

    def test_mermaid_output(self, report_3seg):
        chart = timeline_to_gantt(report_3seg.timeline, mermaid=True)
        assert chart.startswith("gantt")
        assert "P14 :" in chart

    def test_empty_timeline(self):
        assert "empty" in timeline_to_gantt(ProcessTimeline(entries=()))


class TestActivityCsv:
    def test_csv_shape(self, sim_3seg):
        series = activity_series(sim_3seg, bins=20)
        text = activity_to_csv(series)
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == 1 + 20
        assert rows[0][0] == "bin_start_us"
        assert set(rows[0][1:]) == set(series.elements)

    def test_values_parse_and_bound(self, sim_3seg):
        series = activity_series(sim_3seg, bins=10)
        rows = list(csv.DictReader(io.StringIO(activity_to_csv(series))))
        for row in rows:
            for element in series.elements:
                value = float(row[element])
                assert 0.0 <= value <= 1.0
