"""Load generator: deterministic plans, in-process runs, reporting."""

from __future__ import annotations

import pytest

from repro.errors import SegBusError
from repro.serve.loadgen import (
    LoadPlan,
    _percentile_ms,
    build_plan,
    run_loadgen,
    serving_corpus,
)

WORKLOAD_CORPUS = (
    {"kind": "emulate", "workload": "bursty"},
    {"kind": "emulate", "workload": "long_tail"},
)


class TestCorpus:
    def test_generated_plus_workloads(self):
        corpus = serving_corpus(
            generated=2, base_seed=77, workloads=("bursty",)
        )
        assert len(corpus) == 3
        inline = [p for p in corpus if "psdf_xml" in p]
        assert len(inline) == 2
        assert all(p["kind"] == "emulate" for p in corpus)
        assert corpus[-1]["workload"] == "bursty"

    def test_kind_applies_to_every_payload(self):
        corpus = serving_corpus(
            generated=0, workloads=("bursty",), kind="estimate"
        )
        assert corpus[0]["kind"] == "estimate"

    def test_empty_corpus_raises(self):
        with pytest.raises(SegBusError, match="empty loadgen corpus"):
            serving_corpus(generated=0, workloads=())

    def test_generated_corpus_is_seed_deterministic(self):
        a = serving_corpus(generated=2, base_seed=77)
        b = serving_corpus(generated=2, base_seed=77)
        assert a == b


class TestPlan:
    def test_same_seed_same_schedule(self):
        a = build_plan(WORKLOAD_CORPUS, requests=40, seed=5)
        b = build_plan(WORKLOAD_CORPUS, requests=40, seed=5)
        assert a.payload_ids == b.payload_ids
        assert a.arrival_s == b.arrival_s

    def test_different_seed_different_schedule(self):
        a = build_plan(WORKLOAD_CORPUS, requests=40, seed=5)
        b = build_plan(WORKLOAD_CORPUS, requests=40, seed=6)
        assert a.payload_ids != b.payload_ids

    def test_repeat_ratio_zero_cycles_the_corpus(self):
        plan = build_plan(WORKLOAD_CORPUS, requests=6, repeat_ratio=0.0)
        assert plan.payload_ids == (0, 1, 0, 1, 0, 1)
        assert plan.unique_payloads == 2

    def test_repeat_ratio_one_reissues_the_first(self):
        plan = build_plan(WORKLOAD_CORPUS, requests=5, repeat_ratio=1.0)
        assert plan.payload_ids == (0, 0, 0, 0, 0)
        assert plan.unique_payloads == 1

    def test_open_loop_arrivals_are_monotonic(self):
        plan = build_plan(WORKLOAD_CORPUS, requests=10, rate_rps=100.0)
        assert all(
            a < b for a, b in zip(plan.arrival_s, plan.arrival_s[1:])
        )

    def test_closed_loop_arrivals_are_zero(self):
        plan = build_plan(WORKLOAD_CORPUS, requests=4)
        assert plan.arrival_s == (0.0, 0.0, 0.0, 0.0)

    def test_engine_is_stamped_on_every_payload(self):
        plan = build_plan(WORKLOAD_CORPUS, requests=4, engine="fast")
        assert all(p["engine"] == "fast" for p in plan.payloads)
        # the source corpus dicts stay untouched
        assert "engine" not in WORKLOAD_CORPUS[0]

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(requests=0), "requests must be"),
            (dict(repeat_ratio=1.5), "repeat_ratio"),
        ],
    )
    def test_bad_parameters_raise(self, kwargs, match):
        with pytest.raises(SegBusError, match=match):
            build_plan(WORKLOAD_CORPUS, **kwargs)

    def test_empty_corpus_raises(self):
        with pytest.raises(SegBusError, match="corpus must not be empty"):
            build_plan([], requests=4)


class TestRun:
    def test_in_process_run_accounts_exactly(self, service_factory):
        service = service_factory()
        plan = build_plan(
            WORKLOAD_CORPUS, requests=12, repeat_ratio=0.5, seed=3
        )
        report = run_loadgen(plan, service=service, concurrency=2)
        assert report.requests == 12
        assert report.errors == 0
        assert report.ok == 12
        # coalescing makes the computed/reused split deterministic
        assert report.computed == plan.unique_payloads
        assert report.reused == 12 - plan.unique_payloads
        assert report.hit_rate == report.reused / 12
        assert report.exec_ps_sum > 0
        assert report.digest_checksum > 0
        assert set(report.latency_ms) == {"p50", "p90", "p99"}
        assert report.throughput_rps > 0

    def test_verify_passes_against_the_service(self, service_factory):
        service = service_factory()
        plan = build_plan(WORKLOAD_CORPUS, requests=4, repeat_ratio=0.0)
        report = run_loadgen(
            plan, service=service, concurrency=1, verify=True
        )
        assert report.verified == plan.unique_payloads
        assert report.divergences == []

    def test_invalid_payloads_count_as_errors(self, service_factory):
        service = service_factory()
        plan = LoadPlan(
            payloads=({"kind": "warp"},),
            payload_ids=(0,),
            arrival_s=(0.0,),
            seed=1,
            repeat_ratio=0.0,
        )
        report = run_loadgen(plan, service=service, concurrency=1)
        assert report.errors == 1
        assert report.by_status == {"400": 1}

    def test_needs_exactly_one_target(self, service_factory):
        plan = build_plan(WORKLOAD_CORPUS, requests=2)
        with pytest.raises(SegBusError, match="exactly one"):
            run_loadgen(plan)
        with pytest.raises(SegBusError, match="exactly one"):
            run_loadgen(
                plan, url="http://localhost:1", service=service_factory()
            )

    def test_bad_concurrency_raises(self, service_factory):
        plan = build_plan(WORKLOAD_CORPUS, requests=2)
        with pytest.raises(SegBusError, match="concurrency"):
            run_loadgen(plan, service=service_factory(), concurrency=0)


class TestPercentiles:
    def test_empty_is_zero(self):
        assert _percentile_ms([], 50) == 0.0

    def test_nearest_rank(self):
        latencies = [0.001 * v for v in range(1, 11)]  # 1..10 ms
        assert _percentile_ms(latencies, 50) == pytest.approx(5.0)
        assert _percentile_ms(latencies, 90) == pytest.approx(9.0)
        assert _percentile_ms(latencies, 99) == pytest.approx(10.0)
