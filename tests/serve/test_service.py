"""Service core: dispositions, coalescing, batching, stats, lifecycle."""

from __future__ import annotations

import json

from repro.serve.jobs import execute_job, parse_job, response_bytes


def _emulate_payload(schemes, **extra):
    psdf_xml, psm_xml = schemes
    return {"kind": "emulate", "psdf_xml": psdf_xml, "psm_xml": psm_xml, **extra}


class TestDispositions:
    def test_miss_then_hit_serves_identical_bytes(
        self, service_factory, inline_schemes
    ):
        service = service_factory()
        payload = _emulate_payload(inline_schemes)
        first = service.submit(payload)
        second = service.submit(payload)
        assert (first.status, first.cache) == (200, "miss")
        assert (second.status, second.cache) == (200, "hit")
        assert first.body == second.body
        assert first.body == response_bytes(execute_job(parse_job(payload)))

    def test_rejected_schema_is_a_400(self, service_factory):
        service = service_factory()
        response = service.submit({"kind": "warp"})
        assert (response.status, response.cache) == (400, "rejected")
        error = json.loads(response.body)["error"]
        assert error["kind"] == "invalid"

    def test_rejected_deep_validation_names_the_scheme(
        self, service_factory, inline_schemes
    ):
        service = service_factory()
        _, psm_xml = inline_schemes
        response = service.submit(
            {"kind": "emulate", "psdf_xml": "<broken/>", "psm_xml": psm_xml}
        )
        assert (response.status, response.cache) == (400, "rejected")
        assert "psdf_xml" in json.loads(response.body)["error"]["message"]

    def test_timeout_is_a_504(self, service_factory, inline_schemes):
        # no dispatcher running: the wait budget expires
        service = service_factory(auto_start=False)
        response = service.submit(
            _emulate_payload(inline_schemes), timeout_s=0.05
        )
        assert (response.status, response.cache) == (504, "timeout")
        service.start()  # let teardown drain the queued ticket

    def test_counters_track_dispositions(
        self, service_factory, inline_schemes
    ):
        service = service_factory()
        payload = _emulate_payload(inline_schemes)
        service.submit(payload)
        service.submit(payload)
        service.submit({"kind": "warp"})
        stats = service.stats()
        assert stats["requests"] == 3
        assert stats["by_disposition"]["miss"] == 1
        assert stats["by_disposition"]["hit"] == 1
        assert stats["by_disposition"]["rejected"] == 1
        assert stats["cache"]["entries"] == 1
        assert stats["latency_ms"]["p50"] >= 0.0


class TestCoalescing:
    def test_concurrent_same_key_computes_once(
        self, service_factory, inline_schemes
    ):
        service = service_factory(auto_start=False)
        payload = _emulate_payload(inline_schemes)
        owner = service.submit_async(payload)
        follower = service.submit_async(payload)
        assert owner.role == "miss"
        assert follower.role == "coalesced"
        service.start()
        assert owner.event.wait(30)
        assert follower.event.wait(30)
        assert owner.body == follower.body
        # exactly one computation: one miss recorded, nothing queued
        assert service.cache.stats().entries == 1


class TestBatching:
    def test_batch_engine_jobs_coalesce_into_one_group(
        self, service_factory, inline_schemes, inline_schemes_1seg
    ):
        service = service_factory(auto_start=False, batch_window_s=0.01)
        payloads = [
            _emulate_payload(inline_schemes, engine="batch"),
            _emulate_payload(inline_schemes_1seg, engine="batch"),
        ]
        tickets = [service.submit_async(p) for p in payloads]
        service.start()
        for ticket in tickets:
            assert ticket.event.wait(60)
        stats = service.stats()
        assert stats["vectorized_groups"] >= 1
        # coalesced vectorized responses stay byte-identical to the
        # direct per-job path
        for payload, ticket in zip(payloads, tickets):
            assert ticket.body == response_bytes(
                execute_job(parse_job(payload))
            )

    def test_mixed_batch_keeps_per_job_path_for_the_rest(
        self, service_factory, inline_schemes, inline_schemes_1seg
    ):
        service = service_factory(auto_start=False, batch_window_s=0.01)
        vector = _emulate_payload(inline_schemes, engine="batch")
        plain = _emulate_payload(inline_schemes_1seg, engine="fast")
        tickets = [service.submit_async(vector), service.submit_async(plain)]
        service.start()
        for ticket in tickets:
            assert ticket.event.wait(60)
        assert all(t.body is not None for t in tickets)
        assert service.stats()["executor"].get("attempts", 0) >= 1


class TestLifecycle:
    def test_stop_fails_queued_tickets_with_503(
        self, service_factory, inline_schemes
    ):
        service = service_factory(auto_start=False)
        ticket = service.submit_async(_emulate_payload(inline_schemes))
        service.stop()
        assert ticket.event.wait(5)
        assert ticket.failure_status == 503
        assert json.loads(ticket.failure_body)["error"]["kind"] == "shutdown"

    def test_reset_clears_counters_and_cache(
        self, service_factory, inline_schemes
    ):
        service = service_factory()
        payload = _emulate_payload(inline_schemes)
        service.submit(payload)
        service.submit(payload)
        service.reset()
        stats = service.stats()
        assert stats["requests"] == 0
        assert stats["cache"]["entries"] == 0
        # the next submission recomputes from scratch
        assert service.submit(payload).cache == "miss"

    def test_start_is_idempotent(self, service_factory, inline_schemes):
        service = service_factory()
        service.start()
        response = service.submit(_emulate_payload(inline_schemes))
        assert response.status == 200

    def test_stats_echo_the_config(self, service_factory):
        service = service_factory(queue_depth=7, batch_max=5)
        config = service.stats()["config"]
        assert config["queue_depth"] == 7
        assert config["batch_max"] == 5
