"""Backpressure and chaos: deterministic 429s, crash recovery, ledgers.

The service's executor runs with ``serial_threshold=1`` whenever
``workers >= 2``, so even a lone queued job takes the supervised
parallel path — which is exactly where the chaos hazards (worker kills,
stalls, poisoned jobs) and per-job timeouts live.
"""

from __future__ import annotations

import http.client
import json
import threading

from repro.serve.jobs import cache_key, execute_job, parse_job, response_bytes
from repro.serve.server import create_server
from repro.testing.chaos import ChaosPlan


def _emulate_payload(schemes, **extra):
    psdf_xml, psm_xml = schemes
    return {"kind": "emulate", "psdf_xml": psdf_xml, "psm_xml": psm_xml, **extra}


def _label(payload) -> str:
    return parse_job(payload).label


class TestBackpressure:
    def test_full_queue_sheds_with_deterministic_429(
        self, service_factory, inline_schemes, inline_schemes_1seg
    ):
        service = service_factory(auto_start=False, queue_depth=1)
        queued = service.submit_async(_emulate_payload(inline_schemes))
        assert queued.role == "miss"
        shed = service.submit_async(_emulate_payload(inline_schemes_1seg))
        assert shed.role == "shed"
        assert shed.event.is_set()  # resolved synchronously, never queued
        assert shed.failure_status == 429
        assert shed.retry_after_s == service.config.retry_after_s
        error = json.loads(shed.failure_body)["error"]
        assert error["kind"] == "busy"
        assert error["retry_after_s"] == service.config.retry_after_s
        # shedding is deterministic: the same overload sheds again
        again = service.submit_async(_emulate_payload(inline_schemes_1seg))
        assert again.role == "shed" and again.failure_status == 429
        service.start()  # drain the queued owner at teardown

    def test_same_key_coalesces_instead_of_shedding(
        self, service_factory, inline_schemes
    ):
        # a full queue must not shed a request it can coalesce
        service = service_factory(auto_start=False, queue_depth=1)
        payload = _emulate_payload(inline_schemes)
        service.submit_async(payload)
        follower = service.submit_async(payload)
        assert follower.role == "coalesced"
        service.start()
        assert follower.event.wait(30)

    def test_http_shed_carries_retry_after_header(
        self, service_factory, inline_schemes, inline_schemes_1seg
    ):
        service = service_factory(auto_start=False, queue_depth=1)
        service.submit_async(_emulate_payload(inline_schemes))
        server = create_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=30)
            try:
                conn.request(
                    "POST",
                    "/v1/jobs",
                    body=json.dumps(_emulate_payload(inline_schemes_1seg)),
                )
                response = conn.getresponse()
                data = response.read()
                assert response.status == 429
                assert int(response.getheader("Retry-After")) >= 1
                assert json.loads(data)["error"]["kind"] == "busy"
            finally:
                conn.close()
        finally:
            server.shutdown()
            server.server_close()
            service.start()  # teardown drains the queued owner


class TestChaos:
    def test_killed_worker_recovers_and_serves_the_result(
        self, service_factory, inline_schemes
    ):
        payload = _emulate_payload(inline_schemes)
        chaos = ChaosPlan(kill_on=(f"{_label(payload)}:1",))
        service = service_factory(workers=2, chaos=chaos)
        response = service.submit(payload)
        assert (response.status, response.cache) == (200, "miss")
        # the crash is invisible in the body: byte-identical to direct
        assert response.body == response_bytes(execute_job(parse_job(payload)))
        executor = service.stats()["executor"]
        assert executor["crashes"] >= 1
        assert executor["retries"] >= 1

    def test_poisoned_job_returns_structured_500_with_ledger(
        self, service_factory, inline_schemes, inline_schemes_1seg
    ):
        payload = _emulate_payload(inline_schemes)
        chaos = ChaosPlan(poison_labels=(_label(payload),))
        service = service_factory(workers=2, retries=2, chaos=chaos)
        response = service.submit(payload)
        assert (response.status, response.cache) == (500, "failed")
        error = json.loads(response.body)["error"]
        assert error["kind"] == "job-failed"
        ledger = error["failures"]
        assert len(ledger) == 1
        assert ledger[0]["label"] == _label(payload)
        assert ledger[0]["attempts"] == 2  # retries exhausted
        assert ledger[0]["error"] == "ChaosPoisonError"
        # failures are never cached ...
        assert service.cache.peek(cache_key(parse_job(payload))) is None
        assert service.stats()["cache"]["entries"] == 0
        # ... and the queue drains: the next request is served normally
        healthy = service.submit(_emulate_payload(inline_schemes_1seg))
        assert (healthy.status, healthy.cache) == (200, "miss")

    def test_stalled_worker_times_out_and_the_retry_succeeds(
        self, service_factory, inline_schemes
    ):
        payload = _emulate_payload(inline_schemes)
        chaos = ChaosPlan(stall_on=(f"{_label(payload)}:1",), stall_s=60.0)
        service = service_factory(workers=2, timeout_s=1.0, chaos=chaos)
        response = service.submit(payload)
        assert (response.status, response.cache) == (200, "miss")
        assert response.body == response_bytes(execute_job(parse_job(payload)))
        assert service.stats()["executor"]["timeouts"] >= 1

    def test_coalesced_waiters_share_the_failure(
        self, service_factory, inline_schemes
    ):
        payload = _emulate_payload(inline_schemes)
        chaos = ChaosPlan(poison_labels=(_label(payload),))
        service = service_factory(
            workers=2, retries=1, chaos=chaos, auto_start=False
        )
        owner = service.submit_async(payload)
        follower = service.submit_async(payload)
        assert follower.role == "coalesced"
        service.start()
        assert owner.event.wait(60)
        assert follower.event.wait(60)
        assert owner.failure_status == follower.failure_status == 500
        assert owner.failure_body == follower.failure_body
