"""Result-cache correctness: LRU caps, counters, version-keyed invalidation."""

from __future__ import annotations

import pytest

from repro.serve.cache import CacheStats, ResultCache
from repro.serve.jobs import cache_key, parse_job


class TestLRU:
    def test_get_returns_exact_bytes(self):
        cache = ResultCache()
        cache.put("k", b"payload-bytes")
        assert cache.get("k") == b"payload-bytes"

    def test_entry_cap_evicts_least_recent(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.get("a")  # refresh a: b becomes the LRU entry
        cache.put("c", b"3")
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats().evictions == 1

    def test_byte_cap_evicts_until_it_holds(self):
        cache = ResultCache(max_bytes=10)
        cache.put("a", b"xxxx")  # 4
        cache.put("b", b"yyyy")  # 8
        cache.put("c", b"zzzz")  # would be 12: a evicted
        stats = cache.stats()
        assert stats.bytes <= 10
        assert "a" not in cache
        assert cache.get("b") == b"yyyy"
        assert cache.get("c") == b"zzzz"

    def test_eviction_is_never_stale(self):
        # an evicted key must read as a clean miss, and a re-put must
        # serve the *new* bytes — never a resurrected old value
        cache = ResultCache(max_entries=1)
        cache.put("a", b"old")
        cache.put("b", b"other")  # evicts a
        assert cache.get("a") is None
        cache.put("a", b"new")
        assert cache.get("a") == b"new"

    def test_replacing_a_key_serves_new_bytes_immediately(self):
        cache = ResultCache()
        cache.put("k", b"v1")
        cache.put("k", b"v2")
        assert cache.get("k") == b"v2"
        assert cache.stats().entries == 1
        assert cache.stats().bytes == 2

    def test_oversized_value_is_refused_not_stored(self):
        cache = ResultCache(max_bytes=4)
        cache.put("small", b"ok")
        assert not cache.put("big", b"way-too-large")
        assert "big" not in cache
        assert cache.get("small") == b"ok"  # the cache was not nuked
        assert cache.stats().oversized == 1

    def test_invalid_caps_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)


class TestCounters:
    def test_hit_miss_accounting(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", b"v")
        assert cache.get("k") == b"v"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_peek_and_contains_have_no_side_effects(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        assert cache.peek("a") == b"1"
        assert "a" in cache
        assert cache.peek("nope") is None
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0
        # peek must not refresh recency either: a is still the LRU entry
        cache.put("c", b"3")
        assert "a" not in cache

    def test_invalidate_and_clear(self):
        cache = ResultCache()
        cache.put("k", b"v")
        assert cache.invalidate("k")
        assert not cache.invalidate("k")
        cache.put("k", b"v")
        cache.get("k")
        cache.clear()
        stats = cache.stats()
        assert stats.entries == 0 and stats.bytes == 0
        assert stats.hits == 0 and stats.misses == 0

    def test_stats_to_dict_roundtrip(self):
        stats = CacheStats(
            hits=3, misses=1, evictions=0, oversized=0,
            entries=2, bytes=10, max_entries=8, max_bytes=100,
        )
        data = stats.to_dict()
        assert data["hit_rate"] == 0.75
        assert data["entries"] == 2


class TestVersionKeys:
    """SB-fix regression: keys include the rule-registry hash and the
    estimator version, so upgrading either machinery invalidates the
    affected cached responses instead of replaying stale findings."""

    def _bump_registry(self, monkeypatch):
        # reword one rule's description: registry_hash() must change
        import dataclasses

        from repro.lint import engine as lint_engine

        real = lint_engine.default_registry

        def bumped():
            rebuilt = lint_engine.RuleRegistry()
            for index, rule in enumerate(real()):
                if index == 0:
                    rule = dataclasses.replace(
                        rule, description=rule.description + " (v2)"
                    )
                rebuilt.register(rule)
            return rebuilt

        monkeypatch.setattr(lint_engine, "default_registry", bumped)

    def test_lint_keys_change_when_the_registry_bumps(self, monkeypatch):
        job = parse_job({"kind": "lint", "workload": "bursty"})
        before = cache_key(job)
        self._bump_registry(monkeypatch)
        assert cache_key(job) != before

    def test_strict_emulate_keys_change_too(self, monkeypatch):
        job = parse_job(
            {"kind": "emulate", "workload": "bursty", "strict": True}
        )
        before = cache_key(job)
        self._bump_registry(monkeypatch)
        assert cache_key(job) != before

    def test_plain_emulate_keys_do_not_depend_on_the_registry(
        self, monkeypatch
    ):
        # a non-strict emulation never consults the linter: bumping the
        # catalogue must NOT throw its cached responses away
        job = parse_job({"kind": "emulate", "workload": "bursty"})
        before = cache_key(job)
        self._bump_registry(monkeypatch)
        assert cache_key(job) == before

    def test_estimate_keys_change_with_the_estimator_version(
        self, monkeypatch
    ):
        from repro.serve import jobs as serve_jobs

        job = parse_job({"kind": "estimate", "workload": "bursty"})
        before = cache_key(job)
        monkeypatch.setattr(serve_jobs, "ESTIMATOR_VERSION", 99)
        assert cache_key(job) != before
        # but emulate jobs do not carry the estimator version
        emulate = parse_job({"kind": "emulate", "workload": "bursty"})
        before_emulate_bump = cache_key(emulate)
        monkeypatch.undo()
        assert cache_key(emulate) == before_emulate_bump

    def test_bumped_registry_means_cache_miss_not_stale_hit(
        self, monkeypatch
    ):
        # end to end through a ResultCache: the old entry becomes
        # unreachable, which reads as a miss — never a stale replay
        cache = ResultCache()
        job = parse_job({"kind": "lint", "workload": "bursty"})
        cache.put(cache_key(job), b"stale-findings")
        self._bump_registry(monkeypatch)
        assert cache.get(cache_key(job)) is None
