"""HTTP layer: endpoints, headers, error statuses, client batches."""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.serve.server import MAX_BODY_BYTES, create_server


@pytest.fixture
def http_server(service_factory):
    service = service_factory(batch_window_s=0.0)
    server = create_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def _request(server, method, path, body=None, headers=None):
    host, port = server.server_address[0], server.server_address[1]
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        data = response.read()
        return response.status, dict(response.getheaders()), data
    finally:
        conn.close()


def _emulate_payload(schemes):
    psdf_xml, psm_xml = schemes
    return {"kind": "emulate", "psdf_xml": psdf_xml, "psm_xml": psm_xml}


class TestEndpoints:
    def test_health(self, http_server):
        status, _, data = _request(http_server, "GET", "/v1/health")
        assert status == 200
        body = json.loads(data)
        assert body["ok"] is True
        assert body["service"] == "segbus-serve"

    def test_stats(self, http_server):
        status, _, data = _request(http_server, "GET", "/v1/stats")
        assert status == 200
        body = json.loads(data)
        assert "cache" in body and "by_disposition" in body

    def test_unknown_paths_404(self, http_server):
        for method, path in (("GET", "/nope"), ("POST", "/v1/nope")):
            status, _, data = _request(
                http_server, method, path, body=b"{}"
            )
            assert status == 404
            assert json.loads(data)["error"]["kind"] == "not-found"

    def test_url_property_is_connectable(self, http_server):
        assert http_server.url.startswith("http://127.0.0.1:")


class TestJobRequests:
    def test_miss_then_hit_with_cache_headers(
        self, http_server, inline_schemes
    ):
        body = json.dumps(_emulate_payload(inline_schemes))
        status1, headers1, data1 = _request(
            http_server, "POST", "/v1/jobs", body=body
        )
        status2, headers2, data2 = _request(
            http_server, "POST", "/v1/jobs", body=body
        )
        assert status1 == status2 == 200
        assert headers1["X-Segbus-Cache"] == "miss"
        assert headers2["X-Segbus-Cache"] == "hit"
        assert data1 == data2  # byte-identical replay
        assert float(headers1["X-Segbus-Elapsed-Ms"]) >= 0.0

    def test_bad_json_is_400(self, http_server):
        status, _, data = _request(
            http_server, "POST", "/v1/jobs", body=b"{nope"
        )
        assert status == 400
        assert "bad JSON" in json.loads(data)["error"]["message"]

    def test_invalid_job_is_400(self, http_server):
        status, headers, data = _request(
            http_server, "POST", "/v1/jobs", body=json.dumps({"kind": "x"})
        )
        assert status == 400
        assert headers["X-Segbus-Cache"] == "rejected"

    def test_oversized_body_is_413(self, http_server):
        # advertise an over-cap Content-Length; the server must refuse
        # before attempting to read the body
        host, port = http_server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=60)
        try:
            conn.putrequest("POST", "/v1/jobs")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
            assert json.loads(response.read())["error"]["kind"] == "too-large"
        finally:
            conn.close()

    def test_client_batch_answers_per_job(self, http_server, inline_schemes):
        payload = _emulate_payload(inline_schemes)
        body = json.dumps({"jobs": [payload, payload, {"kind": "x"}]})
        status, _, data = _request(http_server, "POST", "/v1/jobs", body=body)
        assert status == 200
        responses = json.loads(data)["responses"]
        assert len(responses) == 3
        assert responses[0]["status"] == 200
        assert responses[1]["status"] == 200
        # same key admitted together: the second one coalesces (or hits
        # if the first already fulfilled) — never a second computation
        assert responses[1]["cache"] in ("coalesced", "hit")
        assert responses[0]["body"] == responses[1]["body"]
        assert responses[2]["status"] == 400

    def test_jobs_must_be_an_array(self, http_server):
        status, _, data = _request(
            http_server, "POST", "/v1/jobs", body=json.dumps({"jobs": "x"})
        )
        assert status == 400
        assert "array" in json.loads(data)["error"]["message"]
