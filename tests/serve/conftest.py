"""Shared serving fixtures: inline schemes and a cheap service factory."""

from __future__ import annotations

import pytest

from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.serve.service import SegbusService, ServiceConfig
from repro.xmlio.psdf_writer import psdf_to_xml
from repro.xmlio.psm_writer import psm_to_xml


@pytest.fixture(scope="session")
def inline_schemes():
    """(psdf_xml, psm_xml) of the two-segment paper case study."""
    platform = paper_platform(segment_count=2)
    return (
        psdf_to_xml(mp3_decoder_psdf(), platform.package_size),
        psm_to_xml(platform),
    )


@pytest.fixture(scope="session")
def inline_schemes_1seg():
    """A second distinct model so tests can issue unrelated payloads."""
    platform = paper_platform(segment_count=1)
    return (
        psdf_to_xml(mp3_decoder_psdf(), platform.package_size),
        psm_to_xml(platform),
    )


@pytest.fixture
def service_factory():
    """Build services with test-sized knobs; stop them all at teardown."""
    built = []

    def make(**overrides) -> SegbusService:
        kwargs = dict(workers=1, batch_window_s=0.0, queue_depth=64)
        auto_start = overrides.pop("auto_start", True)
        chaos = overrides.pop("chaos", None)
        kwargs.update(overrides)
        service = SegbusService(
            ServiceConfig(**kwargs), chaos=chaos, auto_start=auto_start
        )
        built.append(service)
        return service

    yield make
    for service in built:
        service.stop()
