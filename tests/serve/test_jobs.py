"""Job schema, deep validation, cache-key sensitivity and execution."""

from __future__ import annotations

import json

import pytest

from repro.emulator.fastkernel import resolve_engine
from repro.errors import JobValidationError
from repro.serve.jobs import (
    JOB_KINDS,
    MAX_SELFTEST_COUNT,
    RESPONSE_SCHEMA_VERSION,
    cache_key,
    execute_job,
    parse_job,
    response_bytes,
    validate_job,
)


class TestParseJob:
    def test_minimal_workload_job(self):
        job = parse_job({"kind": "emulate", "workload": "bursty"})
        assert job.kind == "emulate"
        assert job.workload == "bursty"
        assert job.engine == resolve_engine(None)

    def test_engine_spellings_cannot_fragment_the_cache(self):
        # the resolved default and its explicit spelling share one key
        implicit = parse_job({"kind": "emulate", "workload": "bursty"})
        explicit = parse_job(
            {
                "kind": "emulate",
                "workload": "bursty",
                "engine": resolve_engine(None),
            }
        )
        assert cache_key(implicit) == cache_key(explicit)

    @pytest.mark.parametrize(
        "payload, detail",
        [
            ("not-a-dict", "JSON object"),
            ({"kind": "emulate", "workload": "bursty", "x": 1}, "unknown"),
            ({"kind": "simulate"}, "kind must be one of"),
            ({}, "kind must be one of"),
            (
                {"kind": "emulate", "workload": "bursty", "engine": "warp"},
                "warp",
            ),
            ({"kind": "emulate", "workload": "nope"}, "unknown workload"),
            ({"kind": "emulate"}, "both psdf_xml and psm_xml"),
            ({"kind": "estimate"}, "both psdf_xml and psm_xml"),
            ({"kind": "lint"}, "at least one inline scheme"),
            ({"kind": "emulate", "workload": ""}, "non-empty string"),
            (
                {"kind": "emulate", "workload": "bursty", "strict": "yes"},
                "strict must be a boolean",
            ),
            (
                {"kind": "emulate", "workload": "bursty", "count": 3},
                "count applies to selftest",
            ),
            ({"kind": "selftest"}, "count must be in"),
            ({"kind": "selftest", "count": 0}, "count must be in"),
            (
                {"kind": "selftest", "count": MAX_SELFTEST_COUNT + 1},
                "count must be in",
            ),
            (
                {"kind": "selftest", "count": 1, "workload": "bursty"},
                "not a model",
            ),
            (
                {"kind": "selftest", "count": 1, "seed": "x"},
                "seed must be an integer",
            ),
            (
                {
                    "kind": "selftest",
                    "count": 1,
                    "fault_plan_xml": "<plan/>",
                },
                "fault_plan_xml applies to emulate",
            ),
        ],
    )
    def test_schema_rejections(self, payload, detail):
        with pytest.raises(JobValidationError, match=detail):
            parse_job(payload)

    def test_workload_and_inline_are_mutually_exclusive(self, inline_schemes):
        psdf_xml, psm_xml = inline_schemes
        with pytest.raises(JobValidationError, match="mutually exclusive"):
            parse_job(
                {
                    "kind": "emulate",
                    "workload": "bursty",
                    "psdf_xml": psdf_xml,
                    "psm_xml": psm_xml,
                }
            )

    def test_default_engine_parameter(self):
        job = parse_job(
            {"kind": "emulate", "workload": "bursty"}, default_engine="fast"
        )
        assert job.engine == "fast"
        # an explicit engine on the payload wins over the server default
        job = parse_job(
            {"kind": "emulate", "workload": "bursty", "engine": "batch"},
            default_engine="fast",
        )
        assert job.engine == "batch"


class TestValidateJob:
    def test_inline_schemes_validate_clean(self, inline_schemes):
        psdf_xml, psm_xml = inline_schemes
        validate_job(
            parse_job(
                {"kind": "emulate", "psdf_xml": psdf_xml, "psm_xml": psm_xml}
            )
        )

    def test_broken_psdf_names_the_scheme(self, inline_schemes):
        _, psm_xml = inline_schemes
        job = parse_job(
            {"kind": "emulate", "psdf_xml": "<nope/>", "psm_xml": psm_xml}
        )
        with pytest.raises(JobValidationError, match="psdf_xml"):
            validate_job(job)

    def test_broken_psm_names_the_scheme(self, inline_schemes):
        psdf_xml, _ = inline_schemes
        job = parse_job(
            {"kind": "emulate", "psdf_xml": psdf_xml, "psm_xml": "<nope/>"}
        )
        with pytest.raises(JobValidationError, match="psm_xml"):
            validate_job(job)

    def test_broken_fault_plan_names_the_scheme(self, inline_schemes):
        psdf_xml, psm_xml = inline_schemes
        job = parse_job(
            {
                "kind": "emulate",
                "psdf_xml": psdf_xml,
                "psm_xml": psm_xml,
                "fault_plan_xml": "<nope/>",
            }
        )
        with pytest.raises(JobValidationError, match="fault_plan_xml"):
            validate_job(job)


class TestCacheKey:
    def test_single_field_mutations_give_distinct_keys(self, inline_schemes):
        psdf_xml, psm_xml = inline_schemes
        base = {"kind": "emulate", "psdf_xml": psdf_xml, "psm_xml": psm_xml}
        mutations = [
            {**base, "kind": "estimate"},
            {**base, "kind": "lint"},
            {**base, "engine": "batch"},
            {**base, "strict": True},
            {**base, "psdf_xml": psdf_xml + "<!-- -->"},
            {**base, "psm_xml": psm_xml + "<!-- -->"},
        ]
        keys = {cache_key(parse_job(base))}
        for payload in mutations:
            keys.add(cache_key(parse_job(payload)))
        assert len(keys) == len(mutations) + 1

    def test_selftest_count_and_seed_key_separately(self):
        keys = {
            cache_key(parse_job({"kind": "selftest", "count": c, "seed": s}))
            for c, s in ((1, 1), (2, 1), (1, 2))
        }
        assert len(keys) == 3

    def test_key_is_stable_across_calls(self):
        job = parse_job({"kind": "emulate", "workload": "bursty"})
        assert cache_key(job) == cache_key(job)

    def test_label_carries_kind_and_key_prefix(self):
        job = parse_job({"kind": "emulate", "workload": "bursty"})
        assert job.label == f"emulate:{cache_key(job)[:12]}"


class TestExecuteJob:
    def test_emulate_inline_matches_direct_emulation(self, inline_schemes):
        from repro.emulator.emulator import SegBusEmulator

        psdf_xml, psm_xml = inline_schemes
        job = parse_job(
            {"kind": "emulate", "psdf_xml": psdf_xml, "psm_xml": psm_xml}
        )
        body = execute_job(job)
        report = SegBusEmulator(psdf_xml, psm_xml).run(engine=job.engine)
        assert body["kind"] == "emulate"
        assert body["multimode"] is False
        assert body["digest"] == report.digest()
        assert body["result"] == report.to_dict()
        assert body["schema"] == RESPONSE_SCHEMA_VERSION
        assert body["key"] == cache_key(job)

    def test_emulate_multimode_workload(self):
        job = parse_job({"kind": "emulate", "workload": "mp3_jpeg_multimode"})
        body = execute_job(job)
        assert body["multimode"] is True
        assert body["digest"]

    def test_estimate_reports_exact_ints_and_version(self, inline_schemes):
        from repro.analysis.stochastic import ESTIMATOR_VERSION

        psdf_xml, psm_xml = inline_schemes
        body = execute_job(
            parse_job(
                {"kind": "estimate", "psdf_xml": psdf_xml, "psm_xml": psm_xml}
            )
        )
        assert body["estimator_version"] == ESTIMATOR_VERSION
        result = body["result"]
        assert isinstance(result["execution_time_fs"], int)
        assert isinstance(result["execution_time_ps"], int)
        assert result["execution_time_fs"] > 0

    def test_lint_carries_registry_hash_and_exit_code(self, inline_schemes):
        from repro.lint import registry_hash

        psdf_xml, psm_xml = inline_schemes
        body = execute_job(
            parse_job(
                {"kind": "lint", "psdf_xml": psdf_xml, "psm_xml": psm_xml}
            )
        )
        assert body["registry"] == registry_hash()
        assert body["exit_code"] in (0, 1, 2)
        assert "findings" in json.dumps(body["result"]) or body["result"]

    def test_selftest_runs_the_battery(self):
        body = execute_job(
            parse_job({"kind": "selftest", "count": 2, "seed": 7})
        )
        result = body["result"]
        assert result["models"] == 2
        assert result["divergent"] == 0
        assert result["ok"] is True
        # wall clocks are banned from response bodies
        assert "elapsed_s" not in result

    def test_response_bytes_are_deterministic(self, inline_schemes):
        psdf_xml, psm_xml = inline_schemes
        payload = {
            "kind": "emulate",
            "psdf_xml": psdf_xml,
            "psm_xml": psm_xml,
        }
        first = response_bytes(execute_job(parse_job(payload)))
        second = response_bytes(execute_job(parse_job(payload)))
        assert first == second

    def test_job_kinds_constant_is_the_full_dispatch_surface(self):
        assert JOB_KINDS == ("emulate", "estimate", "lint", "selftest")
