"""Reference simulator and accuracy comparison tests."""

import pytest

from repro.emulator.config import EmulationConfig
from repro.reference.accuracy import compare_estimate_to_reference
from repro.reference.refsim import ReferenceSimulator, reference_execute


class TestReferenceSimulator:
    def test_default_config_is_reference_preset(self):
        assert ReferenceSimulator().config == EmulationConfig.reference()

    def test_custom_config_honoured(self):
        config = EmulationConfig(bu_sync_ticks=7)
        assert ReferenceSimulator(config=config).config.bu_sync_ticks == 7

    def test_execute_returns_report(self, mp3_graph, platform_3seg):
        report = reference_execute(mp3_graph, platform_3seg)
        assert report.segment_count == 3
        assert report.execution_time_us > 0

    def test_reference_slower_than_emulator(self, mp3_graph, platform_3seg, report_3seg):
        actual = reference_execute(mp3_graph, platform_3seg)
        assert actual.execution_time_fs > report_3seg.execution_time_fs

    def test_reference_preserves_package_accounting(self, mp3_graph, platform_3seg, report_3seg):
        # higher fidelity changes timing, never package counts
        actual = reference_execute(mp3_graph, platform_3seg)
        assert actual.bu(1, 2).input_packages == report_3seg.bu(1, 2).input_packages
        assert actual.bu(2, 3).input_packages == report_3seg.bu(2, 3).input_packages
        assert [s.inter_requests for s in actual.sa_results] == [
            s.inter_requests for s in report_3seg.sa_results
        ]


class TestAccuracyComparison:
    def test_result_fields(self, mp3_graph, platform_3seg):
        result = compare_estimate_to_reference(
            mp3_graph, platform_3seg, label="demo"
        )
        assert result.label == "demo"
        assert result.estimated_us == pytest.approx(
            result.estimated_report.execution_time_us
        )
        assert 0 < result.accuracy < 1
        assert result.error == pytest.approx(1 - result.accuracy)

    def test_estimate_below_actual(self, mp3_graph, platform_3seg):
        # the paper's emulator always under-estimates (skipped overheads)
        result = compare_estimate_to_reference(mp3_graph, platform_3seg)
        assert result.estimated_us < result.actual_us

    def test_accuracy_in_papers_band(self, mp3_graph, platform_3seg):
        # the paper reports "around 95%" for s=36
        result = compare_estimate_to_reference(mp3_graph, platform_3seg)
        assert 0.90 <= result.accuracy <= 0.99

    def test_identical_configs_give_accuracy_one(self, mp3_graph, platform_3seg):
        result = compare_estimate_to_reference(
            mp3_graph,
            platform_3seg,
            reference_config=EmulationConfig.emulator(),
        )
        assert result.accuracy == pytest.approx(1.0)
