"""The exception hierarchy contract."""

import pytest

from repro.errors import (
    PENDING_RENDER_CAP,
    ConstraintViolation,
    DeadlockError,
    ElementFailureError,
    EmulationError,
    FaultConfigError,
    FlowError,
    MappingError,
    ModelError,
    PlacementError,
    PSDFError,
    RetryExhaustedError,
    RoutingError,
    ScheduleError,
    SegBusError,
    StallError,
    XMLFormatError,
)


@pytest.mark.parametrize(
    "exc_type",
    [
        PSDFError,
        FlowError,
        ScheduleError,
        ModelError,
        ConstraintViolation,
        MappingError,
        XMLFormatError,
        EmulationError,
        DeadlockError,
        StallError,
        RetryExhaustedError,
        ElementFailureError,
        FaultConfigError,
        RoutingError,
        PlacementError,
    ],
)
def test_all_errors_derive_from_segbus_error(exc_type):
    assert issubclass(exc_type, SegBusError)


def test_flow_error_is_psdf_error():
    assert issubclass(FlowError, PSDFError)


def test_constraint_violation_is_model_error():
    assert issubclass(ConstraintViolation, ModelError)


def test_deadlock_is_emulation_error():
    assert issubclass(DeadlockError, EmulationError)


def test_constraint_violation_formats_diagnostics():
    exc = ConstraintViolation(["first problem", "second problem"], model_name="SBP")
    text = str(exc)
    assert "2 constraint violation(s)" in text
    assert "first problem" in text
    assert "second problem" in text
    assert "'SBP'" in text
    assert exc.diagnostics == ["first problem", "second problem"]


def test_constraint_violation_without_model_name():
    exc = ConstraintViolation(["x"])
    assert "model:" in str(exc) or "model" in str(exc)


def test_deadlock_error_lists_pending():
    exc = DeadlockError("stalled", pending=["master P1", "segment 2 locked"])
    assert "master P1" in str(exc)
    assert exc.pending == ["master P1", "segment 2 locked"]


def test_deadlock_error_without_pending():
    exc = DeadlockError("stalled")
    assert exc.pending == []
    assert "stalled" in str(exc)


def test_deadlock_rendering_caps_pending_list():
    pending = [f"item {i}" for i in range(PENDING_RENDER_CAP + 5)]
    exc = DeadlockError("stalled", pending=pending)
    text = str(exc)
    assert f"item {PENDING_RENDER_CAP - 1}" in text
    assert f"item {PENDING_RENDER_CAP}" not in text
    assert "and 5 more" in text
    # the attribute keeps everything even though the message is capped
    assert exc.pending == pending


def test_deadlock_reports_last_progress_tick():
    exc = DeadlockError("stalled", pending=["x"], last_progress_tick=1234)
    assert "last progress at CA tick 1234" in str(exc)
    assert exc.last_progress_tick == 1234


def test_stall_error_names_stalled_elements():
    exc = StallError(
        "no progress",
        pending=["job a"],
        last_progress_tick=7,
        stalled_elements=["master P1 (waiting grant)"],
    )
    assert issubclass(StallError, DeadlockError)
    assert "master P1" in str(exc)
    assert exc.stalled_elements == ["master P1 (waiting grant)"]


def test_retry_exhausted_carries_context():
    exc = RetryExhaustedError("segment:2", "P0->P1#1/4", attempts=4)
    assert exc.site == "segment:2"
    assert exc.attempts == 4
    assert "P0->P1#1/4" in str(exc)


def test_element_failure_carries_context():
    exc = ElementFailureError("fu:P3", at_tick=999)
    assert exc.site == "fu:P3"
    assert exc.at_tick == 999
    assert "fu:P3" in str(exc)
