"""The exception hierarchy contract."""

import pytest

from repro.errors import (
    ConstraintViolation,
    DeadlockError,
    EmulationError,
    FlowError,
    MappingError,
    ModelError,
    PlacementError,
    PSDFError,
    RoutingError,
    ScheduleError,
    SegBusError,
    XMLFormatError,
)


@pytest.mark.parametrize(
    "exc_type",
    [
        PSDFError,
        FlowError,
        ScheduleError,
        ModelError,
        ConstraintViolation,
        MappingError,
        XMLFormatError,
        EmulationError,
        DeadlockError,
        RoutingError,
        PlacementError,
    ],
)
def test_all_errors_derive_from_segbus_error(exc_type):
    assert issubclass(exc_type, SegBusError)


def test_flow_error_is_psdf_error():
    assert issubclass(FlowError, PSDFError)


def test_constraint_violation_is_model_error():
    assert issubclass(ConstraintViolation, ModelError)


def test_deadlock_is_emulation_error():
    assert issubclass(DeadlockError, EmulationError)


def test_constraint_violation_formats_diagnostics():
    exc = ConstraintViolation(["first problem", "second problem"], model_name="SBP")
    text = str(exc)
    assert "2 constraint violation(s)" in text
    assert "first problem" in text
    assert "second problem" in text
    assert "'SBP'" in text
    assert exc.diagnostics == ["first problem", "second problem"]


def test_constraint_violation_without_model_name():
    exc = ConstraintViolation(["x"])
    assert "model:" in str(exc) or "model" in str(exc)


def test_deadlock_error_lists_pending():
    exc = DeadlockError("stalled", pending=["master P1", "segment 2 locked"])
    assert "master P1" in str(exc)
    assert exc.pending == ["master P1", "segment 2 locked"]


def test_deadlock_error_without_pending():
    exc = DeadlockError("stalled")
    assert exc.pending == []
    assert "stalled" in str(exc)
