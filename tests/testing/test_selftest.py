"""Selftest orchestration tests: pass, fail, and update paths."""

from repro.testing.generators import GeneratorProfile
from repro.testing.oracles import OracleTolerance
from repro.testing.selftest import (
    DEFAULT_COUNT,
    QUICK_COUNT,
    run_selftest,
)


class TestPassPath:
    def test_small_run_passes(self):
        report = run_selftest(count=5, include_golden=False)
        assert report.ok
        assert report.exit_code == 0
        assert report.models == 5
        assert report.divergent == 0
        assert report.checks > 0
        assert "PASS" in report.format()

    def test_includes_golden_stage(self):
        report = run_selftest(count=2)
        assert report.golden is not None
        assert report.golden.ok
        assert "golden traces" in report.format()

    def test_progress_callback_invoked(self):
        lines = []
        run_selftest(count=50, include_golden=False, progress=lines.append)
        assert any("50/50" in line for line in lines)

    def test_default_counts(self):
        assert DEFAULT_COUNT == 200
        assert QUICK_COUNT < DEFAULT_COUNT


class TestFailPaths:
    def test_impossible_tolerance_reports_divergence(self):
        report = run_selftest(
            count=3,
            include_golden=False,
            tolerance=OracleTolerance(contention_ratio_max=0.01),
        )
        assert not report.ok
        assert report.exit_code == 1
        assert report.divergent == 3
        assert "FAIL" in report.format()

    def test_generation_failure_reported_not_raised(self):
        report = run_selftest(
            count=2,
            include_golden=False,
            profile=GeneratorProfile(max_attempts=0),
        )
        assert not report.ok
        assert report.models == 0
        assert all(f.startswith("[GEN]") for f in report.failures)


class TestGoldenUpdate:
    def test_update_golden_writes_then_verifies(self, tmp_path):
        store = tmp_path / "store.json"
        report = run_selftest(
            count=1, update_golden=True, store_path=store
        )
        assert store.is_file()
        assert report.golden is not None
        assert report.golden.ok


class TestFamilyCycle:
    def test_cycle_covers_every_family(self):
        from repro.testing.generators import ADVERSARIAL_SHAPES
        from repro.testing.selftest import FAMILY_CYCLE

        assert len(FAMILY_CYCLE) == 10
        assert FAMILY_CYCLE.count("random") == 5
        for shape in ADVERSARIAL_SHAPES:
            assert shape in FAMILY_CYCLE
        assert "multimode" in FAMILY_CYCLE

    def test_ten_seed_run_exercises_every_family(self):
        # a ten-model run walks one full family cycle: adversarial shapes
        # and the multi-mode MODE battery all conform
        report = run_selftest(count=10, include_golden=False)
        assert report.ok, report.format()
        assert report.models == 10

    def test_quick_count_still_covers_adversarial_and_multimode(self):
        from repro.testing.selftest import FAMILY_CYCLE, QUICK_COUNT

        families = {
            FAMILY_CYCLE[offset % len(FAMILY_CYCLE)]
            for offset in range(QUICK_COUNT)
        }
        assert families == set(FAMILY_CYCLE)
