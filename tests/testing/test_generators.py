"""Random model generator tests: determinism, validity, coverage."""

import pytest

from repro.errors import SegBusError
from repro.lint import lint_models, lint_multimode
from repro.testing.generators import (
    ADVERSARIAL_SHAPES,
    DEFAULT_PROFILE,
    GenerationError,
    GeneratorProfile,
    generate_adversarial_model,
    generate_model,
    generate_models,
    generate_multimode_model,
)


class TestDeterminism:
    def test_same_seed_same_model(self):
        a = generate_model(11)
        b = generate_model(11)
        assert a.application.flows == b.application.flows
        assert a.platform.process_placement() == \
            b.platform.process_placement()
        assert a.platform.package_size == b.platform.package_size
        assert a.attempts == b.attempts

    def test_different_seeds_differ(self):
        models = list(generate_models(10, base_seed=100))
        signatures = {
            (
                len(m.application.flows),
                m.platform.segment_count,
                m.platform.package_size,
                tuple(sorted(m.platform.process_placement().items())),
            )
            for m in models
        }
        assert len(signatures) > 1


class TestValidity:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_lint_clean(self, seed):
        model = generate_model(seed)
        report = lint_models(
            application=model.application, platform=model.platform
        )
        assert report.exit_code == 0, report

    def test_transfer_orders_unique_and_contiguous(self):
        for model in generate_models(10):
            orders = sorted(f.order for f in model.application.flows)
            assert orders == list(range(1, len(orders) + 1))

    def test_data_multiple_of_package_size(self):
        for model in generate_models(10, base_seed=50):
            s = model.platform.package_size
            assert all(
                f.data_items % s == 0 for f in model.application.flows
            )

    def test_placement_blocks_contiguous(self):
        # topological index order cut into contiguous segment blocks
        for model in generate_models(10, base_seed=77):
            placement = model.platform.process_placement()
            indices = sorted(
                (int(name[1:]), seg) for name, seg in placement.items()
            )
            segments = [seg for _, seg in indices]
            assert segments == sorted(segments)


class TestCoverage:
    def test_shapes_vary_across_seeds(self):
        models = list(generate_models(40, base_seed=1))
        assert {m.platform.segment_count for m in models} == {1, 2, 3}
        assert len({m.platform.package_size for m in models}) >= 2
        process_counts = {len(m.application.process_names) for m in models}
        assert len(process_counts) >= 3

    def test_label_mentions_provenance(self):
        model = generate_model(5)
        assert "seed=5" in model.label
        assert "segments=" in model.label


class TestFailurePath:
    def test_zero_attempts_raises(self):
        profile = GeneratorProfile(max_attempts=0)
        with pytest.raises(GenerationError, match="seed 1"):
            generate_model(1, profile)

    def test_default_profile_is_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_PROFILE.max_attempts = 1


class TestAdversarialShapes:
    @pytest.mark.parametrize("shape", ADVERSARIAL_SHAPES)
    def test_every_shape_is_lint_clean(self, shape):
        for seed in (1, 2, 3):
            model = generate_adversarial_model(seed, shape)
            report = lint_models(
                application=model.application, platform=model.platform
            )
            assert report.exit_code == 0, (shape, seed, report.findings)

    @pytest.mark.parametrize("shape", ADVERSARIAL_SHAPES)
    def test_deterministic_per_seed(self, shape):
        a = generate_adversarial_model(9, shape)
        b = generate_adversarial_model(9, shape)
        assert a.application.flows == b.application.flows
        assert a.platform.process_placement() == \
            b.platform.process_placement()

    def test_label_mentions_shape_and_seed(self):
        model = generate_adversarial_model(4, "bursty")
        assert "bursty" in model.label
        assert "seed=4" in model.label

    def test_unknown_shape_raises(self):
        with pytest.raises(SegBusError, match="bursty"):
            generate_adversarial_model(1, "zigzag")

    def test_hot_segment_concentrates_fan_in(self):
        model = generate_adversarial_model(2, "adversarial_hot_segment")
        sinks = {f.target for f in model.application.flows}
        fan_in = max(
            sum(1 for f in model.application.flows if f.target == t)
            for t in sinks
        )
        assert fan_in >= 2


class TestMultiModeGeneration:
    def test_generated_app_is_lint_clean(self):
        for seed in (1, 2, 3):
            model = generate_multimode_model(seed)
            report = lint_multimode(
                model.application, platform=model.platform
            )
            assert report.exit_code == 0, (seed, report.findings)

    def test_mode_count_in_band(self):
        for seed in range(1, 6):
            model = generate_multimode_model(seed)
            assert 2 <= len(model.application.modes) <= 4

    def test_deterministic_per_seed(self):
        a = generate_multimode_model(7)
        b = generate_multimode_model(7)
        assert a.application.name == b.application.name
        assert a.application.schedule == b.application.schedule
        for name in a.application.modes:
            assert a.application.modes[name].flows == \
                b.application.modes[name].flows

    def test_schedule_covers_every_mode(self):
        for seed in (1, 2, 3, 4):
            model = generate_multimode_model(seed)
            assert not model.application.unreachable_modes()

    def test_every_mode_process_is_placed(self):
        model = generate_multimode_model(2)
        placement = model.platform.process_placement()
        for name in model.application.process_names():
            assert name in placement

    def test_label_mentions_provenance(self):
        model = generate_multimode_model(3)
        assert "seed=3" in model.label
        assert "modes=" in model.label
