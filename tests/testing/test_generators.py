"""Random model generator tests: determinism, validity, coverage."""

import pytest

from repro.lint import lint_models
from repro.testing.generators import (
    DEFAULT_PROFILE,
    GenerationError,
    GeneratorProfile,
    generate_model,
    generate_models,
)


class TestDeterminism:
    def test_same_seed_same_model(self):
        a = generate_model(11)
        b = generate_model(11)
        assert a.application.flows == b.application.flows
        assert a.platform.process_placement() == \
            b.platform.process_placement()
        assert a.platform.package_size == b.platform.package_size
        assert a.attempts == b.attempts

    def test_different_seeds_differ(self):
        models = list(generate_models(10, base_seed=100))
        signatures = {
            (
                len(m.application.flows),
                m.platform.segment_count,
                m.platform.package_size,
                tuple(sorted(m.platform.process_placement().items())),
            )
            for m in models
        }
        assert len(signatures) > 1


class TestValidity:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_lint_clean(self, seed):
        model = generate_model(seed)
        report = lint_models(
            application=model.application, platform=model.platform
        )
        assert report.exit_code == 0, report

    def test_transfer_orders_unique_and_contiguous(self):
        for model in generate_models(10):
            orders = sorted(f.order for f in model.application.flows)
            assert orders == list(range(1, len(orders) + 1))

    def test_data_multiple_of_package_size(self):
        for model in generate_models(10, base_seed=50):
            s = model.platform.package_size
            assert all(
                f.data_items % s == 0 for f in model.application.flows
            )

    def test_placement_blocks_contiguous(self):
        # topological index order cut into contiguous segment blocks
        for model in generate_models(10, base_seed=77):
            placement = model.platform.process_placement()
            indices = sorted(
                (int(name[1:]), seg) for name, seg in placement.items()
            )
            segments = [seg for _, seg in indices]
            assert segments == sorted(segments)


class TestCoverage:
    def test_shapes_vary_across_seeds(self):
        models = list(generate_models(40, base_seed=1))
        assert {m.platform.segment_count for m in models} == {1, 2, 3}
        assert len({m.platform.package_size for m in models}) >= 2
        process_counts = {len(m.application.process_names) for m in models}
        assert len(process_counts) >= 3

    def test_label_mentions_provenance(self):
        model = generate_model(5)
        assert "seed=5" in model.label
        assert "segments=" in model.label


class TestFailurePath:
    def test_zero_attempts_raises(self):
        profile = GeneratorProfile(max_attempts=0)
        with pytest.raises(GenerationError, match="seed 1"):
            generate_model(1, profile)

    def test_default_profile_is_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_PROFILE.max_attempts = 1
