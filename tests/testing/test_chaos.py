"""Chaos harness tests and the PR's chaos equivalence gate.

The gate (ISSUE 6 acceptance): with seeded chaos killing >= 2 workers and
one mid-campaign SIGTERM + resume, a ``segbus faults`` sweep and a
selftest batch produce byte-identical results to an uninterrupted run,
and a poisoned job surfaces in the failure ledger without aborting the
batch.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.executor import ExecutorPolicy, execute_batch
from repro.testing.chaos import (
    KILL,
    POISON,
    STALL,
    ChaosConfigError,
    ChaosPlan,
    ChaosPoisonError,
    ProbeJob,
    run_probe,
)

PARALLEL = dict(workers=2, serial_threshold=1)
SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestChaosPlan:
    def test_decide_is_deterministic(self):
        plan = ChaosPlan(seed=7, kill_rate=0.3, stall_rate=0.3, poison_rate=0.3)
        first = [plan.decide(f"j{i}", 1) for i in range(50)]
        second = [plan.decide(f"j{i}", 1) for i in range(50)]
        assert first == second
        assert any(h == KILL for h in first)
        assert any(h is None for h in first)

    def test_seed_changes_schedule(self):
        a = [ChaosPlan(seed=1, kill_rate=0.5).decide(f"j{i}", 1) for i in range(40)]
        b = [ChaosPlan(seed=2, kill_rate=0.5).decide(f"j{i}", 1) for i in range(40)]
        assert a != b

    def test_pinned_combos_beat_rates(self):
        plan = ChaosPlan(
            kill_on=("a:1",), stall_on=("b:2",), poison_on=("c:1",),
            poison_labels=("bad",),
        )
        assert plan.decide("a", 1) == KILL
        assert plan.decide("a", 2) is None
        assert plan.decide("b", 2) == STALL
        assert plan.decide("c", 1) == POISON
        assert plan.decide("bad", 1) == POISON
        assert plan.decide("bad", 99) == POISON  # every attempt

    def test_env_round_trip(self):
        plan = ChaosPlan(
            seed=9,
            kill_rate=0.25,
            stall_s=12.5,
            kill_on=("x:1", "y:2"),
            poison_labels=("bad",),
            interrupt_after=4,
        )
        assert ChaosPlan.from_env(plan.to_env()) == plan

    def test_from_env_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(ChaosPlan.ENV_VAR, raising=False)
        assert ChaosPlan.from_env() is None

    def test_invalid_specs_rejected(self):
        with pytest.raises(ChaosConfigError):
            ChaosPlan(kill_rate=1.5)
        with pytest.raises(ChaosConfigError):
            ChaosPlan(interrupt_after=0)
        with pytest.raises(ChaosConfigError):
            ChaosPlan.from_env("kill")
        with pytest.raises(ChaosConfigError):
            ChaosPlan.from_env("unknown_key=1")


class TestPoisonedJob:
    def test_poison_lands_in_ledger_without_aborting(self):
        plan = ChaosPlan(poison_labels=("j3",))
        jobs = [ProbeJob(label=f"j{i}", value=i) for i in range(6)]
        batch = execute_batch(
            jobs,
            run_probe,
            policy=ExecutorPolicy(max_attempts=2, backoff_base_s=0.0),
            chaos=plan,
            **PARALLEL,
        )
        assert not batch.ok
        (failure,) = batch.failures
        assert failure.label == "j3"
        assert failure.error == "ChaosPoisonError"
        assert failure.attempts == 2
        # the other five completed despite the poison
        assert len(batch.completed) == 5
        assert batch.results[0] == run_probe(jobs[0])

    def test_poison_error_message_names_label_and_attempt(self):
        with pytest.raises(ChaosPoisonError, match="'j0' \\(attempt 1\\)"):
            from repro.testing.chaos import chaotic_call

            chaotic_call(
                run_probe, ChaosPlan(poison_labels=("j0",)), 1, ProbeJob("j0")
            )


class TestEquivalenceGate:
    """Chaotic campaigns must reproduce calm ones byte for byte."""

    def test_reliability_sweep_survives_two_worker_kills(self, monkeypatch):
        from repro.analysis.reliability import reliability_sweep
        from repro.apps.mp3 import mp3_decoder_psdf, paper_platform

        app = mp3_decoder_psdf()
        plat = paper_platform(2)
        kwargs = dict(rates=[0.0, 0.01], seeds=(1, 2), stall_ticks=5, workers=2)

        monkeypatch.delenv(ChaosPlan.ENV_VAR, raising=False)
        calm_csv = reliability_sweep(app, plat, **kwargs).to_csv()

        # two first attempts SIGKILL their workers (labels are rate#seed)
        monkeypatch.setenv(
            ChaosPlan.ENV_VAR,
            "kill_on=package_corruption@0#s2:1;package_corruption@0.01#s1:1",
        )
        chaotic = reliability_sweep(app, plat, **kwargs)
        assert chaotic.to_csv() == calm_csv

    def test_selftest_batch_equivalence_under_kills(self, monkeypatch):
        from repro.testing.selftest import run_selftest

        kwargs = dict(count=4, base_seed=1, include_golden=False, workers=2)
        monkeypatch.delenv(ChaosPlan.ENV_VAR, raising=False)
        calm = run_selftest(**kwargs)

        monkeypatch.setenv(
            ChaosPlan.ENV_VAR, "kill_on=fuzz#1:1;fuzz#3:1"
        )
        chaotic = run_selftest(**kwargs)
        assert chaotic.ok == calm.ok
        assert chaotic.models == calm.models
        assert chaotic.checks == calm.checks
        assert chaotic.divergent == calm.divergent
        assert chaotic.failures == calm.failures


class TestCliSigtermResume:
    """Mid-campaign SIGTERM against the real CLI, then --resume."""

    def _run(self, args, tmp_path, chaos=""):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        if chaos:
            env[ChaosPlan.ENV_VAR] = chaos
        else:
            env.pop(ChaosPlan.ENV_VAR, None)
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=tmp_path,
            timeout=300,
        )

    def test_faults_sigterm_then_resume_byte_identical(self, tmp_path):
        common = [
            "faults",
            "--segments", "2",
            "--rates", "0.0", "0.01",
            "--seeds", "2",
            "--workers", "2",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ]
        clean = self._run(common + ["--csv", "clean.csv"], tmp_path)
        assert clean.returncode == 0, clean.stderr

        # chaos kills one worker, then SIGTERMs the supervisor mid-campaign
        interrupted = self._run(
            common + ["--csv", "never.csv"],
            tmp_path,
            chaos="kill_on=package_corruption@0#s1:1,interrupt_after=2",
        )
        assert interrupted.returncode == 2
        assert "interrupted" in interrupted.stderr.lower()
        assert not (tmp_path / "never.csv").exists()
        journals = list((tmp_path / "ck").glob("*.jsonl"))
        assert journals, "interrupted campaign must leave its journal"

        resumed = self._run(
            common + ["--csv", "resumed.csv", "--resume"], tmp_path
        )
        assert resumed.returncode == 0, resumed.stderr
        assert (tmp_path / "resumed.csv").read_bytes() == (
            tmp_path / "clean.csv"
        ).read_bytes()
        assert "replayed" not in resumed.stdout  # quiet path; csv is the proof
