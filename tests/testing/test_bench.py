"""Bench runner tests: deterministic ticks, baselines, regression gates."""

import pytest

from repro.errors import SegBusError
from repro.testing.bench import (
    DEFAULT_BASELINE_DIR,
    SCENARIO_NAMES,
    BenchResult,
    BenchScenario,
    check_bench,
    format_results,
    load_baseline,
    run_bench,
    run_scenario,
    scenario,
    write_baselines,
)

FAST = "mp3_3seg_analytic"
EMU = "mp3_1seg_emulate"  # cheapest engine-aware scenario, no speedup pin
GATED = "mp3_2seg_emulate"  # the scenario pinning speedup_min


class TestRegistry:
    def test_known_scenarios(self):
        assert "mp3_3seg_emulate" in SCENARIO_NAMES
        assert scenario(FAST).name == FAST

    def test_unknown_scenario_raises(self):
        with pytest.raises(SegBusError, match="unknown bench scenario"):
            scenario("warp_drive")

    def test_ticks_are_deterministic(self):
        a = run_scenario(scenario(FAST), repeats=1)
        b = run_scenario(scenario(FAST), repeats=1)
        assert a.ticks == b.ticks
        assert a.wall_ms > 0


class TestCommittedBaselines:
    def test_every_scenario_has_a_committed_baseline(self):
        for name in SCENARIO_NAMES:
            baseline = load_baseline(name, DEFAULT_BASELINE_DIR)
            assert baseline.name == name
            assert baseline.ticks

    def test_committed_ticks_match_reality(self):
        # tick counters are machine-independent, so the committed
        # baselines must reproduce exactly on any host
        results = run_bench(names=[FAST, "mp3_3seg_emulate"], repeats=1)
        check = check_bench(
            results, baseline_dir=DEFAULT_BASELINE_DIR, check_wall=False
        )
        assert check.ok, check.format()


class TestGates:
    def _pinned(self, tmp_path):
        # medians over 3 repeats: a single-sample baseline can absorb an
        # injected slowdown when the pinning run itself caught a noisy host
        results = run_bench(names=[FAST], repeats=3)
        write_baselines(results, tmp_path)
        return results

    def test_clean_rerun_passes(self, tmp_path):
        self._pinned(tmp_path)
        check = check_bench(
            run_bench(names=[FAST], repeats=1),
            baseline_dir=tmp_path,
            check_wall=False,
        )
        assert check.ok

    def test_injected_slowdown_fails_wall_gate(self, tmp_path):
        self._pinned(tmp_path)
        slow = run_bench(names=[FAST], repeats=3, inject_slowdown=4.0)
        check = check_bench(slow, baseline_dir=tmp_path, wall_ratio_max=1.5)
        assert not check.ok
        assert any("perf regression" in f for f in check.failures)

    def test_no_wall_ignores_slowdown(self, tmp_path):
        self._pinned(tmp_path)
        slow = run_bench(names=[FAST], repeats=1, inject_slowdown=10.0)
        check = check_bench(slow, baseline_dir=tmp_path, check_wall=False)
        assert check.ok

    def test_tick_drift_fails_even_without_wall(self, tmp_path):
        baseline = self._pinned(tmp_path)[0]
        drifted = BenchResult(
            name=baseline.name,
            ticks={k: v + 1 for k, v in baseline.ticks.items()},
            wall_ms=baseline.wall_ms,
            wall_median_ms=baseline.wall_median_ms,
            repeats=1,
        )
        check = check_bench([drifted], baseline_dir=tmp_path, check_wall=False)
        assert not check.ok
        assert any("drifted" in f for f in check.failures)

    def test_missing_baseline_raises(self, tmp_path):
        results = run_bench(names=[FAST], repeats=1)
        with pytest.raises(SegBusError, match="no baseline"):
            check_bench(results, baseline_dir=tmp_path / "empty")

    def test_much_faster_run_noted_not_failed(self, tmp_path):
        baseline = self._pinned(tmp_path)[0]
        quick = BenchResult(
            name=baseline.name,
            ticks=baseline.ticks,
            wall_ms=baseline.wall_ms / 100.0,
            wall_median_ms=baseline.wall_median_ms / 100.0,
            repeats=1,
        )
        check = check_bench([quick], baseline_dir=tmp_path)
        assert check.ok
        assert check.notes


class TestEngineAwareness:
    def test_every_engine_timed_by_default(self):
        result = run_bench(names=[EMU], repeats=1)[0]
        assert set(result.engine_wall_ms) == {"stepped", "fast", "batch"}
        assert result.speedup is not None and result.speedup > 0
        assert result.batch_speedup is not None and result.batch_speedup > 0

    def test_single_engine_run_has_no_speedup(self):
        result = run_bench(names=[EMU], repeats=1, engine="stepped")[0]
        assert set(result.engine_wall_ms) == {"stepped"}
        assert result.speedup is None
        assert result.batch_speedup is None

    def test_engines_report_identical_ticks(self):
        stepped = run_bench(names=[EMU], repeats=1, engine="stepped")[0]
        fast = run_bench(names=[EMU], repeats=1, engine="fast")[0]
        batch = run_bench(names=[EMU], repeats=1, engine="batch")[0]
        assert stepped.ticks == fast.ticks == batch.ticks

    def test_tick_divergence_between_engines_raises(self):
        item = BenchScenario(
            "diverging",
            "synthetic divergence probe",
            lambda: {"events": 1},
            prepare=lambda engine: (
                lambda: {"events": 1 if engine == "stepped" else 2}
            ),
        )
        with pytest.raises(SegBusError, match="diverge between engines"):
            run_scenario(item, repeats=1)

    def test_v3_baseline_roundtrip(self, tmp_path):
        results = run_bench(names=[EMU], repeats=1)
        write_baselines(results, tmp_path)
        loaded = load_baseline(EMU, tmp_path)
        assert set(loaded.engine_wall_ms) == {"stepped", "fast", "batch"}
        assert loaded.speedup == round(results[0].speedup, 2)
        assert loaded.batch_speedup == round(results[0].batch_speedup, 2)
        assert set(loaded.throughput_models_per_s) == set(
            loaded.engine_wall_ms
        )
        assert set(loaded.jitter_ms) == set(loaded.engine_wall_ms)
        assert set(loaded.peak_mem_kb) == set(loaded.engine_wall_ms)

    def test_v3_metrics_are_sane(self):
        result = run_bench(names=[EMU], repeats=3)[0]
        for engine, pcts in result.jitter_ms.items():
            assert 0 < pcts["p50"] <= pcts["p90"] <= pcts["p99"]
        for engine, peak in result.peak_mem_kb.items():
            assert peak > 0
        for engine, median in result.engine_wall_ms.items():
            # models/sec must be consistent with the median round wall
            expected = scenario(EMU).models_per_round * 1e3 / median
            assert result.throughput_models_per_s[engine] == pytest.approx(
                expected
            )

    @pytest.mark.parametrize("engine", ["stepped", "fast"])
    def test_slowdown_trips_wall_gate_for_each_engine(self, tmp_path, engine):
        # --inject-slowdown must scale whichever engine feeds the gate
        pinned = run_bench(names=[EMU], repeats=3, engine=engine)
        write_baselines(pinned, tmp_path)
        slow = run_bench(
            names=[EMU], repeats=3, engine=engine, inject_slowdown=10.0
        )
        check = check_bench(slow, baseline_dir=tmp_path, wall_ratio_max=1.5)
        assert not check.ok
        assert any("perf regression" in f for f in check.failures)


class TestSpeedupGate:
    def _pinned(self, tmp_path):
        results = run_bench(names=[GATED], repeats=1)
        write_baselines(results, tmp_path)
        return results[0]

    def test_low_speedup_fails_even_without_wall(self, tmp_path):
        baseline = self._pinned(tmp_path)
        regressed = BenchResult(
            name=baseline.name,
            ticks=baseline.ticks,
            wall_ms=baseline.wall_ms,
            wall_median_ms=baseline.wall_median_ms,
            repeats=baseline.repeats,
            engine_wall_ms=baseline.engine_wall_ms,
            speedup=1.2,
        )
        check = check_bench(
            [regressed], baseline_dir=tmp_path, check_wall=False
        )
        assert not check.ok
        assert any("below the pinned minimum" in f for f in check.failures)

    def test_missing_speedup_noted_not_failed(self, tmp_path):
        baseline = self._pinned(tmp_path)
        single = BenchResult(
            name=baseline.name,
            ticks=baseline.ticks,
            wall_ms=baseline.wall_ms,
            wall_median_ms=baseline.wall_median_ms,
            repeats=baseline.repeats,
            engine_wall_ms={"fast": baseline.wall_median_ms},
            speedup=None,
        )
        check = check_bench([single], baseline_dir=tmp_path, check_wall=False)
        assert check.ok
        assert any("speedup gate" in n for n in check.notes)


class TestBatchSpeedupGate:
    """faults_sweep pins ``speedup_min_batch`` — gate it synthetically.

    The scenario itself runs a whole reliability grid per engine, so the
    gate logic is exercised on hand-built results against a hand-built
    baseline instead of re-running the grid in the unit suite (the real
    measurement lives in the committed baseline and CI's --check run).
    """

    GATED_BATCH = "faults_sweep"

    def _result(self, batch_speedup):
        return BenchResult(
            name=self.GATED_BATCH,
            ticks={"completed": 48},
            wall_ms=1.0,
            wall_median_ms=1.0,
            repeats=1,
            engine_wall_ms={"stepped": 18.0, "fast": 6.0, "batch": 1.0},
            speedup=3.0,
            batch_speedup=batch_speedup,
        )

    def test_scenario_pins_batch_minimum(self):
        assert scenario(self.GATED_BATCH).speedup_min_batch == 5.0

    def test_low_batch_speedup_fails_even_without_wall(self, tmp_path):
        write_baselines([self._result(18.0)], tmp_path)
        check = check_bench(
            [self._result(1.2)], baseline_dir=tmp_path, check_wall=False
        )
        assert not check.ok
        assert any(
            "batch engine speedup" in f and "below the pinned minimum" in f
            for f in check.failures
        )

    def test_missing_batch_speedup_noted_not_failed(self, tmp_path):
        write_baselines([self._result(18.0)], tmp_path)
        check = check_bench(
            [self._result(None)], baseline_dir=tmp_path, check_wall=False
        )
        assert check.ok
        assert any("batch speedup gate" in n for n in check.notes)

    def test_committed_baseline_records_ten_x_throughput(self):
        # the acceptance bar: the committed measurement must show >=10x
        # aggregate throughput for batch vs stepped on the faults sweep,
        # with the per-engine memory and jitter columns populated
        baseline = load_baseline(self.GATED_BATCH, DEFAULT_BASELINE_DIR)
        assert baseline.batch_speedup is not None
        assert baseline.batch_speedup >= 10.0
        throughput = baseline.throughput_models_per_s
        assert throughput["batch"] >= 10.0 * throughput["stepped"]
        assert set(baseline.jitter_ms) == {"stepped", "fast", "batch"}
        assert set(baseline.peak_mem_kb) == {"stepped", "fast", "batch"}


class TestEstimatorGate:
    """dse_estimator_sweep pins ``estimator_speedup_min`` at 50x.

    Gate logic runs on hand-built results (same convention as the batch
    gate above); one live single-repeat run covers the real plumbing —
    interleaved estimator timing, ``est_``-prefixed ticks, the measured
    ratio — without re-running the full grid per test.
    """

    GATED_EST = "dse_estimator_sweep"

    def _result(self, estimator_speedup, ticks=None):
        return BenchResult(
            name=self.GATED_EST,
            ticks=ticks if ticks is not None else {"events": 480},
            wall_ms=1.0,
            wall_median_ms=1.0,
            repeats=1,
            engine_wall_ms={"stepped": 40.0, "fast": 12.0, "batch": 9.0},
            speedup=3.3,
            batch_speedup=4.4,
            estimator_wall_ms=0.12,
            estimator_speedup=estimator_speedup,
        )

    def test_scenario_pins_estimator_minimum(self):
        assert scenario(self.GATED_EST).estimator_speedup_min == 50.0

    def test_live_run_measures_the_claim(self):
        result = run_bench(names=[self.GATED_EST], repeats=1)[0]
        # the estimator's own predictions ride along as est_ ticks,
        # exempt from the cross-engine equality assert
        est_ticks = [k for k in result.ticks if k.startswith("est_")]
        assert len(est_ticks) == scenario(self.GATED_EST).models_per_round
        assert result.estimator_wall_ms is not None
        assert result.estimator_speedup is not None
        assert result.estimator_speedup >= 50.0

    def test_low_estimator_speedup_fails_even_without_wall(self, tmp_path):
        write_baselines([self._result(70.0)], tmp_path)
        check = check_bench(
            [self._result(8.0)], baseline_dir=tmp_path, check_wall=False
        )
        assert not check.ok
        assert any(
            "stochastic estimator" in f and "below the pinned minimum" in f
            for f in check.failures
        )

    def test_missing_estimator_speedup_noted_not_failed(self, tmp_path):
        write_baselines([self._result(70.0)], tmp_path)
        check = check_bench(
            [self._result(None)], baseline_dir=tmp_path, check_wall=False
        )
        assert check.ok
        assert any("estimator speedup gate" in n for n in check.notes)

    def test_estimator_fields_roundtrip_through_baseline(self, tmp_path):
        write_baselines([self._result(70.0)], tmp_path)
        loaded = load_baseline(self.GATED_EST, tmp_path)
        assert loaded.estimator_wall_ms == pytest.approx(0.12)
        assert loaded.estimator_speedup == pytest.approx(70.0)

    def test_committed_baseline_records_fifty_x(self):
        # the acceptance bar: the committed measurement must show the
        # estimator >=50x faster than the batch engine on the DSE grid
        baseline = load_baseline(self.GATED_EST, DEFAULT_BASELINE_DIR)
        assert baseline.estimator_speedup is not None
        assert baseline.estimator_speedup >= 50.0
        assert any(k.startswith("est_") for k in baseline.ticks)


class TestFormatting:
    def test_table_lists_every_result(self):
        results = run_bench(names=[FAST], repeats=1)
        table = format_results(results)
        assert FAST in table
        assert "execution_time_ps=" in table

    def test_speedup_column(self):
        engine_aware = run_bench(names=[EMU], repeats=1)
        table = format_results(engine_aware)
        assert "speedup" in table
        assert "x" in table.split("\n")[1]

    def test_speedup_dash_for_engineless_scenarios(self):
        table = format_results(run_bench(names=[FAST], repeats=1))
        assert " - " in table.split("\n")[1] + " "


class TestMultimodeScenario:
    def test_registered_with_committed_baseline(self):
        assert "multimode_switch" in SCENARIO_NAMES
        baseline = load_baseline("multimode_switch", DEFAULT_BASELINE_DIR)
        assert baseline.ticks["switches"] == 1
        assert baseline.ticks["transition_ps"] > 0

    def test_committed_ticks_match_reality(self):
        results = run_bench(names=["multimode_switch"], repeats=1)
        check = check_bench(
            results, baseline_dir=DEFAULT_BASELINE_DIR, check_wall=False
        )
        assert check.ok, check.format()

    def test_ticks_agree_with_the_composed_report(self):
        from repro.apps.workloads import workload_model
        from repro.emulator.multimode import run_multimode

        result = run_scenario(scenario("multimode_switch"), repeats=1)
        scenario_model = workload_model("mp3_jpeg_multimode")
        composed = run_multimode(
            scenario_model.application, scenario_model.platform
        )
        assert result.ticks["events"] == composed.total_events
        assert result.ticks["execution_time_ps"] == \
            composed.execution_time_ps
