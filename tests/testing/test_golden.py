"""Golden-trace store tests: pinning, drift detection, readable diffs."""

import json

import pytest

from repro.errors import SegBusError
from repro.testing.golden import (
    DEFAULT_MODELS_DIR,
    DEFAULT_STORE,
    check_goldens,
    discover_pairs,
    load_store,
    update_goldens,
    write_store,
)


class TestDiscovery:
    def test_finds_example_pairs(self):
        pairs = discover_pairs(DEFAULT_MODELS_DIR)
        keys = [key for key, _, _ in pairs]
        assert "mp3_psdf.xml+mp3_psm_2seg.xml" in keys
        assert "mp3_psdf.xml+mp3_psm_3seg.xml" in keys

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(SegBusError, match="does not exist"):
            discover_pairs(tmp_path / "nope")


class TestCommittedStore:
    def test_committed_store_matches_reality(self):
        # THE regression: the checked-in digests must match what the
        # current emulator produces for the example models
        check = check_goldens(DEFAULT_MODELS_DIR, DEFAULT_STORE)
        assert check.ok, check.format()
        assert check.checked >= 2

    def test_store_is_versioned_json(self):
        entries = load_store(DEFAULT_STORE)
        for entry in entries.values():
            assert len(entry.trace_digest) == 64
            assert len(entry.timeline_digest) == 64
            assert len(entry.report_digest) == 64
            assert entry.events > 0
            assert entry.execution_time_ps > 0


class TestDriftDetection:
    def _tmp_store(self, tmp_path):
        path = tmp_path / "golden.json"
        entries = update_goldens(DEFAULT_MODELS_DIR, path)
        return path, entries

    def test_update_then_check_clean(self, tmp_path):
        path, entries = self._tmp_store(tmp_path)
        assert len(entries) >= 2
        check = check_goldens(DEFAULT_MODELS_DIR, path)
        assert check.ok
        assert "unchanged" in check.format()

    def test_tampered_digest_reports_readable_drift(self, tmp_path):
        path, _ = self._tmp_store(tmp_path)
        data = json.loads(path.read_text())
        key = sorted(data["entries"])[0]
        data["entries"][key]["trace_digest"] = "0" * 64
        data["entries"][key]["events"] += 5
        path.write_text(json.dumps(data))
        check = check_goldens(DEFAULT_MODELS_DIR, path)
        assert not check.ok
        text = check.format()
        assert key in text
        assert "trace digest(s) drifted" in text
        assert "events:" in text
        assert "--update-golden" in text

    def test_missing_model_reported(self, tmp_path):
        path, _ = self._tmp_store(tmp_path)
        data = json.loads(path.read_text())
        data["entries"]["ghost_psdf.xml+ghost_psm.xml"] = next(
            iter(data["entries"].values())
        )
        path.write_text(json.dumps(data))
        check = check_goldens(DEFAULT_MODELS_DIR, path)
        assert not check.ok
        assert check.missing == ["ghost_psdf.xml+ghost_psm.xml"]

    def test_unpinned_pair_reported(self, tmp_path):
        path, _ = self._tmp_store(tmp_path)
        data = json.loads(path.read_text())
        dropped = sorted(data["entries"])[0]
        del data["entries"][dropped]
        path.write_text(json.dumps(data))
        check = check_goldens(DEFAULT_MODELS_DIR, path)
        assert not check.ok
        assert check.unpinned == [dropped]

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "golden.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(SegBusError, match="unsupported version"):
            load_store(path)

    def test_write_store_is_sorted_and_stable(self, tmp_path):
        path, entries = self._tmp_store(tmp_path)
        first = path.read_text()
        write_store(entries, path)
        assert path.read_text() == first


class TestWorkloadGoldens:
    def test_committed_workload_store_matches_reality(self):
        from repro.testing.golden import (
            DEFAULT_WORKLOAD_STORE,
            check_workload_goldens,
        )

        check = check_workload_goldens(DEFAULT_WORKLOAD_STORE)
        assert check.ok, check.format()
        # two scenarios x three engines
        assert check.checked == 6

    def test_committed_store_pins_the_required_scenarios(self):
        from repro.testing.golden import (
            DEFAULT_WORKLOAD_STORE,
            WORKLOAD_GOLDEN_NAMES,
            load_store,
        )

        entries = load_store(DEFAULT_WORKLOAD_STORE)
        assert set(entries) == set(WORKLOAD_GOLDEN_NAMES)
        assert "mp3_jpeg_multimode" in entries
        for entry in entries.values():
            assert len(entry.trace_digest) == 64
            assert entry.events > 0
            assert entry.execution_time_ps > 0

    def test_update_then_check_clean(self, tmp_path):
        from repro.testing.golden import (
            check_workload_goldens,
            update_workload_goldens,
        )

        path = tmp_path / "workloads.json"
        entries = update_workload_goldens(path)
        assert set(entries) == {
            "adversarial_hot_segment",
            "mp3_jpeg_multimode",
        }
        assert check_workload_goldens(path).ok

    def test_tampered_digest_reports_drift(self, tmp_path):
        from repro.testing.golden import (
            check_workload_goldens,
            update_workload_goldens,
        )

        path = tmp_path / "workloads.json"
        update_workload_goldens(path)
        data = json.loads(path.read_text())
        data["entries"]["mp3_jpeg_multimode"]["trace_digest"] = "f" * 64
        path.write_text(json.dumps(data))
        check = check_workload_goldens(path)
        assert not check.ok
        assert "mp3_jpeg_multimode" in check.format()

    def test_multimode_entry_pins_composed_digests(self):
        from repro.apps.workloads import workload_model
        from repro.emulator.multimode import run_multimode
        from repro.testing.golden import measure_workload

        entry = measure_workload("mp3_jpeg_multimode")
        scenario = workload_model("mp3_jpeg_multimode")
        composed = run_multimode(scenario.application, scenario.platform)
        assert entry.trace_digest == composed.trace_digest()
        assert entry.events == composed.total_events
        assert entry.execution_time_ps == composed.execution_time_ps
