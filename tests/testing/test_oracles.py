"""Differential oracle tests: paper configs conform, gates actually trip."""

import pytest

from repro.apps.jpeg import jpeg_decoder_psdf, jpeg_platform
from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.testing.generators import generate_models
from repro.testing.oracles import (
    OracleReport,
    OracleTolerance,
    run_differential_oracle,
)


class TestPaperConfigurations:
    @pytest.mark.parametrize("segments", [1, 2, 3])
    def test_mp3_conforms(self, segments):
        report = run_differential_oracle(
            mp3_decoder_psdf(), paper_platform(segments)
        )
        assert report.ok, report.format()
        assert report.checked > 5
        assert report.emulated_us > 0
        assert report.analytic_us > 0

    def test_jpeg_conforms(self):
        report = run_differential_oracle(jpeg_decoder_psdf(), jpeg_platform(2))
        assert report.ok, report.format()

    def test_contention_ratio_sane(self):
        report = run_differential_oracle(mp3_decoder_psdf(), paper_platform(3))
        # emulation may only exceed the contention-free walk, modulo the
        # per-crossing alignment slack that lets analytic overshoot a hair
        assert 0.9 < report.contention_ratio < 2.0


class TestRandomModels:
    def test_generated_batch_conforms(self):
        for model in generate_models(25, base_seed=400):
            report = run_differential_oracle(
                model.application, model.platform, label=model.label
            )
            assert report.ok, report.format()

    def test_label_defaults_to_model_names(self):
        report = run_differential_oracle(mp3_decoder_psdf(), paper_platform(3))
        assert "MP3Decoder on SBP" == report.label


class TestGateTrips:
    def test_tight_tolerance_fires_ana2(self):
        # a deliberately impossible contention bound proves ANA-2 is live
        report = run_differential_oracle(
            mp3_decoder_psdf(),
            paper_platform(3),
            tolerance=OracleTolerance(contention_ratio_max=0.01),
        )
        assert not report.ok
        assert any("ANA-2" in v for v in report.violations)

    def test_format_lists_violations(self):
        report = OracleReport(
            label="x", emulated_us=1.0, analytic_us=1.0, total_events=10
        )
        report.add("LAW-1", "broken")
        text = report.format()
        assert "1 violation(s)" in text
        assert "[LAW-1] broken" in text

    def test_ok_report_formats_clean(self):
        report = OracleReport(
            label="x", emulated_us=2.0, analytic_us=1.0, total_events=10
        )
        assert report.ok
        assert report.contention_ratio == 2.0
        assert "ok" in report.format()
