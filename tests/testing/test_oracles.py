"""Differential oracle tests: paper configs conform, gates actually trip."""

import pytest

from repro.apps.jpeg import jpeg_decoder_psdf, jpeg_platform
from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.testing.generators import generate_models
from repro.testing.oracles import (
    OracleReport,
    OracleTolerance,
    run_differential_oracle,
)


class TestPaperConfigurations:
    @pytest.mark.parametrize("segments", [1, 2, 3])
    def test_mp3_conforms(self, segments):
        report = run_differential_oracle(
            mp3_decoder_psdf(), paper_platform(segments)
        )
        assert report.ok, report.format()
        assert report.checked > 5
        assert report.emulated_us > 0
        assert report.analytic_us > 0

    def test_jpeg_conforms(self):
        report = run_differential_oracle(jpeg_decoder_psdf(), jpeg_platform(2))
        assert report.ok, report.format()

    def test_contention_ratio_sane(self):
        report = run_differential_oracle(mp3_decoder_psdf(), paper_platform(3))
        # emulation may only exceed the contention-free walk, modulo the
        # per-crossing alignment slack that lets analytic overshoot a hair
        assert 0.9 < report.contention_ratio < 2.0


class TestRandomModels:
    def test_generated_batch_conforms(self):
        for model in generate_models(25, base_seed=400):
            report = run_differential_oracle(
                model.application, model.platform, label=model.label
            )
            assert report.ok, report.format()

    def test_label_defaults_to_model_names(self):
        report = run_differential_oracle(mp3_decoder_psdf(), paper_platform(3))
        assert "MP3Decoder on SBP" == report.label


class TestStochasticBand:
    def test_report_carries_the_stochastic_estimate(self):
        report = run_differential_oracle(mp3_decoder_psdf(), paper_platform(3))
        assert report.stochastic_us > 0
        assert report.stochastic_us >= report.analytic_us
        assert "stochastic" in report.format()

    def test_impossible_band_fires_san1(self):
        # the estimator is within a few percent of the emulated time but
        # never exact on a contended model; a zero-width band must trip
        report = run_differential_oracle(
            mp3_decoder_psdf(),
            paper_platform(2),
            tolerance=OracleTolerance(stochastic_error_max=1e-9),
        )
        assert not report.ok
        assert any("SAN-1" in v for v in report.violations)

    def test_corpus_stays_inside_the_documented_band(self):
        # SAN-1 across a generated slice: the documented 15 % ceiling
        # holds with the default tolerance (the full 200-model corpus
        # runs under `segbus selftest`)
        for model in generate_models(10, base_seed=900):
            report = run_differential_oracle(
                model.application, model.platform, label=model.label
            )
            assert not any("SAN-1" in v for v in report.violations), (
                report.format()
            )


class TestGateTrips:
    def test_tight_tolerance_fires_ana2(self):
        # a deliberately impossible contention bound proves ANA-2 is live
        report = run_differential_oracle(
            mp3_decoder_psdf(),
            paper_platform(3),
            tolerance=OracleTolerance(contention_ratio_max=0.01),
        )
        assert not report.ok
        assert any("ANA-2" in v for v in report.violations)

    def test_format_lists_violations(self):
        report = OracleReport(
            label="x", emulated_us=1.0, analytic_us=1.0, total_events=10
        )
        report.add("LAW-1", "broken")
        text = report.format()
        assert "1 violation(s)" in text
        assert "[LAW-1] broken" in text

    def test_ok_report_formats_clean(self):
        report = OracleReport(
            label="x", emulated_us=2.0, analytic_us=1.0, total_events=10
        )
        assert report.ok
        assert report.contention_ratio == 2.0
        assert "ok" in report.format()


class TestMultiModeOracle:
    def test_scenario_conforms(self):
        from repro.apps.workloads import workload_model
        from repro.testing.oracles import run_multimode_oracle

        scenario = workload_model("mp3_jpeg_multimode")
        report = run_multimode_oracle(
            scenario.application, scenario.platform
        )
        assert report.ok, report.format()
        assert report.checked > 20
        assert "MODE" not in "".join(report.violations)

    def test_generated_multimode_batch_conforms(self):
        from repro.testing.generators import generate_multimode_model
        from repro.testing.oracles import run_multimode_oracle

        for seed in (1, 2, 3):
            model = generate_multimode_model(seed)
            report = run_multimode_oracle(
                model.application, model.platform, label=model.label
            )
            assert report.ok, report.format()

    def test_per_mode_violations_are_prefixed(self):
        from repro.apps.workloads import workload_model
        from repro.testing.oracles import run_multimode_oracle

        scenario = workload_model("mp3_jpeg_multimode")
        report = run_multimode_oracle(
            scenario.application,
            scenario.platform,
            tolerance=OracleTolerance(contention_ratio_max=0.01),
        )
        assert not report.ok
        assert any(v.startswith("mode ") for v in report.violations)


class TestAdversarialCorpus:
    def test_every_shape_conforms(self):
        from repro.testing.generators import (
            ADVERSARIAL_SHAPES,
            generate_adversarial_model,
        )

        for shape in ADVERSARIAL_SHAPES:
            model = generate_adversarial_model(1, shape)
            report = run_differential_oracle(
                model.application, model.platform, label=model.label
            )
            assert report.ok, report.format()
