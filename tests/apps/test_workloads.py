"""Workload catalog tests."""

import pytest

from repro.apps.workloads import named_workload, workload_catalog
from repro.errors import SegBusError


def test_catalog_sorted_and_nonempty():
    catalog = workload_catalog()
    assert catalog
    assert list(catalog) == sorted(catalog)


@pytest.mark.parametrize("name", ["chain4", "fork_join4", "stereo3", "random12"])
def test_named_workloads_instantiate(name):
    graph = named_workload(name)
    assert len(graph) >= 3
    graph.topological_order()  # well-formed


def test_every_catalog_entry_builds():
    for name in workload_catalog():
        assert named_workload(name) is not None


def test_deterministic():
    a = named_workload("random12")
    b = named_workload("random12")
    assert [(f.source, f.target, f.data_items) for f in a.flows] == [
        (f.source, f.target, f.data_items) for f in b.flows
    ]


def test_unknown_name_lists_available():
    with pytest.raises(SegBusError, match="chain4"):
        named_workload("nope")


class TestScenarioCatalog:
    def test_catalog_names(self):
        from repro.apps.workloads import scenario_catalog

        names = scenario_catalog()
        assert list(names) == sorted(names)
        assert set(names) == {
            "bursty",
            "adversarial_hot_segment",
            "long_tail",
            "pipelined_streaming",
            "mp3_jpeg_multimode",
        }

    def test_adversarial_graphs_registered_in_workload_catalog(self):
        for name in (
            "bursty",
            "adversarial_hot_segment",
            "long_tail",
            "pipelined_streaming",
        ):
            assert name in workload_catalog()
            named_workload(name).topological_order()

    def test_every_scenario_is_lint_clean(self):
        from repro.apps.workloads import workload_model
        from repro.lint import lint_models, lint_multimode

        for name in (
            "bursty",
            "adversarial_hot_segment",
            "long_tail",
            "pipelined_streaming",
            "mp3_jpeg_multimode",
        ):
            scenario = workload_model(name)
            if scenario.is_multimode:
                report = lint_multimode(
                    scenario.application, platform=scenario.platform
                )
            else:
                report = lint_models(
                    application=scenario.application,
                    platform=scenario.platform,
                )
            assert report.exit_code == 0, (name, report.findings)

    def test_multimode_flag(self):
        from repro.apps.workloads import workload_model

        assert workload_model("mp3_jpeg_multimode").is_multimode
        assert not workload_model("bursty").is_multimode

    def test_mp3_jpeg_structure(self):
        from repro.apps.workloads import workload_model

        scenario = workload_model("mp3_jpeg_multimode")
        app = scenario.application
        assert app.mode_names == ("jpeg", "mp3")
        assert app.schedule.switch_count() == 1
        assert not app.schedule.transition.is_zero
        # the shared platform places the union of both decoders
        placed = set(scenario.platform.process_placement())
        assert set(app.process_names()) <= placed

    def test_unknown_scenario_lists_available(self):
        from repro.apps.workloads import workload_model

        with pytest.raises(SegBusError, match="mp3_jpeg_multimode"):
            workload_model("nope")
