"""Workload catalog tests."""

import pytest

from repro.apps.workloads import named_workload, workload_catalog
from repro.errors import SegBusError


def test_catalog_sorted_and_nonempty():
    catalog = workload_catalog()
    assert catalog
    assert list(catalog) == sorted(catalog)


@pytest.mark.parametrize("name", ["chain4", "fork_join4", "stereo3", "random12"])
def test_named_workloads_instantiate(name):
    graph = named_workload(name)
    assert len(graph) >= 3
    graph.topological_order()  # well-formed


def test_every_catalog_entry_builds():
    for name in workload_catalog():
        assert named_workload(name) is not None


def test_deterministic():
    a = named_workload("random12")
    b = named_workload("random12")
    assert [(f.source, f.target, f.data_items) for f in a.flows] == [
        (f.source, f.target, f.data_items) for f in b.flows
    ]


def test_unknown_name_lists_available():
    with pytest.raises(SegBusError, match="chain4"):
        named_workload("nope")
