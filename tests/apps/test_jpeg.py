"""JPEG decoder case-study tests."""

import pytest

from repro.apps.jpeg import (
    CHROMA_ITEMS,
    LUMA_ITEMS,
    PROCESS_ROLES,
    jpeg_allocation,
    jpeg_decoder_psdf,
    jpeg_platform,
)
from repro.emulator.emulator import emulate
from repro.errors import SegBusError
from repro.model.validation import validate_platform


@pytest.fixture(scope="module")
def jpeg():
    return jpeg_decoder_psdf()


class TestModel:
    def test_eleven_processes(self, jpeg):
        assert len(jpeg) == 11
        assert set(jpeg.process_names) == set(PROCESS_ROLES)

    def test_entropy_decode_is_source(self, jpeg):
        assert [p.name for p in jpeg.initial_processes()] == ["ED"]
        assert [p.name for p in jpeg.final_processes()] == ["OUT"]

    def test_420_subsampling_ratio(self, jpeg):
        # luma carries ~4x the chroma traffic at the DQ stage
        assert jpeg.flow("ED", "DQy").data_items == LUMA_ITEMS
        assert jpeg.flow("ED", "DQcb").data_items == CHROMA_ITEMS
        assert LUMA_ITEMS // CHROMA_ITEMS == 3  # 2556/648

    def test_upsampling_doubles_chroma(self, jpeg):
        assert jpeg.flow("UPcb", "CC").data_items == 2 * CHROMA_ITEMS

    def test_items_divisible_by_default_package(self, jpeg):
        assert all(f.data_items % 36 == 0 for f in jpeg.flows)

    def test_color_convert_joins_three_paths(self, jpeg):
        assert {f.source for f in jpeg.incoming("CC")} == {
            "IDCTy", "UPcb", "UPcr"
        }


class TestPlatformAndEmulation:
    @pytest.mark.parametrize("segments", [1, 2, 3])
    def test_allocations_validate(self, jpeg, segments):
        platform = jpeg_platform(segments)
        report = validate_platform(platform, jpeg)
        assert report.ok, report.diagnostics

    def test_unknown_segment_count(self):
        with pytest.raises(SegBusError):
            jpeg_allocation(5)

    def test_allocation_count_mismatch(self):
        with pytest.raises(SegBusError):
            jpeg_platform(2, allocation=jpeg_allocation(3))

    @pytest.mark.parametrize("segments", [1, 2, 3])
    def test_emulates_cleanly(self, jpeg, segments):
        report = emulate(jpeg, jpeg_platform(segments))
        assert report.execution_time_us > 0
        total = jpeg.total_packages(36)
        sent = sum(e.packages_sent for e in report.timeline)
        assert sent == total

    def test_luma_path_dominates_runtime(self, jpeg):
        # OUT's last input comes through the luma-heavy CC stage
        report = emulate(jpeg, jpeg_platform(3))
        order = report.timeline.finishing_order()
        pos = {name: i for i, name in enumerate(order)}
        assert pos["IDCTy"] > pos["IDCTcb"]  # luma IDCT is 4x the work
        assert order[-1] in ("OUT", "CC")

    def test_three_segments_cross_traffic(self, jpeg):
        report = emulate(jpeg, jpeg_platform(3))
        # ED (seg1) feeds the chroma segment and CC (seg3) gets all joins
        assert report.bu(1, 2).input_packages > 0
        assert report.bu(2, 3).input_packages > 0
