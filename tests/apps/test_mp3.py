"""MP3 decoder case-study model tests."""

import pytest

from repro.apps.mp3 import (
    PAPER_3SEG_RESULTS,
    PAPER_CA_FREQUENCY_MHZ,
    PAPER_PACKAGE_SIZE,
    PROCESS_ROLES,
    mp3_decoder_psdf,
    paper_allocation,
    paper_platform,
    paper_segment_frequencies_mhz,
)
from repro.errors import SegBusError
from repro.model.validation import validate_platform


class TestModel:
    def test_fifteen_processes(self, mp3_graph):
        assert len(mp3_graph) == 15
        assert set(mp3_graph.process_names) == {f"P{i}" for i in range(15)}

    def test_roles_documented_for_all(self, mp3_graph):
        assert set(PROCESS_ROLES) == set(mp3_graph.process_names)

    def test_p0_is_source_p14_is_sink(self, mp3_graph):
        assert [p.name for p in mp3_graph.initial_processes()] == ["P0"]
        assert [p.name for p in mp3_graph.final_processes()] == ["P14"]

    def test_paper_anchor_cost(self, mp3_graph):
        # the one legible C value: P1_576_1_250
        flow = mp3_graph.flow("P0", "P1")
        assert flow.ticks_per_package(36) == 250
        assert flow.order == 1
        assert flow.element_name(36) == "P1_576_1_250"

    def test_total_traffic_matches_fig8(self, mp3_graph):
        # Fig. 8 has 8 flows of 576 items, 6 of 540 and 6 of 36
        assert mp3_graph.total_data_items() == 8 * 576 + 6 * 540 + 6 * 36

    def test_acyclic_pipeline(self, mp3_graph):
        assert mp3_graph.depth() >= 6


class TestAllocations:
    def test_one_segment_has_everything(self):
        alloc = paper_allocation(1)
        assert alloc.segment_count == 1
        assert len(alloc.groups[0]) == 15

    def test_two_segment_groups(self):
        alloc = paper_allocation(2)
        assert set(alloc.groups[0]) == {
            "P4", "P5", "P6", "P7", "P10", "P11", "P12", "P13", "P14"
        }
        assert set(alloc.groups[1]) == {"P0", "P1", "P2", "P3", "P8", "P9"}

    def test_three_segment_groups_match_fig9(self):
        alloc = paper_allocation(3)
        assert set(alloc.groups[0]) == {"P0", "P1", "P2", "P3", "P8", "P9", "P10"}
        assert set(alloc.groups[1]) == {
            "P5", "P6", "P7", "P11", "P12", "P13", "P14"
        }
        assert alloc.groups[2] == ("P4",)

    def test_unknown_count_rejected(self):
        with pytest.raises(SegBusError):
            paper_allocation(4)


class TestPlatform:
    def test_defaults(self):
        platform = paper_platform()
        assert platform.segment_count == 3
        assert platform.package_size == PAPER_PACKAGE_SIZE

    def test_clock_plan(self):
        assert paper_segment_frequencies_mhz(3) == (91.0, 98.0, 89.0)
        assert paper_segment_frequencies_mhz(1) == (91.0,)
        with pytest.raises(SegBusError):
            paper_segment_frequencies_mhz(4)

    def test_ca_frequency(self, platform_3seg):
        assert platform_3seg.central_arbiter.frequency.mhz == pytest.approx(
            PAPER_CA_FREQUENCY_MHZ
        )

    def test_platform_validates(self, mp3_graph):
        for n in (1, 2, 3):
            report = validate_platform(paper_platform(n), mp3_graph)
            assert report.ok, report.diagnostics

    def test_package_size_override(self):
        assert paper_platform(3, package_size=18).package_size == 18

    def test_allocation_override(self):
        moved = paper_allocation(3).moved("P9", 3)
        platform = paper_platform(3, allocation=moved)
        assert platform.segment_of_process("P9") == 3

    def test_allocation_segment_count_mismatch(self):
        with pytest.raises(SegBusError):
            paper_platform(2, allocation=paper_allocation(3))


class TestReferenceConstants:
    def test_published_numbers_present(self):
        assert PAPER_3SEG_RESULTS["execution_time_us"] == 489.79
        assert PAPER_3SEG_RESULTS["bu12_tct"] == 2336
        assert PAPER_3SEG_RESULTS["sa3_inter_requests"] == 1
