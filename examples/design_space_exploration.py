#!/usr/bin/env python3
"""Design-space exploration for a custom workload.

Generates a synthetic fork-join workload, lets the PlaceTool substitute
allocate it for 1–3 segments, sweeps package sizes, emulates every
candidate and prints the ranked configurations plus the bottleneck report
of the winner — the designer's decision loop of the paper's Fig. 3.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis.bottleneck import find_bottlenecks
from repro.analysis.dse import explore_design_space
from repro.apps.workloads import named_workload
from repro.emulator.emulator import SegBusEmulator
from repro.model.mapping import map_application


def main() -> None:
    application = named_workload("fork_join4")
    print(f"Workload: {application.name} "
          f"({len(application)} processes, {len(application.flows)} flows)")

    points = explore_design_space(
        application,
        segment_counts=[1, 2, 3],
        package_sizes=[18, 36, 72],
        segment_frequencies_mhz=lambda n: [100.0] * n,
        ca_frequency_mhz=120.0,
    )

    print(f"\n{'rank':>4} {'segments':>8} {'pkg':>4} {'time (us)':>10}  allocation")
    for rank, point in enumerate(points, start=1):
        print(
            f"{rank:>4} {point.segment_count:>8} {point.package_size:>4} "
            f"{point.execution_time_us:>10.2f}  {point.allocation}"
        )

    best = points[0]
    print(
        f"\nBest configuration: {best.segment_count} segment(s), "
        f"package size {best.package_size} "
        f"({best.execution_time_us:.2f} us)"
    )

    # Re-run the winner to inspect its bottlenecks.
    psm = map_application(
        application,
        best.allocation,
        segment_frequencies_mhz=[100.0] * best.segment_count,
        ca_frequency_mhz=120.0,
        package_size=best.package_size,
    )
    emulator = SegBusEmulator.from_models(application, psm.platform)
    report = emulator.run()
    bottlenecks = find_bottlenecks(emulator.simulation, report)
    print("\nBottleneck analysis of the winner:")
    print(" ", bottlenecks.advice())
    for load in bottlenecks.segment_loads:
        print(f"  segment {load.index}: bus occupied {load.utilization:.1%}")


if __name__ == "__main__":
    main()
