#!/usr/bin/env python3
"""The XML model-transformation toolchain, end to end.

Shows the paper's section-3.4/3.5 machinery explicitly: build the MP3 PSDF
and PSM models, run the Model-to-Text transformation through code
engineering sets, inspect the generated schemes, parse them back and
emulate from the files — exactly what the MagicDraw + Java tool pair does.

Run:  python examples/xml_toolchain.py
"""

import tempfile
from pathlib import Path

from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.emulator.emulator import SegBusEmulator
from repro.xmlio.codegen import CodeEngineeringSet, generate_models
from repro.xmlio.psdf_parser import parse_psdf_xml


def main() -> None:
    application = mp3_decoder_psdf()
    platform = paper_platform(segment_count=3)

    with tempfile.TemporaryDirectory() as tmp:
        # 1. Two code engineering sets, one per model (section 3.4).
        sets = [
            CodeEngineeringSet(
                name="psdf", model=application,
                output_file="psdf.xml", package_size=platform.package_size,
            ),
            CodeEngineeringSet(name="psm", model=platform, output_file="psm.xml"),
        ]
        psdf_path, psm_path = generate_models(sets, Path(tmp))
        print(f"Generated schemes: {psdf_path.name}, {psm_path.name}")

        # 2. Peek at the PSDF scheme: the P0 complex type carries the
        #    underscore-encoded transfers (the paper's P1_576_1_250).
        parsed = parse_psdf_xml(psdf_path.read_text())
        print("\nTransfers of P0 (element-name encoding):")
        for flow in parsed.transfers_from("P0"):
            print(f"  {flow.element_name(platform.package_size)}")

        snippet = "\n".join(psdf_path.read_text().splitlines()[:12])
        print(f"\nFirst lines of {psdf_path.name}:\n{snippet}\n  ...")

        # 3. Feed both files to the emulator (section 3.5's parsing phase
        #    plus the emulation itself).
        emulator = SegBusEmulator.from_files(psdf_path, psm_path)
        print("\nCommunication matrix row of P3 (rebuilt from the scheme):")
        print(f"  {emulator.communication_matrix.row('P3')}")

        report = emulator.run()
        print(
            f"\nEmulated from files: {report.execution_time_us:.2f} us, "
            f"{report.total_events} events, "
            f"{report.bu(1, 2).input_packages} packages through BU12"
        )


if __name__ == "__main__":
    main()
