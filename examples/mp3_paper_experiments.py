#!/usr/bin/env python3
"""Reproduce the paper's section-4 experiments on the MP3 decoder.

Runs the three-segment configuration (Fig. 9, s = 36), prints the results
listing, the BU useful/waiting-period analysis, and the three accuracy
experiments (s = 36, s = 18, P9 moved to segment 3) against the reference
simulator — the full evaluation of the paper in one script.

Run:  python examples/mp3_paper_experiments.py
"""

from repro import compare_estimate_to_reference
from repro.analysis.bu_utilization import bu_utilization
from repro.apps.mp3 import (
    PAPER_3SEG_RESULTS,
    PAPER_ACCURACY_EXPERIMENTS,
    PAPER_BU_ANALYSIS,
    mp3_decoder_psdf,
    paper_allocation,
    paper_platform,
)
from repro.emulator.emulator import emulate


def main() -> None:
    application = mp3_decoder_psdf()

    print("=" * 70)
    print("Three-segment configuration, package size 36 (paper section 4)")
    print("=" * 70)
    report = emulate(application, paper_platform(3))
    print(report.format_listing())
    print()
    print(
        f"Execution time: {report.execution_time_us:.2f} us "
        f"(paper: {PAPER_3SEG_RESULTS['execution_time_us']} us)"
    )

    print()
    print("BU utilization (paper: UP12=%d TCT12=%d WP12=%d, UP23=%d TCT23=%d WP23=%d)"
          % (PAPER_BU_ANALYSIS["UP12"], PAPER_BU_ANALYSIS["TCT12"],
             PAPER_BU_ANALYSIS["WP12"], PAPER_BU_ANALYSIS["UP23"],
             PAPER_BU_ANALYSIS["TCT23"], PAPER_BU_ANALYSIS["WP23"]))
    for util in bu_utilization(report):
        print(
            f"  {util.name}: UP = {util.useful_period}, TCT = {util.tct}, "
            f"mean WP = {util.mean_waiting_period:.0f}"
        )

    print()
    print("=" * 70)
    print("Accuracy experiments (estimated vs reference-simulated 'actual')")
    print("=" * 70)
    experiments = (
        ("s36", paper_platform(3, package_size=36)),
        ("s18", paper_platform(3, package_size=18)),
        (
            "p9_moved",
            paper_platform(3, allocation=paper_allocation(3).moved("P9", 3)),
        ),
    )
    for label, platform in experiments:
        result = compare_estimate_to_reference(application, platform, label=label)
        paper = PAPER_ACCURACY_EXPERIMENTS[label]
        print(
            f"  {label:<9} measured {result.estimated_us:7.2f}/"
            f"{result.actual_us:7.2f} us = {result.accuracy:5.1%}   "
            f"(paper {paper['estimated_us']:7.2f}/{paper['actual_us']:7.2f} us "
            f"= {paper['accuracy']:.0%})"
        )


if __name__ == "__main__":
    main()
