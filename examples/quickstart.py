#!/usr/bin/env python3
"""Quickstart: estimate an application's performance on a SegBus platform.

Builds a small four-process pipeline, maps it onto a two-segment platform,
runs the emulator and prints the performance report — the whole design flow
of the paper's Fig. 3 in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import (
    Allocation,
    PSDFGraph,
    emulate,
    map_application,
)

# 1. The application: a PSDF graph.  Each edge is
#    (source, target, data items D, ordering T, ticks-per-package C).
application = PSDFGraph.from_edges(
    [
        ("SRC", "FILTER", 576, 1, 200),
        ("FILTER", "SCALE", 576, 2, 250),
        ("SCALE", "SINK", 576, 3, 150),
    ],
    name="quickstart",
)

# 2. The platform: two segments (100 and 120 MHz), a 133 MHz central
#    arbiter, package size 36, with the pipeline split across segments.
psm = map_application(
    application,
    Allocation.from_groups([["SRC", "FILTER"], ["SCALE", "SINK"]]),
    segment_frequencies_mhz=[100, 120],
    ca_frequency_mhz=133,
    package_size=36,
)

# 3. Emulate (models -> XML schemes -> emulator -> report).
report = emulate(application, psm.platform)

# 4. Read the results.
print(report.format_listing())
print()
print(f"Total execution time: {report.execution_time_us:.2f} us")
print(f"Packages crossing BU12: {report.bu(1, 2).input_packages}")
for entry in report.timeline:
    print(
        f"  {entry.process:>6}: start {entry.start_ps / 1e6:7.2f} us, "
        f"end {entry.end_ps / 1e6:7.2f} us"
    )
