#!/usr/bin/env python3
"""From performance estimation to hardware hand-off.

Once a configuration wins the design-space exploration, three artifacts
carry it toward implementation — all generated here for the paper's
3-segment MP3 configuration:

1. the **arbiter VHDL** (schedule ROM + one SA per segment + the CA),
   the paper's stated future-work feature;
2. a **VCD waveform** of the emulated run, for reviewing platform activity
   in any wave viewer;
3. the **energy breakdown** of the configuration, for the power budget.

Run:  python examples/hardware_handoff.py
"""

import tempfile
from pathlib import Path

from repro.analysis.power import estimate_power
from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.codegen import ArbiterCodeGenerator
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.trace import Tracer, export_vcd


def main() -> None:
    application = mp3_decoder_psdf()
    platform = paper_platform(segment_count=3)

    with tempfile.TemporaryDirectory() as tmp:
        # 1. Arbiter code generation.
        rtl_dir = Path(tmp) / "rtl"
        files = ArbiterCodeGenerator(application, platform).write(rtl_dir)
        print("Generated arbiter sources:")
        for path in files:
            lines = path.read_text().count("\n")
            print(f"  {path.name:<24} {lines:>4} lines")
        rom = (rtl_dir / "schedule_rom_pkg.vhd").read_text()
        entry_line = next(l for l in rom.splitlines() if "C_ENTRY_COUNT" in l)
        print(f"  schedule ROM: {entry_line.strip()}")

        # 2. Traced emulation + VCD export.
        tracer = Tracer()
        sim = Simulation(
            application, PlatformSpec.from_platform(platform), tracer=tracer
        ).run()
        vcd_path = Path(tmp) / "mp3_3seg.vcd"
        export_vcd(sim, path=vcd_path)
        print(
            f"\nEmulation: {sim.execution_time_fs() / 1e9:.2f} us, "
            f"{len(tracer)} trace events -> {vcd_path.name} "
            f"({vcd_path.stat().st_size} bytes)"
        )
        print("First transfers on the bus:")
        print(tracer.format_log(limit=6))

        # 3. Energy breakdown.
        power = estimate_power(sim)
        print("\nEnergy breakdown (arbitrary units):")
        print(power.format_table())


if __name__ == "__main__":
    main()
