#!/usr/bin/env python3
"""Eliminating BU congestion by granularity rebalancing.

The paper's conclusion suggests balancing the granularity of application
components *"to eliminate the traffic congestion located at certain BUs"*.
This example builds a deliberately congested configuration — a heavy
producer/consumer pair split across a segment border — then lets
``suggest_rebalance`` find the merge that removes the crossing and
quantifies the improvement.

Run:  python examples/congestion_rebalance.py
"""

from repro.analysis.bottleneck import find_bottlenecks
from repro.analysis.granularity import suggest_rebalance
from repro.emulator.emulator import SegBusEmulator
from repro.model.mapping import Allocation, map_application
from repro.psdf.graph import PSDFGraph


def main() -> None:
    # A pipeline whose hottest edge (B -> C, 1440 items = 40 packages)
    # crosses the segment border.
    application = PSDFGraph.from_edges(
        [
            ("A", "B", 144, 1, 60),
            ("B", "C", 1440, 2, 40),
            ("C", "D", 144, 3, 60),
            ("A", "E", 144, 1, 60),
            ("E", "D", 144, 2, 60),
        ],
        name="congested",
    )
    placement = {"A": 1, "B": 1, "E": 1, "C": 2, "D": 2}

    psm = map_application(
        application,
        Allocation.from_placement(placement),
        segment_frequencies_mhz=[100, 100],
        ca_frequency_mhz=120,
        package_size=36,
    )
    emulator = SegBusEmulator.from_models(application, psm.platform)
    report = emulator.run()
    bottlenecks = find_bottlenecks(emulator.simulation, report)

    print(f"Baseline: {report.execution_time_us:.2f} us")
    print(f"BU12 carries {report.bu(1, 2).input_packages} packages")
    print("Bottleneck analysis:", bottlenecks.advice())

    suggestion = suggest_rebalance(
        application,
        placement,
        segment_frequencies_mhz=[100, 100],
        ca_frequency_mhz=120,
        package_size=36,
    )
    assert suggestion is not None
    print(
        f"\nSuggestion: merge {suggestion.flow_source} and "
        f"{suggestion.flow_target} (the {suggestion.flow_items}-item flow "
        f"crossing {suggestion.congested_bu}) into one FU "
        f"'{suggestion.merged_process}'"
    )
    print(
        f"  baseline:   {suggestion.baseline_us:8.2f} us\n"
        f"  rebalanced: {suggestion.rebalanced_us:8.2f} us "
        f"({suggestion.improvement:+.1%})"
    )


if __name__ == "__main__":
    main()
