#!/usr/bin/env python3
"""Every text visualization the library produces, on the MP3 case study.

Writes (to a temp directory) and previews:

* the PSDF graph as Graphviz DOT, clustered by segment, crossing flows in
  red (render with ``dot -Tsvg``);
* the process timeline as an ASCII Gantt chart and as Mermaid markup;
* the activity series (Fig. 11 data) as CSV;
* the run as a VCD waveform for GTKWave;
* the per-flow latency table.

Run:  python examples/visualization_gallery.py
"""

import tempfile
from pathlib import Path

from repro.analysis.latency import measure_latencies
from repro.analysis.visualize import (
    activity_to_csv,
    psdf_to_dot,
    timeline_to_gantt,
)
from repro.apps.mp3 import mp3_decoder_psdf, paper_platform
from repro.emulator.activity import activity_series
from repro.emulator.kernel import PlatformSpec, Simulation
from repro.emulator.report import build_report
from repro.emulator.trace import Tracer, export_vcd


def main() -> None:
    application = mp3_decoder_psdf()
    platform = paper_platform(3)
    spec = PlatformSpec.from_platform(platform)
    tracer = Tracer()
    sim = Simulation(application, spec, tracer=tracer).run()
    report = build_report(sim)

    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp)

        dot = psdf_to_dot(
            application, placement=spec.placement, package_size=36
        )
        (out / "mp3.dot").write_text(dot)
        print(f"mp3.dot ({len(dot.splitlines())} lines) — first lines:")
        print("\n".join(dot.splitlines()[:6]))

        print("\nASCII Gantt (Fig. 10):")
        print(timeline_to_gantt(report.timeline, width=56))

        mermaid = timeline_to_gantt(report.timeline, mermaid=True)
        (out / "mp3_gantt.mmd").write_text(mermaid)
        print(f"\nmp3_gantt.mmd written ({len(mermaid.splitlines())} lines)")

        csv_text = activity_to_csv(activity_series(sim, bins=24))
        (out / "mp3_activity.csv").write_text(csv_text)
        print(f"mp3_activity.csv written ({len(csv_text.splitlines())} rows)")

        export_vcd(sim, path=out / "mp3.vcd")
        print(f"mp3.vcd written ({(out / 'mp3.vcd').stat().st_size} bytes)")

        print("\nPer-flow latency (worst five):")
        latency = measure_latencies(sim, tracer)
        print("\n".join(latency.format_table().splitlines()[:6]))


if __name__ == "__main__":
    main()
